#!/usr/bin/env python3
"""Insert `harness all` output into EXPERIMENTS.md placeholders.

Usage: cargo run --release -p repl-harness -- all > harness_all.txt
       python3 scripts/fill_experiments.py harness_all.txt
"""
import re
import sys

def main() -> None:
    src = sys.argv[1] if len(sys.argv) > 1 else "harness_all.txt"
    text = open(src).read()
    # Split on table headers "== ID: title ==".
    blocks = {}
    current_id = None
    current: list[str] = []
    for line in text.splitlines():
        m = re.match(r"^== ([A-Za-z0-9-]+): ", line)
        if m:
            if current_id:
                blocks[current_id] = "\n".join(current).strip()
            current_id = m.group(1)
            current = [line]
        elif current_id:
            current.append(line)
    if current_id:
        blocks[current_id] = "\n".join(current).strip()

    doc = open("EXPERIMENTS.md").read()
    filled = 0
    for exp_id, body in blocks.items():
        placeholder = f"<!-- {exp_id.upper()}-OUTPUT -->"
        replacement = f"```text\n{body}\n```"
        if placeholder in doc:
            doc = doc.replace(placeholder, replacement)
            filled += 1
        else:
            # Replace an existing fenced block that follows a heading
            # mentioning the id, if re-running.
            print(f"warning: no placeholder for {exp_id}", file=sys.stderr)
    open("EXPERIMENTS.md", "w").write(doc)
    print(f"filled {filled} sections")

if __name__ == "__main__":
    main()
