#!/usr/bin/env bash
# Benchmark driver: times every harness experiment plus the full sweep
# (serial vs --jobs), runs the criterion micro/engine suites, and
# writes the combined result to BENCH_harness.json — the committed
# performance baseline the docs tables are generated from.
#
# Usage:
#   scripts/bench.sh            full run, rewrites BENCH_harness.json
#   scripts/bench.sh --smoke    CI smoke: 1 rep, writes to a temp file
#                               and validates it; also reruns the
#                               engine criterion suite and fails if any
#                               tracked median regresses >1.5x against
#                               the committed BENCH_harness.json
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        *)
            echo "usage: scripts/bench.sh [--smoke]" >&2
            exit 2
            ;;
    esac
done

echo "== building release harness =="
cargo build --release -p repl-harness

OUT=BENCH_harness.json
REPS=3
if [ "$SMOKE" = 1 ]; then
    OUT="$(mktemp)"
    trap 'rm -f "$OUT"' EXIT
    REPS=1
fi

CRIT_LOG=""
if [ "$SMOKE" = 0 ]; then
    echo "== criterion: micro + engines =="
    CRIT_LOG="$(mktemp)"
    cargo bench -p repl-bench --bench micro --bench engines 2>&1 | tee "$CRIT_LOG"
else
    # The smoke gate tracks only the ms-scale engine benches: the
    # ns-scale micro benches jitter past any useful threshold on a
    # shared box, while a genuine hot-path regression in an engine
    # shows up here as well.
    echo "== criterion smoke: engines regression gate =="
    CRIT_LOG="$(mktemp)"
    cargo bench -p repl-bench --bench engines 2>&1 | tee "$CRIT_LOG"
fi

# The NullTracer guard already runs in `cargo test --workspace`; here
# the release-profile metrics guard keeps full distribution recording
# honest against the lean baseline.
echo "== overhead guard: metrics recording <5% over lean =="
cargo test -p repl-bench --release -q metrics_recording_overhead_under_five_percent

echo "== timing harness experiments (reps=$REPS) =="
SMOKE="$SMOKE" REPS="$REPS" OUT="$OUT" CRIT_LOG="$CRIT_LOG" python3 - <<'EOF'
import json, os, pathlib, re, subprocess, time

BIN = "./target/release/harness"
SEED = "42"
smoke = os.environ["SMOKE"] == "1"
reps = int(os.environ["REPS"])
out_path = os.environ["OUT"]

def timed(args):
    """Min wall-clock over `reps` runs of the harness with `args`."""
    best = None
    for _ in range(reps):
        start = time.monotonic()
        subprocess.run(
            [BIN, "--quick", "--json", "--seed", SEED, *args],
            check=True, stdout=subprocess.DEVNULL,
        )
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return round(best, 4)

names = [
    line.split()[0]
    for line in subprocess.run(
        [BIN, "list"], check=True, capture_output=True, text=True
    ).stdout.splitlines()
    if line.strip()
]
if smoke:
    names = names[:3]

experiments = {}
for name in names:
    experiments[name] = timed([name])
    print(f"  {name:<16} {experiments[name]:8.3f}s")

cores = os.cpu_count() or 1
# At least 2 so the threaded executor path is what gets timed, even on
# a single-core container.
par_jobs = 2 if smoke else max(2, cores)
serial = timed(["--jobs", "1", "all"])
parallel = timed(["--jobs", str(par_jobs), "all"])
print(f"  all --jobs 1     {serial:8.3f}s")
print(f"  all --jobs {par_jobs:<6}{parallel:8.3f}s")

# Fold in the criterion medians (full mode only). The vendored
# criterion prints one summary line per bench:
#   bench GROUP/NAME: median 26.108µs (min ..., max ..., n=10)
criterion = {}
crit_log = os.environ["CRIT_LOG"]
if crit_log:
    scale = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
    pat = re.compile(r"^bench (\S+): median ([0-9.]+)(ns|µs|us|ms|s) ")
    with open(crit_log) as f:
        for line in f:
            if m := pat.match(line):
                criterion[m[1]] = round(float(m[2]) * scale[m[3]], 1)
    assert criterion, "cargo bench ran but no summary lines parsed"

result = {
    "schema": 1,
    "mode": "quick",
    "seed": int(SEED),
    "reps": reps,
    "cores": cores,
    "sweep": {
        "serial_secs": serial,
        "parallel_secs": parallel,
        "parallel_jobs": par_jobs,
    },
    "experiments": experiments,
    "criterion_median_ns": criterion,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")

# Smoke mode validates the document instead of committing it.
with open(out_path) as f:
    doc = json.load(f)
assert doc["experiments"], "no experiment timings recorded"
assert doc["sweep"]["serial_secs"] > 0
print(f"wrote {out_path} ({len(doc['experiments'])} experiments)")

if smoke:
    # Regression gate: every tracked criterion median must stay within
    # 1.5x of the committed baseline. Benches added since the last
    # baseline regeneration are reported but not gated.
    baseline = json.loads(pathlib.Path("BENCH_harness.json").read_text())
    base_crit = baseline.get("criterion_median_ns", {})
    tracked = sorted(n for n in criterion if n.startswith("engines_30s_sim/"))
    assert tracked, "smoke criterion run produced no engine medians"
    failures = []
    for name in tracked:
        now = criterion[name]
        then = base_crit.get(name)
        if then is None:
            print(f"  {name:<40} {now:>12.0f}ns  (new, not gated)")
            continue
        ratio = now / then
        flag = "REGRESSED" if ratio > 1.5 else "ok"
        print(f"  {name:<40} {now:>12.0f}ns  vs {then:>12.0f}ns  {ratio:5.2f}x  {flag}")
        if ratio > 1.5:
            failures.append(name)
    if failures:
        raise SystemExit(
            f"criterion regression gate: {len(failures)} bench(es) slower "
            f"than 1.5x the committed baseline: {', '.join(failures)}"
        )
    print(f"ok: {len(tracked)} tracked medians within 1.5x of baseline")

if not smoke:
    # Re-render the wall-clock table in EXPERIMENTS.md between markers.
    begin, end = "<!-- bench-table:begin -->", "<!-- bench-table:end -->"

    def order(name):
        m = re.match(r"e(\d+)(b?)$", name)
        return (0, int(m[1]), m[2]) if m else (1, name)

    lines = ["", "| experiment | wall-clock (s) |", "|---|---|"]
    lines += [
        f"| `{n}` | {secs:.3f} |"
        for n, secs in sorted(experiments.items(), key=lambda kv: order(kv[0]))
    ]
    lines += [
        f"| **`all` serial (`--jobs 1`)** | **{serial:.3f}** |",
        f"| **`all` parallel (`--jobs {par_jobs}`)** | **{parallel:.3f}** |",
        "",
    ]
    md = pathlib.Path("EXPERIMENTS.md")
    text = md.read_text()
    head, rest = text.split(begin, 1)
    _, tail = rest.split(end, 1)
    md.write_text(head + begin + "\n" + "\n".join(lines) + end + tail)
    print("updated EXPERIMENTS.md wall-clock table")
EOF

echo "== bench done =="
