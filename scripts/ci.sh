#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, tests, and a smoke
# run of every experiment with machine-readable output validated.
#
# Usage: scripts/ci.sh  (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

say() { printf '\n== %s ==\n' "$*"; }

say "cargo fmt --check"
cargo fmt --all -- --check

say "cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

say "cargo build --release"
cargo build --release --workspace

say "cargo test"
cargo test -q --workspace

say "harness smoke: --quick --json all"
out="$(mktemp)"
metrics_out="$(mktemp)"
trap 'rm -f "$out" "$metrics_out"' EXIT
./target/release/harness --quick --json --metrics "$metrics_out" all >"$out"

say "validating harness JSON"
# `--json all` prints one pretty-printed JSON document per experiment,
# concatenated; parse the stream and require at least one table per
# registered experiment.
python3 - "$out" <<'EOF'
import json, sys

text = open(sys.argv[1]).read()
dec = json.JSONDecoder()
idx, tables = 0, []
while idx < len(text):
    while idx < len(text) and text[idx].isspace():
        idx += 1
    if idx >= len(text):
        break
    table, idx = dec.raw_decode(text, idx)
    tables.append(table)
assert tables, "harness emitted no JSON tables"
for t in tables:
    assert t.get("title"), f"table missing title: {t}"
    assert t.get("rows"), f"table {t['title']!r} has no rows"
print(f"ok: {len(tables)} JSON tables, all titled and non-empty")
EOF

say "parallel smoke: --jobs 2 must be byte-identical to serial"
par_out="$(mktemp)"
par_metrics="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics"' EXIT
./target/release/harness --quick --json --jobs 2 --metrics "$par_metrics" all >"$par_out"
cmp "$out" "$par_out" || {
    echo "--jobs 2 output differs from the serial run" >&2
    exit 1
}
echo "ok: parallel sweep output byte-identical to serial"

say "metrics gate: schema valid, --jobs invariant"
cmp "$metrics_out" "$par_metrics" || {
    echo "--metrics export differs between serial and --jobs 2" >&2
    exit 1
}
/usr/bin/jq -e '
    .schema == 1
    and (.runs | length > 0)
    and ((([.runs[].histograms[]?.count] | add) // 0) > 0)
' "$metrics_out" >/dev/null || {
    echo "metrics JSON failed schema validation" >&2
    exit 1
}
echo "ok: $(/usr/bin/jq '.runs | length' "$metrics_out") metric runs, histograms populated, export --jobs invariant"

say "bench smoke: scripts/bench.sh --smoke"
scripts/bench.sh --smoke

say "chaos smoke: fixed seed, twice (determinism + schema)"
chaos_a="$(mktemp)"
chaos_b="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics" "$chaos_a" "$chaos_b"' EXIT
./target/release/harness --quick --json --seed 41 chaos >"$chaos_a"
./target/release/harness --quick --json --seed 41 chaos >"$chaos_b"
cmp "$chaos_a" "$chaos_b" || {
    echo "chaos runs with the same seed produced different output" >&2
    exit 1
}
python3 - "$chaos_a" <<'EOF'
import json, sys

table = json.loads(open(sys.argv[1]).read())
assert table["id"] == "CHAOS", f"unexpected table id {table['id']!r}"
cols = table["headers"]
rows = {r[cols.index("policy")]: dict(zip(cols, r)) for r in table["rows"]}
assert set(rows) == {"detection", "timeout", "eager/owner-order"}, f"policies: {sorted(rows)}"
for name, row in rows.items():
    assert int(row["dropped"]) > 0, f"{name} run injected no drops: {row}"
    assert int(row["crashes"]) > 0, f"{name} run injected no crashes: {row}"
for name in ("detection", "timeout"):
    assert rows[name]["converged"] == "yes", f"{name} run diverged: {rows[name]}"
assert int(rows["timeout"]["cycle checks"]) == 0, "timeout mode searched the graph"
assert int(rows["timeout"]["timeouts"]) > 0, "timeout mode resolved nothing"
assert int(rows["detection"]["cycle checks"]) > 0, "detection mode never searched"
print("ok: chaos smoke deterministic, converged, policies use disjoint mechanisms")
EOF

say "commit-proto gates: owner-order identity, 2PC chaos clean through the oracles"
proto_out="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics" "$chaos_a" "$chaos_b" "$proto_out"' EXIT
# owner-order is the default: selecting it explicitly must change nothing.
./target/release/harness --quick --json --seed 41 --commit-proto owner-order chaos >"$proto_out"
cmp "$chaos_a" "$proto_out" || {
    echo "--commit-proto owner-order changed the default chaos output" >&2
    exit 1
}
# The fenced protocol under the full chaos plan (drops, duplicates, a
# crash window) must come through the atomicity and decision-durability
# oracles with zero violations.
./target/release/harness --quick --json --seed 41 --check --commit-proto 2pc chaos >"$proto_out"
/usr/bin/jq -e '
    .violations == []
    and ([.rows[] | select(.[0] == "eager/2pc")] | length == 1)
' "$proto_out" >/dev/null || {
    echo "2PC chaos run failed the commit-protocol oracles" >&2
    /usr/bin/jq '.violations' "$proto_out" >&2
    exit 1
}
echo "ok: owner-order byte-identical to default, 2PC chaos run violation-free"

say "oracle smoke: --check on a real experiment must stay clean"
check_out="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics" "$chaos_a" "$chaos_b" "$proto_out" "$check_out"' EXIT
./target/release/harness --quick --json --seed 41 --check e11 >"$check_out"
python3 - "$check_out" <<'EOF'
import json, sys

table = json.loads(open(sys.argv[1]).read())
assert table["violations"] == [], f"oracle violations: {table['violations']}"
note = [n for n in table["notes"] if n.startswith("check:")]
assert note, "--check run recorded nothing through the oracles"
print(f"ok: zero violations ({note[0]})")
EOF

say "oracle fuzz smoke: fixed-seed corpus replay + fuzz must be clean"
./target/release/harness --quick --seed 41 check

say "oracle self-test: every checker must flag its broken artifact"
./target/release/harness check-selftest

say "oracle mutation gate: an injected lock bug must fail the check run"
if REPL_MUTATE=grant-held:3 ./target/release/harness --quick --seed 41 check >"$check_out" 2>&1; then
    echo "check passed despite the injected lock bug" >&2
    exit 1
fi
grep -q "CHECK_CASE" "$check_out" || {
    echo "failing check run printed no CHECK_CASE repro line" >&2
    exit 1
}
echo "ok: injected bug caught, shrunk repro line emitted"

say "failover smoke: fixed seed (determinism, metrics schema, zero violations)"
fo_a="$(mktemp)"
fo_b="$(mktemp)"
fo_metrics_a="$(mktemp)"
fo_metrics_b="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics" "$chaos_a" "$chaos_b" "$proto_out" "$check_out" "$fo_a" "$fo_b" "$fo_metrics_a" "$fo_metrics_b"' EXIT
./target/release/harness --quick --json --seed 41 --metrics "$fo_metrics_a" failover >"$fo_a"
./target/release/harness --quick --json --seed 41 --jobs 2 --metrics "$fo_metrics_b" failover >"$fo_b"
cmp "$fo_a" "$fo_b" || {
    echo "failover --jobs 2 output differs from the serial run" >&2
    exit 1
}
cmp "$fo_metrics_a" "$fo_metrics_b" || {
    echo "failover --metrics export differs between serial and --jobs 2" >&2
    exit 1
}
/usr/bin/jq -e '
    .schema == 1
    and ([.runs | keys[] | select(startswith("failover/"))] | length > 0)
    and ([.runs | to_entries[] | select(.key | startswith("failover/"))
          | .value.histograms["failover_unavailability"].count] | add > 0)
    and ([.runs | to_entries[] | select(.key | startswith("failover/"))
          | .value.histograms["election_rounds"].count] | add > 0)
' "$fo_metrics_a" >/dev/null || {
    echo "failover metrics JSON failed schema validation" >&2
    exit 1
}
python3 - "$fo_a" <<'EOF'
import json, sys

table = json.loads(open(sys.argv[1]).read())
assert table["id"] == "FAILOVER", f"unexpected table id {table['id']!r}"
assert table["violations"] == [], f"failover oracle violations: {table['violations']}"
cols = table["headers"]
rows = [dict(zip(cols, r)) for r in table["rows"]]
assert rows, "failover table has no rows"
for row in rows:
    assert row["safe"] == "yes", f"unsafe failover row: {row}"
elections = sum(int(r["elections"]) for r in rows)
assert elections > 0, "failover smoke never elected a leader"
print(f"ok: failover deterministic, {elections} elections, all rows safe")
EOF

say "sharding identity: --shards 7 (full rf) must be byte-identical across all experiments"
shard_out="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics" "$chaos_a" "$chaos_b" "$proto_out" "$check_out" "$fo_a" "$fo_b" "$fo_metrics_a" "$fo_metrics_b" "$shard_out"' EXIT
./target/release/harness --quick --json --shards 7 all >"$shard_out"
cmp "$out" "$shard_out" || {
    echo "--shards 7 at full replication changed experiment output" >&2
    exit 1
}
# Same layout with the replication factor spelled out. `--rf 0` is the
# implicit "full" default above; an explicit rf >= nodes must take the
# same clamp path in every experiment (some sweeps run past 7 nodes,
# so rf must exceed every sweep's node count to stay full).
./target/release/harness --quick --json --shards 7 --rf 999 all >"$shard_out"
cmp "$out" "$shard_out" || {
    echo "--shards 7 --rf 999 (explicit full rf) changed experiment output" >&2
    exit 1
}
echo "ok: full-rf sharded runs (implicit and explicit rf) byte-identical to unsharded"

say "scaleout smoke: fixed seed (determinism across --jobs, schema, sublinear fan-out)"
sc_a="$(mktemp)"
sc_b="$(mktemp)"
trap 'rm -f "$out" "$metrics_out" "$par_out" "$par_metrics" "$chaos_a" "$chaos_b" "$proto_out" "$check_out" "$fo_a" "$fo_b" "$fo_metrics_a" "$fo_metrics_b" "$shard_out" "$sc_a" "$sc_b"' EXIT
./target/release/harness --quick --json --seed 41 scaleout >"$sc_a"
./target/release/harness --quick --json --seed 41 --jobs 2 scaleout >"$sc_b"
cmp "$sc_a" "$sc_b" || {
    echo "scaleout --jobs 2 output differs from the serial run" >&2
    exit 1
}
/usr/bin/jq -e '
    def fanout(n; rf): (.rows[] | select(.[0] == n and .[1] == rf) | .[8] | tonumber);
    def pmsgs(n; p): (.rows[] | select(.[0] == n and .[9] == p) | .[8] | tonumber);
    .id == "SCALEOUT"
    and .violations == []
    and (.headers | index("msgs/commit") == 8)
    and (.headers | index("proto") == 9)
    and (.headers | index("commit p50 ms") == 10)
    and (.headers | index("commit p95 ms") == 11)
    and (.headers | index("indoubt p95 ms") == 12)
    and (.rows | length >= 9)
    and ([.rows[] | select(.[0] == "256" and .[1] == "3")] | length == 1)
    and (fanout("256"; "3") < fanout("8"; "3") * 2 + 1)
    and (fanout("256"; "3") >= 3.0 and fanout("256"; "3") <= 3.8)
    and (fanout("32"; "full") > fanout("8"; "full") * 2)
    and ([.rows[] | select(.[9] == "2pc")] | length == 2)
    and (pmsgs("16"; "2pc") > pmsgs("16"; "owner-order"))
    and (pmsgs("16"; "o2pl") < pmsgs("16"; "2pc"))
    and ([.rows[] | select(.[9] == "2pc") | .[12]] | all(. != "—"))
' "$sc_a" >/dev/null || {
    echo "scaleout JSON failed schema/sublinearity/protocol validation" >&2
    exit 1
}
echo "ok: scaleout deterministic across --jobs, rf=3 fan-out flat, protocol rows ordered by message cost"

say "scaleout oracle smoke: --check on the sharded sweep must stay clean"
./target/release/harness --quick --json --seed 41 --check scaleout >"$sc_b"
/usr/bin/jq -e '.violations == []' "$sc_b" >/dev/null || {
    echo "scaleout --check recorded oracle violations" >&2
    /usr/bin/jq '.violations' "$sc_b" >&2
    exit 1
}
echo "ok: sharded sweep clean through the oracles"

say "all CI gates passed"
