//! The scaleup pitfall, live: "a prototype system demonstrates well …
//! but the system behaves very differently when the application is
//! scaled up to a large number of nodes."
//!
//! ```bash
//! cargo run --release --example scaleup_study
//! ```
//!
//! Sweeps the node count for eager-group, lazy-master and two-tier and
//! prints the measured danger curves next to the model's predictions.

use dangers_of_replication::core::{
    EagerSim, LazyMasterSim, Ownership, ReplicaDiscipline, SimConfig, TwoTierConfig, TwoTierSim,
    TwoTierWorkload,
};
use dangers_of_replication::model::{eager, lazy, Params};
use dangers_of_replication::sim::SimDuration;

fn main() {
    let base = Params::new(500.0, 1.0, 10.0, 4.0, 0.01);
    println!("DB_Size=500, TPS/node=10, Actions=4, Action_Time=10ms, 400 simulated seconds\n");
    println!(
        "{:>5} | {:>12} {:>12} | {:>12} {:>12} | {:>14}",
        "nodes", "eager dl/s", "(model)", "lzy-mstr dl/s", "(model)", "two-tier rej/s"
    );
    println!("{}", "-".repeat(82));
    for n in [1.0, 2.0, 4.0, 6.0, 8.0] {
        let p = base.with_nodes(n);
        let cfg = SimConfig::from_params(&p, 400, 7).with_warmup(5);
        let eager_run = EagerSim::new(cfg, ReplicaDiscipline::Serial, Ownership::Group).run();
        let lm_run = LazyMasterSim::new(cfg).run();
        let tt_rej = if n >= 2.0 {
            let tt = TwoTierConfig {
                sim: cfg,
                base_nodes: (n as u32 / 2).max(1),
                mobile_owned: 0,
                connected: SimDuration::from_secs(10),
                disconnected: SimDuration::from_secs(20),
                workload: TwoTierWorkload::Commutative { max_amount: 10 },
                initial_value: 1_000_000,
            };
            let r = TwoTierSim::new(tt).run();
            r.tentative_rejected as f64 / r.duration_secs
        } else {
            0.0
        };
        println!(
            "{:>5} | {:>12.4} {:>12.4} | {:>12.4} {:>12.4} | {:>14.4}",
            n,
            eager_run.deadlock_rate,
            eager::total_deadlock_rate(&p),
            lm_run.deadlock_rate,
            lazy::master_deadlock_rate(&p),
            tt_rej,
        );
    }
    println!(
        "\neager deadlocks blow up cubically; lazy-master quadratically; \
         commutative two-tier rejects nothing while still serving mobile nodes"
    );
    println!(
        "where the measured eager rate runs far above the model, the system has left\n\
         the model's light-contention regime entirely — the paper's scaleup pitfall:\n\
         \"suddenly, the deadlock and reconciliation rate is astronomically higher\" (§2)"
    );
}
