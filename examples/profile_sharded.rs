//! Ad-hoc timing of the sharded lazy-group bench configuration.
//! `--profile` arg enables the per-phase profiler; default prints
//! per-run wall times (min is the stable estimator on noisy hosts).
use dangers_of_replication as _;
use repl_core::{LazyGroupSim, Mobility, SimConfig};
use repl_model::Params;
use repl_telemetry::Profiler;

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let p = Params::new(500.0, 8.0, 10.0, 4.0, 0.01);
    let prof = if profile {
        Profiler::enabled()
    } else {
        Profiler::default()
    };
    let mut times = Vec::new();
    for _ in 0..50 {
        let c = SimConfig::from_params(&p, 30, 8)
            .with_shards(8, 3)
            .with_cross_shard(0.10);
        let t0 = std::time::Instant::now();
        std::hint::black_box(
            LazyGroupSim::new(c, Mobility::Connected)
                .with_profiler(prof.clone())
                .run(),
        );
        times.push(t0.elapsed());
    }
    times.sort();
    println!(
        "min {:?}  p25 {:?}  median {:?}",
        times[0], times[12], times[25]
    );
    for line in prof.report_lines() {
        println!("{line}");
    }
}
