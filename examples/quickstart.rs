//! Quickstart: the paper's claims in two minutes.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Ask the analytic model what happens when you replicate.
//! 2. Watch a simulated eager system actually do it.
//! 3. Run a real threaded lazy-group cluster and watch it converge.

use dangers_of_replication::cluster::Cluster;
use dangers_of_replication::core::{EagerSim, Op, Ownership, ReplicaDiscipline, SimConfig};
use dangers_of_replication::model::{eager, lazy, Params};
use dangers_of_replication::storage::{NodeId, ObjectId, Value};

fn main() {
    // ------------------------------------------------------------------
    // 1. The model: scaling from 1 to 10 nodes.
    // ------------------------------------------------------------------
    println!("== the model's warning (equations 12 and 19) ==");
    let base = Params::new(2_000.0, 1.0, 20.0, 4.0, 0.01);
    println!(
        "{:>6} {:>22} {:>22}",
        "nodes", "eager deadlocks/s", "lazy-master deadlocks/s"
    );
    for n in [1.0, 2.0, 5.0, 10.0] {
        let p = base.with_nodes(n);
        println!(
            "{:>6} {:>22.6} {:>22.6}",
            n,
            eager::total_deadlock_rate(&p),
            lazy::master_deadlock_rate(&p)
        );
    }
    let r = eager::total_deadlock_rate(&base.with_nodes(10.0))
        / eager::total_deadlock_rate(&base.with_nodes(1.0));
    println!("10x nodes => {r:.0}x deadlocks (the paper's thousand-fold blow-up)\n");

    // ------------------------------------------------------------------
    // 2. A discrete-event eager run at 6 nodes.
    // ------------------------------------------------------------------
    println!("== simulated eager replication, 6 nodes ==");
    let p6 = base.with_nodes(6.0).with_db_size(500.0);
    let cfg = SimConfig::from_params(&p6, 300, 1).with_warmup(5);
    let report = EagerSim::new(cfg, ReplicaDiscipline::Serial, Ownership::Group).run();
    println!(
        "committed:      {:>8} txns ({:.1}/s)",
        report.committed, report.commit_rate
    );
    println!(
        "waits:          {:>8} ({:.3}/s)",
        report.waits, report.wait_rate
    );
    println!(
        "deadlocks:      {:>8} ({:.3}/s)",
        report.deadlocks, report.deadlock_rate
    );
    println!(
        "mean latency:   {:>11.1} ms\n",
        report.mean_latency_secs * 1e3
    );

    // ------------------------------------------------------------------
    // 3. A real threaded lazy-group cluster.
    // ------------------------------------------------------------------
    println!("== threaded lazy-group cluster, 4 nodes ==");
    let cluster = Cluster::new(4, 100);
    for i in 0..100u32 {
        // Every node updates the same small database concurrently.
        let node = NodeId(i % 4);
        cluster.execute_one(node, ObjectId(u64::from(i % 10)), Op::Add(1));
        cluster.execute_one(
            node,
            ObjectId(u64::from(i % 7)),
            Op::Set(Value::Int(i64::from(i))),
        );
    }
    let stats = cluster.quiesce();
    let digests = cluster.digests();
    let converged = digests.iter().all(|&d| d == digests[0]);
    let reconciliations: u64 = stats.iter().map(|s| s.reconciliations).sum();
    println!("executed 200 transactions across 4 replicas");
    println!("dangerous (reconciled) updates: {reconciliations}");
    println!("replicas converged: {converged}");
    cluster.shutdown();
    println!("\nNext: `cargo run --release -p repl-harness -- all` regenerates every table.");
}
