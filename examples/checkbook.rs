//! The paper's running example: a joint checking account replicated in
//! your checkbook, your spouse's checkbook, and the bank's ledger.
//!
//! ```bash
//! cargo run --release --example checkbook
//! ```
//!
//! Part 1 shows the §6 lost-update problem with timestamped replace and
//! its cure with commutative increments. Part 2 runs the full two-tier
//! bank: mobile spouses writing tentative checks, the bank re-executing
//! them with the non-negative-balance acceptance criterion.

use dangers_of_replication::core::{TwoTierSim, TwoTierWorkload};
use dangers_of_replication::workload::checkbook;

fn main() {
    // ------------------------------------------------------------------
    // Part 1: why "change account from $1000 to $700" is dangerous.
    // ------------------------------------------------------------------
    println!("== §6: the lost update ==");
    let demo = checkbook::lost_update_demo();
    println!("account starts at $1000; you debit $300, spouse debits $700");
    println!(
        "timestamped replace : final balance ${} (spent $1000, ledger overstates by ${})",
        demo.replace_balance,
        demo.replace_balance - demo.increment_balance
    );
    println!(
        "commutative debits  : final balance ${} (both checks survived)\n",
        demo.increment_balance
    );

    // ------------------------------------------------------------------
    // Part 2: the two-tier bank.
    // ------------------------------------------------------------------
    println!("== §7: the two-tier bank ==");
    let accounts = 50;
    let spouses = 4;
    let opening = 300;
    let cfg = checkbook::two_tier_config(accounts, spouses, opening, 250, 300, 1996);
    println!(
        "{} accounts at ${} each; {} mobile checkbook holders, bank as base node",
        accounts, opening, spouses
    );
    assert!(matches!(cfg.workload, TwoTierWorkload::Commutative { .. }));
    let (report, master, replicas) = TwoTierSim::new(cfg).run_with_state();

    println!(
        "tentative checks written offline : {}",
        report.tentative_commits
    );
    println!(
        "cleared by the bank              : {}",
        report.tentative_accepted
    );
    println!(
        "bounced (would overdraw)         : {}",
        report.tentative_rejected
    );
    println!("bank-side deadlock aborts/retries: {}", report.deadlocks);

    // The §7 guarantees, checked live:
    let overdrawn = master
        .iter()
        .filter(|(_, v)| v.value.as_int().unwrap_or(0) < 0)
        .count();
    println!("accounts overdrawn at the bank   : {overdrawn} (criterion enforces 0)");
    let want = master.digest();
    let converged = replicas.iter().all(|r| r.digest() == want);
    println!("replicas converged to bank state : {converged}");
    println!("total money at the bank          : ${}", master.total_int());
    assert_eq!(overdrawn, 0, "acceptance criterion must hold");
    assert!(converged, "no system delusion");
    println!("\nno system delusion: the bank's books are the truth, and everyone agrees on them");
}
