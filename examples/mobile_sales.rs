//! A travelling salesman's order book — the paper's §7 quote scenario:
//! "if the price of an item has increased by a large amount, or if the
//! item is out of stock, then the salesman's price or delivery quote
//! must be reconciled with the customer."
//!
//! ```bash
//! cargo run --release --example mobile_sales
//! ```
//!
//! This example drives the two-tier *primitives* by hand — the dual
//! tentative/master versions, the input-parameter capture, and the
//! acceptance criteria — rather than the packaged simulator, so you can
//! see each §7 step individually.

use dangers_of_replication::core::{Criterion, Op, Operation, TxnSpec};
use dangers_of_replication::storage::{
    LamportClock, NodeId, ObjectId, ObjectStore, TentativeStore, Value,
};

/// Objects 0..N are per-item stock levels; objects N..2N are quoted
/// prices.
const ITEMS: u64 = 4;
const STOCK: u64 = 0;
const PRICE: u64 = ITEMS;

fn item_name(i: u64) -> &'static str {
    ["widgets", "gears", "sprockets", "flanges"][i as usize % 4]
}

fn main() {
    let laptop_node = NodeId(1);
    let mut hq_clock = LamportClock::new(NodeId(0));

    // Head office master data: stock and prices.
    let mut hq = ObjectStore::new(2 * ITEMS);
    for i in 0..ITEMS {
        hq.set(ObjectId(STOCK + i), Value::Int(10), hq_clock.tick());
        hq.set(
            ObjectId(PRICE + i),
            Value::Int(100 + 25 * i as i64),
            hq_clock.tick(),
        );
    }

    // The salesman syncs his laptop before leaving (lazy-master
    // refresh), then goes offline.
    let mut laptop = TentativeStore::new(2 * ITEMS);
    for (id, v) in hq.iter() {
        laptop.master_mut().set(id, v.value.clone(), v.ts);
    }
    let mut laptop_clock = LamportClock::new(laptop_node);
    println!("== salesman disconnects with a fresh copy of stock & prices ==\n");

    // Offline, he takes three orders. Each is a tentative transaction:
    // decrement stock, quoted at the price his laptop shows, with two
    // acceptance criteria: the sale must not oversell stock
    // (NonNegative) and the final price must not exceed his quote
    // (AtMost).
    struct Order {
        customer: &'static str,
        item: u64,
        qty: i64,
    }
    let orders = [
        Order {
            customer: "Acme Corp",
            item: 0,
            qty: 4,
        },
        Order {
            customer: "Globex",
            item: 0,
            qty: 8,
        },
        Order {
            customer: "Initech",
            item: 2,
            qty: 2,
        },
    ];

    /// A logged tentative transaction: spec, tentative outputs,
    /// customer, quoted price, quantity.
    type Logged<'a> = (TxnSpec, Vec<(ObjectId, Value)>, &'a str, i64, i64);
    let mut tentative: Vec<Logged> = Vec::new();
    for o in &orders {
        let stock_obj = ObjectId(STOCK + o.item);
        let quote = laptop
            .read(ObjectId(PRICE + o.item))
            .value
            .as_int()
            .unwrap();
        let spec = TxnSpec::new(vec![Operation::new(stock_obj, Op::Debit(o.qty))])
            .with_criterion(Criterion::NonNegative);
        // Tentative execution against local tentative versions.
        let current = laptop.read(stock_obj).value.clone();
        let new = spec.ops[0].op.apply(&current);
        laptop.write_tentative(stock_obj, new.clone(), laptop_clock.tick());
        println!(
            "tentative: {} orders {} {} @ ${} each (laptop stock now {})",
            o.customer,
            o.qty,
            item_name(o.item),
            quote,
            new
        );
        tentative.push((spec, vec![(stock_obj, new)], o.customer, quote, o.qty));
    }

    // Meanwhile, back at head office, a walk-in customer buys 5 widgets
    // and the widget price rises to $130.
    println!("\n== meanwhile at head office ==");
    let w_stock = ObjectId(STOCK);
    let left = hq.get(w_stock).value.as_int().unwrap() - 5;
    hq.set(w_stock, Value::Int(left), hq_clock.tick());
    hq.set(ObjectId(PRICE), Value::Int(130), hq_clock.tick());
    println!("a walk-in buys 5 widgets (stock now {left}); widget price raised to $130\n");

    // The salesman reconnects. Step 1: discard tentative versions.
    println!("== salesman reconnects: re-executing tentative transactions ==");
    laptop.discard_tentative();
    // Step 2: refresh master versions (lazy-master stream; here a
    // snapshot for brevity).
    for (id, v) in hq.iter() {
        laptop.master_mut().apply_lww(id, v.ts, v.value.clone());
    }
    // Step 3: the host base node re-runs each tentative transaction in
    // commit order against the master copies and applies the
    // acceptance criteria.
    for (spec, tentative_results, customer, quote, qty) in &tentative {
        let stock_obj = spec.ops[0].object;
        let item = stock_obj.0 - STOCK;
        let current = hq.get(stock_obj).value.clone();
        let base_result = spec.ops[0].op.apply(&current);
        let base_outputs = vec![(stock_obj, base_result.clone())];
        let stock_ok = spec.criterion.accepts(&base_outputs, tentative_results);
        let price_now = hq.get(ObjectId(PRICE + item)).value.as_int().unwrap();
        let price_ok = Criterion::AtMost(*quote)
            .accepts(&[(ObjectId(PRICE + item), Value::Int(price_now))], &[]);
        if stock_ok && price_ok {
            hq.set(stock_obj, base_result.clone(), hq_clock.tick());
            println!(
                "ACCEPTED  {customer}: {qty} {} shipped at ${price_now} (stock left {base_result})",
                item_name(item),
            );
        } else if !stock_ok {
            println!(
                "REJECTED  {customer}: only {} {} left — delivery quote must be renegotiated",
                current,
                item_name(item)
            );
        } else {
            println!("REJECTED  {customer}: price rose to ${price_now} above the ${quote} quote");
        }
    }

    println!("\nthe master order book stayed consistent throughout:");
    for i in 0..ITEMS {
        println!(
            "  {:9} stock {:>2}, price ${}",
            item_name(i),
            hq.get(ObjectId(STOCK + i)).value,
            hq.get(ObjectId(PRICE + i)).value
        );
    }
    let any_negative = hq.iter().any(|(_, v)| v.value.as_int().unwrap_or(0) < 0);
    assert!(
        !any_negative,
        "acceptance criteria guarantee non-negative stock"
    );
}
