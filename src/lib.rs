//! Facade crate for the *Dangers of Replication* reproduction suite.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency. See the individual
//! crates for the real documentation:
//!
//! * [`model`] — the paper's closed-form analytic model (equations 1-19).
//! * [`sim`] — deterministic discrete-event simulation substrate.
//! * [`storage`] — versioned object store, lock manager, deadlock detector.
//! * [`net`] — simulated network with delays and disconnection schedules.
//! * [`core`] — the five replication protocols and reconciliation machinery.
//! * [`workload`] — workload generators (uniform, Zipf, checkbook, ...).
//! * [`check`] — correctness oracles: history capture, per-scheme
//!   invariant checkers, and the shrinking schedule fuzzer.
//! * [`cluster`] — threaded node runtime over real channels.
//! * [`harness`] — experiment harness regenerating every figure and table.
//! * [`telemetry`] — structured event tracing, rate series, profiling.
//!
//! ```
//! use dangers_of_replication::model::{lazy, Params};
//!
//! // Lazy-master deadlocks grow quadratically (equation 19).
//! let p = Params::new(1_000.0, 1.0, 10.0, 4.0, 0.01);
//! let r1 = lazy::master_deadlock_rate(&p.with_nodes(1.0));
//! let r10 = lazy::master_deadlock_rate(&p.with_nodes(10.0));
//! assert!((r10 / r1 - 100.0).abs() < 1e-9);
//! ```

pub use repl_check as check;
pub use repl_cluster as cluster;
pub use repl_core as core;
pub use repl_harness as harness;
pub use repl_model as model;
pub use repl_net as net;
pub use repl_sim as sim;
pub use repl_storage as storage;
pub use repl_telemetry as telemetry;
pub use repl_workload as workload;
