//! Offline stand-in for `crossbeam`.
//!
//! The build environment resolves crates offline; the workspace only
//! uses `crossbeam::channel::{unbounded, Sender, Receiver}` in
//! single-consumer topologies, which `std::sync::mpsc` covers exactly.

pub mod channel {
    //! Unbounded MPSC channels with crossbeam's surface.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The sending half (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`; errors if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives; errors once all senders are
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block for at most `timeout` waiting for a value.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator over incoming values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_then_drain() {
            let (tx, rx) = unbounded();
            let txs: Vec<_> = (0..4).map(|_| tx.clone()).collect();
            drop(tx);
            let handles: Vec<_> = txs
                .into_iter()
                .enumerate()
                .map(|(i, tx)| std::thread::spawn(move || tx.send(i).unwrap()))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
