//! Offline stand-in for `serde_json`: compact/pretty emitters and a
//! recursive-descent parser over the vendored [`serde::Content`] model.
//!
//! Mirrors the real crate where this workspace can observe it:
//! `to_string`, `to_string_pretty`, `from_str`; non-finite floats emit
//! `null`; map keys are always JSON strings (numeric keys are
//! stringified, and the vendored integer impls parse them back).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Specialized `Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        use fmt::Write;
        // `{:?}` is the shortest round-trippable representation and is
        // valid JSON for finite values (e.g. `1.0`, `2.5e-3`).
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// JSON object keys must be strings: strings pass through, anything
/// else is rendered compactly and quoted.
fn write_key(key: &Content, out: &mut String) {
    match key {
        Content::Str(s) => write_escaped(s, out),
        other => {
            let mut tmp = String::new();
            write_compact(other, &mut tmp);
            write_escaped(&tmp, out);
        }
    }
}

fn write_compact(c: &Content, out: &mut String) {
    use fmt::Write;
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(c: &Content, depth: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(depth + 1, out);
                write_key(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            push_indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy an unescaped run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !float {
            if let Some(rest) = s.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if let Ok(v) = i64::try_from(v).map(|v| -v) {
                        return Ok(Content::I64(v));
                    }
                }
            } else if let Ok(v) = s.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        s.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error::new(format!("bad number `{s}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e-3").unwrap(), 2.5e-3);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1f980}";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é🦀""#).unwrap(), "é🦀");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, "a".to_owned()), (2, "b".to_owned())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[[1,"a"],[2,"b"]]"#);
        assert_eq!(from_str::<Vec<(u64, String)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = vec![vec![1u64, 2], vec![]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
    }
}
