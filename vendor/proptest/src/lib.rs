//! Offline stand-in for `proptest`.
//!
//! The build environment resolves crates offline, so the workspace
//! vendors the subset of proptest its tests use: `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `Just`,
//! `prop_oneof!`, `prop::collection::vec`, simple character-class
//! string strategies (`"[a-z]{1,6}"`), the `proptest!` macro with
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: no shrinking (a failing case
//! panics with the offending input printed), and generation is
//! deterministic per test name so runs are reproducible.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`] for boxing.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies
    /// (`prop_oneof!` support).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T: Debug> Union<T> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($idx:tt $t:ident),+) => {
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(0 A);
    tuple_strategy!(0 A, 1 B);
    tuple_strategy!(0 A, 1 B, 2 C);
    tuple_strategy!(0 A, 1 B, 2 C, 3 D);
    tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E);
    tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F);

    /// One parsed piece of a character-class pattern: a set of
    /// candidate chars and a repetition range.
    struct Piece {
        chars: Vec<char>,
        min: u32,
        max: u32,
    }

    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut pieces = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    for c in it.by_ref() {
                        match c {
                            ']' => break,
                            '-' if prev.is_some() => {
                                // Range like `a-z`: `prev` was already
                                // pushed; fill in the rest on the next
                                // char.
                                set.push('-');
                            }
                            c => {
                                if set.last() == Some(&'-') && prev.is_some() {
                                    set.pop();
                                    let lo = prev.expect("range start");
                                    for v in (lo as u32 + 1)..=(c as u32) {
                                        if let Some(ch) = char::from_u32(v) {
                                            set.push(ch);
                                        }
                                    }
                                } else {
                                    set.push(c);
                                }
                                prev = Some(c);
                            }
                        }
                    }
                    set
                }
                '\\' => vec![it.next().expect("escaped char")],
                c => vec![c],
            };
            // Optional repetition suffix.
            let (min, max) = match it.peek() {
                Some('{') => {
                    it.next();
                    let mut spec = String::new();
                    for c in it.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, "")) => (lo.parse().expect("repeat min"), 16),
                        Some((lo, hi)) => (
                            lo.parse().expect("repeat min"),
                            hi.parse().expect("repeat max"),
                        ),
                        None => {
                            let n = spec.parse().expect("repeat count");
                            (n, n)
                        }
                    }
                }
                Some('+') => {
                    it.next();
                    (1, 8)
                }
                Some('*') => {
                    it.next();
                    (0, 8)
                }
                Some('?') => {
                    it.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(!chars.is_empty(), "empty character class in `{pattern}`");
            pieces.push(Piece { chars, min, max });
        }
        pieces
    }

    /// String-literal strategies: a simple character-class pattern like
    /// `"[a-z]{1,6}"` generates matching strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let n = piece.min + rng.below(u64::from(piece.max - piece.min + 1)) as u32;
                for _ in 0..n {
                    let idx = rng.below(piece.chars.len() as u64) as usize;
                    out.push(piece.chars[idx]);
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length bounds for generated collections: `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;

    /// Deterministic split-mix RNG driving all generation.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeded RNG.
        pub fn new(seed: u64) -> Self {
            TestRng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "TestRng::below(0)");
            // Rejection sampling for uniformity.
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed test case (`prop_assert!` family).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Generates inputs and runs the test body for each case.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run `body` against `config.cases` generated inputs; panics
        /// (failing the surrounding `#[test]`) on the first failure,
        /// printing the offending input.
        pub fn run<S: Strategy>(
            &mut self,
            name: &str,
            strategy: &S,
            mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) {
            // Deterministic per-test seed (FNV-1a over the name).
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(seed ^ (u64::from(case) << 32));
                let input = strategy.generate(&mut rng);
                let debug = format!("{input:?}");
                if let Err(TestCaseError(msg)) = body(input) {
                    panic!(
                        "proptest `{name}` failed at case {case}/{}: {msg}\n  input: {debug}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

/// `proptest::prelude::prop` mirror: `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body; failure aborts only the current
/// case, reporting the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                stringify!($name),
                &($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..2000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn string_pattern_shape() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..500 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_plumbing_works(
            x in 0u64..100,
            v in prop::collection::vec(0u32..10, 0..5),
            tag in prop_oneof![Just(1u8), (2u8..4).prop_map(|v| v)],
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert_eq!(u64::from(tag) * 0, 0);
        }
    }
}
