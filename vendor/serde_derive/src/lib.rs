//! Offline stand-in for `serde_derive`.
//!
//! The build environment resolves crates offline, so this workspace
//! vendors a minimal serde data model (see `vendor/serde`) and this
//! crate provides the matching `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` macros, hand-rolled on top of the compiler's
//! built-in `proc_macro` API (no `syn`/`quote`).
//!
//! Supported input shapes — everything this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, like real serde),
//! * unit structs,
//! * non-generic enums with unit, newtype, tuple and struct variants,
//!   using serde's externally-tagged representation.
//!
//! Generics and `#[serde(...)]` attributes are not supported; the
//! macros panic with a clear message if they ever appear.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip outer attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The bracketed attribute body.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant list on top-level commas, tracking `<...>`
/// depth so commas inside generic types don't split.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field body: for each comma-separated item,
/// the first identifier after attributes/visibility.
fn named_field_names(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut it = tokens.into_iter().peekable();
            skip_attrs_and_vis(&mut it);
            match it.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive stub: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let mut it = tokens.into_iter().peekable();
            skip_attrs_and_vis(&mut it);
            let name = match it.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive stub: expected variant name, got {other:?}"),
            };
            let kind = match it.next() {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(named_field_names(g.stream()))
                }
                other => panic!("serde_derive stub: unsupported variant shape: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    match (kw.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                name,
                fields: named_field_names(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                name,
                arity: split_top_level(g.stream()).len(),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct { name },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Shape::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (kw, other) => panic!("serde_derive stub: unsupported input `{kw}` {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn str_key(s: &str) -> String {
    format!("::serde::Content::Str(::std::string::String::from({s:?}))")
}

fn gen_serialize(shape: &Shape) -> String {
    let mut body = String::new();
    let name = match shape {
        Shape::NamedStruct { name, fields } => {
            body.push_str("::serde::Content::Map(::std::vec![");
            for f in fields {
                body.push_str(&format!(
                    "({}, ::serde::Serialize::to_content(&self.{f})),",
                    str_key(f)
                ));
            }
            body.push_str("])");
            name
        }
        Shape::TupleStruct { name, arity: 1 } => {
            body.push_str("::serde::Serialize::to_content(&self.0)");
            name
        }
        Shape::TupleStruct { name, arity } => {
            body.push_str("::serde::Content::Seq(::std::vec![");
            for i in 0..*arity {
                body.push_str(&format!("::serde::Serialize::to_content(&self.{i}),"));
            }
            body.push_str("])");
            name
        }
        Shape::UnitStruct { name } => {
            body.push_str("::serde::Content::Null");
            name
        }
        Shape::Enum { name, variants } => {
            body.push_str("match self {");
            for v in variants {
                let vname = &v.name;
                let tag = str_key(vname);
                match &v.kind {
                    VariantKind::Unit => body.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(::std::string::String::from({vname:?})),"
                    )),
                    VariantKind::Tuple(1) => body.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec![({tag}, ::serde::Serialize::to_content(f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![({tag}, ::serde::Content::Seq(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(",");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({}, ::serde::Serialize::to_content({f}))", str_key(f)))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(::std::vec![({tag}, ::serde::Content::Map(::std::vec![{}]))]),",
                            items.join(",")
                        ));
                    }
                }
            }
            body.push('}');
            name
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_content(&self) -> ::serde::Content {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                .collect();
            let body = format!(
                "match content {{ \
                   ::serde::Content::Map(entries) => ::std::result::Result::Ok({name} {{ {} }}), \
                   other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                     \"expected map for struct `{name}`, got {{other:?}}\"))), \
                 }}",
                inits.join(",")
            );
            (name, body)
        }
        Shape::TupleStruct { name, arity: 1 } => {
            let body = format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
            );
            (name, body)
        }
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            let body = format!(
                "match content {{ \
                   ::serde::Content::Seq(items) if items.len() == {arity} => \
                     ::std::result::Result::Ok({name}({})), \
                   other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                     \"expected {arity}-element sequence for `{name}`, got {{other:?}}\"))), \
                 }}",
                inits.join(",")
            );
            (name, body)
        }
        Shape::UnitStruct { name } => {
            let body = format!("{{ let _ = content; ::std::result::Result::Ok({name}) }}");
            (name, body)
        }
        Shape::Enum { name, variants } => {
            // Unit variants arrive as a bare string tag.
            let mut unit_arms = String::new();
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                    ));
                }
            }
            // Data variants arrive as a single-entry map keyed by the tag.
            let mut tag_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        // Also accept `{"Tag": null}` for robustness.
                        tag_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    VariantKind::Tuple(1) => tag_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                           ::serde::Deserialize::from_content(value)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "{vname:?} => match value {{ \
                               ::serde::Content::Seq(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{vname}({})), \
                               other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"bad payload for `{name}::{vname}`: {{other:?}}\"))), \
                             }},",
                            inits.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "{vname:?} => match value {{ \
                               ::serde::Content::Map(entries) => \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}), \
                               other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"bad payload for `{name}::{vname}`: {{other:?}}\"))), \
                             }},",
                            inits.join(",")
                        ));
                    }
                }
            }
            let body = format!(
                "match content {{ \
                   ::serde::Content::Str(tag) => match tag.as_str() {{ \
                     {unit_arms} \
                     other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                       \"unknown unit variant `{{other}}` for enum `{name}`\"))), \
                   }}, \
                   ::serde::Content::Map(entries) if entries.len() == 1 => {{ \
                     let (key, value) = &entries[0]; \
                     let tag = match key {{ \
                       ::serde::Content::Str(s) => s.as_str(), \
                       other => return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"non-string enum tag {{other:?}} for `{name}`\"))), \
                     }}; \
                     let _ = value; \
                     match tag {{ \
                       {tag_arms} \
                       other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                         \"unknown variant `{{other}}` for enum `{name}`\"))), \
                     }} \
                   }} \
                   other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                     \"bad representation for enum `{name}`: {{other:?}}\"))), \
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_content(content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

/// `#[derive(Serialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    gen_serialize(&parse_shape(input))
        .parse()
        .expect("serde_derive stub: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    gen_deserialize(&parse_shape(input))
        .parse()
        .expect("serde_derive stub: generated Deserialize impl must parse")
}
