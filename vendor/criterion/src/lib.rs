//! Offline stand-in for `criterion`.
//!
//! The build environment resolves crates offline, so the workspace
//! vendors the benchmark surface it uses: `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up then
//! `sample_size` timed passes — and results are printed as
//! `bench <group>/<id>: median <t> (min <t>, max <t>)`. There is no
//! statistical analysis, HTML report, or baseline store; the point is
//! that `cargo bench` runs and prints comparable wall-clock numbers.

use std::time::{Duration, Instant};

/// How batches are sized in `iter_batched` (accepted, not used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Standalone `bench_function` (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
        };
        g.bench_function(id, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` and print its median sample.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up pass.
        let mut warmup = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let label = if self.name.is_empty() {
            id.to_owned()
        } else {
            format!("{}/{id}", self.name)
        };
        println!(
            "bench {label}: median {median:?} (min {:?}, max {:?}, n={})",
            samples[0],
            samples[samples.len() - 1],
            samples.len()
        );
        self
    }

    /// End the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; accumulates timed work.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` (one call per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(out);
    }

    /// Time `routine` over inputs built by the untimed `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        drop(out);
    }
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
