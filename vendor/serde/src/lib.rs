//! Offline stand-in for the `serde` crate.
//!
//! The build environment resolves crates offline, so the workspace
//! vendors the tiny subset of serde it actually uses: a self-describing
//! [`Content`] value model, [`Serialize`]/[`Deserialize`] traits over
//! it, and re-exported derive macros (`vendor/serde_derive`). The JSON
//! front-end lives in `vendor/serde_json`.
//!
//! Representation choices mirror real serde where the workspace can
//! observe them: newtype structs are transparent, enums are externally
//! tagged, missing `Option` fields deserialize to `None`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// A self-describing value: the intermediate representation every
/// serializable type converts to and from.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative (or any signed) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key/value map (keys are usually `Str`).
    Map(Vec<(Content, Content)>),
}

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Content`] data model.
pub trait Serialize {
    /// This value as a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// Conversion from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Build `Self` from a [`Content`] tree.
    fn from_content(content: &Content) -> Result<Self, Error>;

    /// Called when a struct field is absent; overridden by `Option` so
    /// missing optional fields become `None`.
    #[doc(hidden)]
    fn missing_field(field: &'static str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Look up `name` in a struct's serialized entries (derive support).
#[doc(hidden)]
pub fn field<T: Deserialize>(
    entries: &[(Content, Content)],
    name: &'static str,
) -> Result<T, Error> {
    for (k, v) in entries {
        if let Content::Str(s) = k {
            if s == name {
                return T::from_content(v);
            }
        }
    }
    T::missing_field(name)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v).map_err(Error::custom),
                    Content::I64(v) => <$t>::try_from(*v).map_err(Error::custom),
                    // Stringified keys of JSON object maps.
                    Content::Str(s) => s.parse::<$t>().map_err(Error::custom),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v).map_err(Error::custom),
                    Content::I64(v) => <$t>::try_from(*v).map_err(Error::custom),
                    Content::Str(s) => s.parse::<$t>().map_err(Error::custom),
                    other => Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::custom(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Generic impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn missing_field(_field: &'static str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(content).map(VecDeque::from)
    }
}

macro_rules! impl_tuple {
    ($($idx:tt $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == N => {
                        Ok(($($t::from_content(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {N}-element sequence, got {other:?}"
                    ))),
                }
            }
        }
    };
}

impl_tuple!(0 A);
impl_tuple!(0 A, 1 B);
impl_tuple!(0 A, 1 B, 2 C);
impl_tuple!(0 A, 1 B, 2 C, 3 D);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        let r: Option<u64> = Deserialize::missing_field("x").unwrap();
        assert_eq!(r, None);
        assert!(<u64 as Deserialize>::missing_field("x").is_err());
    }

    #[test]
    fn integers_roundtrip_through_str_keys() {
        let c = Content::Str("42".to_owned());
        assert_eq!(u32::from_content(&c).unwrap(), 42);
        assert_eq!(i64::from_content(&c).unwrap(), 42);
    }

    #[test]
    fn tuple_arity_checked() {
        let c = Content::Seq(vec![Content::U64(1), Content::U64(2)]);
        assert_eq!(<(u64, u64)>::from_content(&c).unwrap(), (1, 2));
        assert!(<(u64,)>::from_content(&c).is_err());
    }
}
