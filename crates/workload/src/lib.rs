//! # repl-workload — workload generators and scenario presets
//!
//! * [`presets`] — the shared parameter presets every experiment,
//!   bench and example draws from (one source of truth);
//! * [`generator`] — deterministic [`TxnSpec`](repl_core::TxnSpec)
//!   streams with configurable access patterns (uniform / Zipf) and
//!   operation mixes (blind writes / commutative / appends);
//! * [`checkbook`] — the paper's joint-checking-account running
//!   example, packaged as a two-tier configuration and as the §6
//!   lost-update demonstration;
//! * [`tpcb`] — a TPC-B-style scaled banking layout (the paper's
//!   "database size grows with the number of nodes" benchmark shape).

#![warn(missing_docs)]

pub mod checkbook;
pub mod generator;
pub mod presets;
pub mod tpcb;

pub use generator::{OpMix, SpecGenerator};
