//! A TPC-B-style scaled banking workload.
//!
//! The paper invokes the TPC benchmarks when discussing equation (13):
//! "one might imagine that the database size grows with the number of
//! nodes (as in the checkbook example earlier, or in the TPC-A, TPC-B,
//! and TPC-C benchmarks). More nodes, and more transactions mean more
//! data." This module provides that shape: a bank whose object count
//! scales with the configured branch count, and whose transaction is
//! the classic TPC-B profile (update one account, its teller, and its
//! branch) expressed as commutative transformations.

use repl_core::{Criterion, Op, Operation, TxnSpec};
use repl_sim::SimRng;
use repl_storage::ObjectId;

/// Scale constants, in miniature (the real TPC-B uses 100 000 accounts
/// per branch; the simulator only needs the *shape*).
const TELLERS_PER_BRANCH: u64 = 10;
const ACCOUNTS_PER_BRANCH: u64 = 100;

/// A scaled TPC-B-like bank layout over a dense object-id space:
/// `[branches | tellers | accounts]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcbLayout {
    /// Number of branches (the scale factor).
    pub branches: u64,
}

impl TpcbLayout {
    /// A bank with `branches` branches — the paper's "database size
    /// grows with the number of nodes" maps one-or-more branches to
    /// each node.
    pub fn new(branches: u64) -> Self {
        assert!(branches >= 1, "a bank needs at least one branch");
        TpcbLayout { branches }
    }

    /// Total objects (`DB_Size`) for this scale.
    pub fn db_size(&self) -> u64 {
        self.branches * (1 + TELLERS_PER_BRANCH + ACCOUNTS_PER_BRANCH)
    }

    /// Object id of a branch's balance record.
    pub fn branch(&self, b: u64) -> ObjectId {
        debug_assert!(b < self.branches);
        ObjectId(b)
    }

    /// Object id of teller `t` of branch `b`.
    pub fn teller(&self, b: u64, t: u64) -> ObjectId {
        debug_assert!(b < self.branches && t < TELLERS_PER_BRANCH);
        ObjectId(self.branches + b * TELLERS_PER_BRANCH + t)
    }

    /// Object id of account `a` of branch `b`.
    pub fn account(&self, b: u64, a: u64) -> ObjectId {
        debug_assert!(b < self.branches && a < ACCOUNTS_PER_BRANCH);
        ObjectId(self.branches * (1 + TELLERS_PER_BRANCH) + b * ACCOUNTS_PER_BRANCH + a)
    }

    /// Generate one TPC-B-style transaction: a deposit/withdrawal of
    /// `delta` routed through a random teller, updating account, teller
    /// and branch balances — three commutative updates guarded by the
    /// non-negative-balance criterion.
    pub fn transaction(&self, rng: &mut SimRng, max_amount: i64) -> TxnSpec {
        let b = rng.gen_range(self.branches);
        let t = rng.gen_range(TELLERS_PER_BRANCH);
        let a = rng.gen_range(ACCOUNTS_PER_BRANCH);
        let amount = 1 + rng.gen_range(max_amount.max(1) as u64) as i64;
        let op = if rng.chance(0.5) {
            Op::Add(amount)
        } else {
            Op::Debit(amount)
        };
        TxnSpec::new(vec![
            Operation::new(self.account(b, a), op.clone()),
            Operation::new(self.teller(b, t), op.clone()),
            Operation::new(self.branch(b), op),
        ])
        .with_criterion(Criterion::NonNegative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_object_space() {
        let l = TpcbLayout::new(3);
        assert_eq!(l.db_size(), 3 * 111);
        // Branches, tellers and accounts occupy disjoint ranges.
        let mut ids = vec![];
        for b in 0..3 {
            ids.push(l.branch(b).0);
            for t in 0..TELLERS_PER_BRANCH {
                ids.push(l.teller(b, t).0);
            }
            for a in 0..ACCOUNTS_PER_BRANCH {
                ids.push(l.account(b, a).0);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, l.db_size(), "ids must be unique");
        assert_eq!(*ids.last().unwrap(), l.db_size() - 1, "ids must be dense");
    }

    #[test]
    fn db_size_scales_linearly_with_branches() {
        let one = TpcbLayout::new(1).db_size();
        let ten = TpcbLayout::new(10).db_size();
        assert_eq!(ten, 10 * one);
    }

    #[test]
    fn transactions_touch_account_teller_branch() {
        let l = TpcbLayout::new(2);
        let mut rng = SimRng::new(5);
        for _ in 0..50 {
            let spec = l.transaction(&mut rng, 100);
            assert_eq!(spec.len(), 3);
            assert!(spec.is_commutative());
            assert_eq!(spec.criterion, Criterion::NonNegative);
            let ids: Vec<u64> = spec.objects().map(|o| o.0).collect();
            // One account, one teller, one branch — in their ranges.
            assert!(ids[0] >= l.branches * (1 + TELLERS_PER_BRANCH));
            assert!(ids[1] >= l.branches && ids[1] < l.branches * (1 + TELLERS_PER_BRANCH));
            assert!(ids[2] < l.branches);
        }
    }

    #[test]
    fn transactions_are_deterministic_per_seed() {
        let l = TpcbLayout::new(4);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..10 {
            assert_eq!(l.transaction(&mut a, 50), l.transaction(&mut b, 50));
        }
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn zero_branches_rejected() {
        TpcbLayout::new(0);
    }
}
