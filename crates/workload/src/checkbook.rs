//! The paper's running example: a joint checking account replicated in
//! three places — your checkbook, your spouse's checkbook, and the
//! bank's ledger.
//!
//! This module packages the example as ready-made configurations:
//!
//! * [`two_tier_config`] — the bank as base node, the two spouses as
//!   mobile nodes writing tentative checks with the non-negative-balance
//!   acceptance criterion;
//! * [`lost_update_demo`] — the §6 demonstration that timestamped
//!   *replace* loses one of two concurrent balance updates while
//!   commutative *increments* preserve both.

use repl_core::convergent::{DocId, NotesStore, NotesUpdate};
use repl_core::{SimConfig, TwoTierConfig, TwoTierWorkload};
use repl_model::Params;
use repl_sim::SimDuration;
use repl_storage::{NodeId, Timestamp, Value};

/// Build the checkbook two-tier configuration.
///
/// * `accounts` — number of joint accounts at the bank (`DB_Size`);
/// * `spouses` — number of mobile checkbook holders;
/// * `opening_balance` — initial balance of each account;
/// * `max_check` — largest single check;
/// * `horizon_secs`, `seed` — run length and determinism.
///
/// The spouses disconnect for long stretches (the "writes checks all
/// day, syncs at night" pattern, compressed so the simulation finishes
/// quickly).
pub fn two_tier_config(
    accounts: u64,
    spouses: u32,
    opening_balance: i64,
    max_check: i64,
    horizon_secs: u64,
    seed: u64,
) -> TwoTierConfig {
    let nodes = f64::from(spouses) + 1.0;
    let params = Params::new(accounts as f64, nodes, 2.0, 2.0, 0.005);
    TwoTierConfig {
        sim: SimConfig::from_params(&params, horizon_secs, seed),
        base_nodes: 1,
        mobile_owned: 0,
        connected: SimDuration::from_secs(5),
        disconnected: SimDuration::from_secs(20),
        workload: TwoTierWorkload::Commutative {
            max_amount: max_check,
        },
        initial_value: opening_balance,
    }
}

/// Outcome of the §6 lost-update demonstration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostUpdateDemo {
    /// Final balance under timestamped replace: the newer write
    /// silently overwrote the older one, losing its debit.
    pub replace_balance: i64,
    /// Final balance under commutative increments (both debits
    /// preserved).
    pub increment_balance: i64,
}

/// Run the demonstration: a $1000 account; you debit $300 and your
/// spouse debits $700 concurrently.
///
/// Under timestamped **replace**, each party writes their *computed new
/// balance* ($700 and $300 respectively); the later timestamp wins and
/// the other update is lost — the account shows money that was already
/// spent. Under commutative **increments**, both debits survive and the
/// balance is exactly $0.
pub fn lost_update_demo() -> LostUpdateDemo {
    let account = DocId(1);
    let you = NodeId(1);
    let spouse = NodeId(2);

    // --- Timestamped replace (the record-value anti-pattern). ---
    let mut ledger = NotesStore::new();
    ledger.apply(&NotesUpdate::Replace {
        doc: account,
        ts: Timestamp::new(1, NodeId(0)),
        value: Value::Int(1000),
    });
    // You saw $1000, debit $300, write the new value $700.
    ledger.apply(&NotesUpdate::Replace {
        doc: account,
        ts: Timestamp::new(2, you),
        value: Value::Int(700),
    });
    // Your spouse also saw $1000, debits $700, writes $300 — newer
    // timestamp, so it silently overwrites your update.
    ledger.apply(&NotesUpdate::Replace {
        doc: account,
        ts: Timestamp::new(3, spouse),
        value: Value::Int(300),
    });
    let replace_balance = ledger
        .get(account)
        .and_then(|d| d.value())
        .and_then(|v| v.as_int())
        .unwrap_or(0);

    // --- Commutative increments (the transformation pattern). ---
    let mut ledger2 = NotesStore::new();
    ledger2.apply(&NotesUpdate::Replace {
        doc: account,
        ts: Timestamp::new(1, NodeId(0)),
        value: Value::Int(1000),
    });
    ledger2.apply(&NotesUpdate::Increment {
        doc: account,
        ts: Timestamp::new(2, you),
        delta: -300,
    });
    ledger2.apply(&NotesUpdate::Increment {
        doc: account,
        ts: Timestamp::new(3, spouse),
        delta: -700,
    });
    let increment_balance = ledger2
        .get(account)
        .and_then(|d| d.value())
        .and_then(|v| v.as_int())
        .unwrap_or(0);

    LostUpdateDemo {
        replace_balance,
        increment_balance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_core::TwoTierSim;

    #[test]
    fn demo_shows_lost_update() {
        let demo = lost_update_demo();
        // Replace: $700 of spending vanished — balance says $300 even
        // though $1000 was spent from $1000.
        assert_eq!(demo.replace_balance, 300);
        // Increments: exactly right.
        assert_eq!(demo.increment_balance, 0);
    }

    #[test]
    fn checkbook_config_runs_and_keeps_balances_nonnegative() {
        let cfg = two_tier_config(50, 3, 200, 150, 120, 42);
        let (report, master, _) = TwoTierSim::new(cfg).run_with_state();
        assert!(report.tentative_commits > 0, "spouses wrote no checks");
        for (id, v) in master.iter() {
            assert!(
                v.value.as_int().unwrap() >= 0,
                "account {id} overdrawn at the bank"
            );
        }
    }

    #[test]
    fn config_shape() {
        let cfg = two_tier_config(100, 2, 1000, 100, 60, 1);
        assert_eq!(cfg.sim.nodes, 3);
        assert_eq!(cfg.base_nodes, 1);
        assert_eq!(cfg.mobile_nodes(), 2);
        assert_eq!(cfg.initial_value, 1000);
    }
}
