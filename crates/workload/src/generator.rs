//! Generic transaction-specification generators, used by examples and
//! integration tests to drive the public protocol APIs with realistic
//! operation mixes.

use repl_core::{Criterion, Op, Operation, TxnSpec};
use repl_sim::{AccessPattern, Sampler, SimRng};
use repl_storage::{ObjectId, Value};

/// The operation mix of a generated transaction stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpMix {
    /// Blind `Set` writes of random integers (record-value updates —
    /// the §6 anti-pattern).
    BlindWrites,
    /// Commutative `Add`/`Debit` with amounts in `[1, max_amount]`
    /// (transformation updates — the §6 recommendation).
    Commutative {
        /// Largest single amount.
        max_amount: i64,
    },
    /// Document appends (Notes-style timestamped append payloads).
    Appends,
}

/// A deterministic stream of [`TxnSpec`]s.
#[derive(Debug)]
pub struct SpecGenerator {
    sampler: Sampler,
    rng: SimRng,
    actions: usize,
    mix: OpMix,
    criterion: Criterion,
    counter: u64,
}

impl SpecGenerator {
    /// A generator over `db_size` objects producing `actions`-operation
    /// transactions with the given mix and acceptance criterion.
    pub fn new(
        db_size: u64,
        actions: usize,
        pattern: AccessPattern,
        mix: OpMix,
        criterion: Criterion,
        seed: u64,
    ) -> Self {
        SpecGenerator {
            sampler: Sampler::new(pattern, db_size),
            rng: SimRng::stream(seed, "spec-generator"),
            actions,
            mix,
            criterion,
            counter: 0,
        }
    }

    /// Produce the next transaction specification.
    pub fn next_spec(&mut self) -> TxnSpec {
        self.counter += 1;
        let objects = self.sampler.sample_distinct(&mut self.rng, self.actions);
        let ops = objects
            .into_iter()
            .map(|o| {
                let obj = ObjectId(o);
                let op = match self.mix {
                    OpMix::BlindWrites => Op::Set(Value::Int(self.rng.next_u64() as i64)),
                    OpMix::Commutative { max_amount } => {
                        let amount = 1 + self.rng.gen_range(max_amount.max(1) as u64) as i64;
                        if self.rng.chance(0.5) {
                            Op::Add(amount)
                        } else {
                            Op::Debit(amount)
                        }
                    }
                    OpMix::Appends => Op::Append(format!("entry-{}", self.counter)),
                };
                Operation::new(obj, op)
            })
            .collect();
        TxnSpec::new(ops).with_criterion(self.criterion.clone())
    }

    /// Produce `n` specifications.
    pub fn take_specs(&mut self, n: usize) -> Vec<TxnSpec> {
        (0..n).map(|_| self.next_spec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(mix: OpMix) -> SpecGenerator {
        SpecGenerator::new(
            100,
            4,
            AccessPattern::Uniform,
            mix,
            Criterion::AlwaysAccept,
            7,
        )
    }

    #[test]
    fn specs_have_requested_shape() {
        let mut g = generator(OpMix::BlindWrites);
        let s = g.next_spec();
        assert_eq!(s.len(), 4);
        let objs: Vec<_> = s.objects().collect();
        let mut dedup = objs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "objects must be distinct");
    }

    #[test]
    fn commutative_mix_is_commutative() {
        let mut g = generator(OpMix::Commutative { max_amount: 10 });
        for _ in 0..20 {
            assert!(g.next_spec().is_commutative());
        }
    }

    #[test]
    fn blind_writes_are_not_commutative() {
        let mut g = generator(OpMix::BlindWrites);
        assert!(!g.next_spec().is_commutative());
    }

    #[test]
    fn append_mix_produces_appends() {
        let mut g = generator(OpMix::Appends);
        let s = g.next_spec();
        assert!(s.ops.iter().all(|o| matches!(o.op, Op::Append(_))));
    }

    #[test]
    fn deterministic_streams() {
        let mut a = generator(OpMix::Commutative { max_amount: 5 });
        let mut b = generator(OpMix::Commutative { max_amount: 5 });
        assert_eq!(a.take_specs(10), b.take_specs(10));
    }

    #[test]
    fn criterion_propagates() {
        let mut g = SpecGenerator::new(
            50,
            2,
            AccessPattern::Uniform,
            OpMix::Commutative { max_amount: 5 },
            Criterion::NonNegative,
            1,
        );
        assert_eq!(g.next_spec().criterion, Criterion::NonNegative);
    }

    #[test]
    fn zipf_pattern_skews_objects() {
        let mut g = SpecGenerator::new(
            1000,
            1,
            AccessPattern::Zipf { theta: 0.9 },
            OpMix::BlindWrites,
            Criterion::AlwaysAccept,
            3,
        );
        let hot = (0..500)
            .filter(|_| g.next_spec().objects().next().unwrap().0 < 10)
            .count();
        assert!(hot > 100, "Zipf head share too small: {hot}/500");
    }
}
