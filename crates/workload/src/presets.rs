//! Named parameter presets shared by the harness, benches, examples and
//! tests — one source of truth for every experiment's configuration.
//!
//! The presets are scaled so the discrete-event runs finish in seconds
//! of wall-clock time while staying inside the model's validity regime
//! (`PW ≪ 1`, `DB_Size ≫ Nodes`) except where an experiment
//! deliberately leaves it.

use repl_model::Params;

/// The baseline single-node configuration used by experiments E1/E2:
/// moderate contention so waits are measurable but `PW ≪ 1` holds.
pub fn single_node_base() -> Params {
    Params::new(2_000.0, 1.0, 50.0, 4.0, 0.01)
}

/// The replication scaleup baseline for E5/E6/E8/E10: per-node load
/// stays fixed while `Nodes` sweeps.
pub fn scaleup_base() -> Params {
    Params::new(2_000.0, 1.0, 20.0, 4.0, 0.01)
}

/// The node counts every scaleup experiment sweeps over.
pub fn node_sweep() -> Vec<f64> {
    vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0]
}

/// Transaction sizes for the `Actions⁵` sensitivity sweep (E6b).
pub fn action_sweep() -> Vec<f64> {
    vec![2.0, 3.0, 4.0, 5.0, 6.0, 8.0]
}

/// Disconnect windows (seconds) for the mobile experiment E9.
pub fn disconnect_sweep() -> Vec<f64> {
    vec![5.0, 10.0, 20.0, 40.0, 80.0]
}

/// The mobile lazy-group baseline for E9.
pub fn mobile_base() -> Params {
    Params::new(2_000.0, 4.0, 5.0, 4.0, 0.01).with_disconnected_time(20.0)
}

/// Default simulated horizon (seconds) for rate measurements.
pub const HORIZON_SECS: u64 = 200;

/// Default warm-up (seconds) excluded from measurement windows.
pub const WARMUP_SECS: u64 = 20;

/// Default root seed for all experiments (override per-run for
/// confidence intervals).
pub const SEED: u64 = 0x5EED_1996;

#[cfg(test)]
mod tests {
    use super::*;
    use repl_model::single;

    #[test]
    fn presets_validate() {
        single_node_base().validate().unwrap();
        scaleup_base().validate().unwrap();
        mobile_base().validate().unwrap();
    }

    #[test]
    fn baseline_is_in_model_regime() {
        // PW must be well below 1 for the closed forms to hold.
        let pw = single::wait_probability(&single_node_base());
        assert!(pw < 0.1, "PW {pw} too high for model validity");
        assert!(pw > 1e-4, "PW {pw} too low to measure in finite runs");
    }

    #[test]
    fn sweeps_are_sorted_and_nonempty() {
        for sweep in [node_sweep(), action_sweep(), disconnect_sweep()] {
            assert!(!sweep.is_empty());
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn scaleup_stays_tractable_at_max_nodes() {
        // At the largest node count the eager transaction population
        // must stay far below DB_Size (no thrashing).
        let p = scaleup_base().with_nodes(10.0);
        let pop =
            repl_model::eager::total_transactions(&p, repl_model::eager::ParallelismModel::Serial);
        assert!(pop < p.db_size / 10.0);
    }
}
