//! Time-resolved rate series: fixed-width buckets of event counts,
//! one series per engine run, yielding per-bucket wait / deadlock /
//! reconciliation / commit rates.
//!
//! The paper's equations predict *steady-state* rates; bucketing the
//! event stream is how a run shows whether it ever reached steady
//! state (e.g. the reconciliation backlog of equation (18) draining
//! after a reconnect).

use crate::event::{Event, EventKind};
use crate::sinks::Tracer;
use repl_sim::{SimDuration, SimTime};

/// Event counts inside one `[k·width, (k+1)·width)` window.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Committed user transactions.
    pub commits: u64,
    /// Lock waits.
    pub waits: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Reconciliations performed.
    pub reconciliations: u64,
    /// Replica-update commits.
    pub replica_commits: u64,
    /// Messages sent.
    pub messages: u64,
    /// Messages delivered (batched deliveries count each contained
    /// message, so the series agrees at any propagation batch size).
    pub deliveries: u64,
    /// Tentative commits at mobile nodes.
    pub tentative_commits: u64,
    /// Tentative transactions rejected at the base.
    pub tentative_rejected: u64,
}

impl Bucket {
    fn observe(&mut self, kind: &EventKind) {
        match kind {
            EventKind::TxnCommit => self.commits += 1,
            EventKind::LockWait { .. } => self.waits += 1,
            // Timeout resolutions are the same measured quantity as
            // detected cycles — eq. (12)'s deadlock rate under the
            // alternate resolution policy.
            EventKind::DeadlockDetected { .. } | EventKind::LockTimeout { .. } => {
                self.deadlocks += 1;
            }
            EventKind::Reconcile => self.reconciliations += 1,
            EventKind::ReplicaApply => self.replica_commits += 1,
            EventKind::MsgSent { .. } | EventKind::ReplicaSend { .. } => self.messages += 1,
            EventKind::MsgDelivered { .. } => self.deliveries += 1,
            EventKind::TentativeCommit => self.tentative_commits += 1,
            EventKind::TentativeRejected => self.tentative_rejected += 1,
            _ => {}
        }
    }

    fn is_empty(&self) -> bool {
        *self == Bucket::default()
    }
}

/// Per-second rates of one bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketRates {
    /// Window start, seconds of simulated time.
    pub start_secs: f64,
    /// Effective window length, seconds (the final bucket of a run may
    /// be partial).
    pub width_secs: f64,
    /// Commits per second.
    pub commit_rate: f64,
    /// Waits per second.
    pub wait_rate: f64,
    /// Deadlocks per second.
    pub deadlock_rate: f64,
    /// Reconciliations per second.
    pub reconciliation_rate: f64,
}

/// The bucketed series of one engine run.
#[derive(Debug, Clone)]
pub struct RunSeries {
    /// The run's label (from [`EventKind::RunStart`]).
    pub label: String,
    /// Dense buckets from simulated time zero; interior empty windows
    /// are materialized as all-zero buckets.
    pub buckets: Vec<Bucket>,
    /// Largest event timestamp seen, if any event arrived.
    pub last_event: Option<SimTime>,
    /// Set by [`SeriesAggregator::close_run`]: the run's true horizon,
    /// which bounds the final (possibly partial) bucket.
    pub end: Option<SimTime>,
}

impl RunSeries {
    fn new(label: String) -> Self {
        RunSeries {
            label,
            buckets: Vec::new(),
            last_event: None,
            end: None,
        }
    }

    /// Per-bucket rates. The final bucket's divisor is clipped to the
    /// run's end (if [`SeriesAggregator::close_run`] recorded one), so
    /// a partial last window is not under-reported.
    pub fn rates(&self, width: SimDuration) -> Vec<BucketRates> {
        let width_secs = width.as_secs_f64();
        let n = self.buckets.len();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let start_secs = i as f64 * width_secs;
                let mut w = width_secs;
                if i + 1 == n {
                    if let Some(end) = self.end {
                        let partial = end.as_secs_f64() - start_secs;
                        if partial > 0.0 && partial < w {
                            w = partial;
                        }
                    }
                }
                BucketRates {
                    start_secs,
                    width_secs: w,
                    commit_rate: b.commits as f64 / w,
                    wait_rate: b.waits as f64 / w,
                    deadlock_rate: b.deadlocks as f64 / w,
                    reconciliation_rate: b.reconciliations as f64 / w,
                }
            })
            .collect()
    }

    /// True if no counted event ever landed in any bucket.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Bucket::is_empty)
    }
}

/// A [`Tracer`] that folds the event stream into fixed-width buckets,
/// starting a fresh series at every [`EventKind::RunStart`].
#[derive(Debug)]
pub struct SeriesAggregator {
    width: SimDuration,
    runs: Vec<RunSeries>,
}

impl SeriesAggregator {
    /// An aggregator with `width`-long windows.
    pub fn new(width: SimDuration) -> Self {
        assert!(width.0 > 0, "bucket width must be positive");
        SeriesAggregator {
            width,
            runs: Vec::new(),
        }
    }

    /// The configured window length.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// The completed series, one per run.
    pub fn runs(&self) -> &[RunSeries] {
        &self.runs
    }

    /// Record the true horizon of the current run so the final bucket's
    /// rates divide by its real (possibly partial) length.
    pub fn close_run(&mut self, end: SimTime) {
        if let Some(run) = self.runs.last_mut() {
            run.end = Some(end);
        }
    }

    fn current_run(&mut self) -> &mut RunSeries {
        if self.runs.is_empty() {
            // Events before any RunStart marker still aggregate.
            self.runs.push(RunSeries::new("run".to_owned()));
        }
        self.runs.last_mut().expect("non-empty runs")
    }

    /// The bucket index of `at`: half-open windows, so an event exactly
    /// on a boundary `k·width` belongs to bucket `k`.
    pub fn bucket_index(&self, at: SimTime) -> usize {
        (at.0 / self.width.0) as usize
    }
}

impl Tracer for SeriesAggregator {
    fn run_end(&mut self, at: SimTime) {
        self.close_run(at);
    }

    fn record(&mut self, event: &Event) {
        if let EventKind::RunStart { label } = &event.kind {
            self.runs.push(RunSeries::new(label.clone()));
            return;
        }
        let idx = self.bucket_index(event.at);
        let run = self.current_run();
        if run.buckets.len() <= idx {
            run.buckets.resize(idx + 1, Bucket::default());
        }
        run.buckets[idx].observe(&event.kind);
        run.last_event = Some(match run.last_event {
            Some(prev) if prev.0 >= event.at.0 => prev,
            _ => event.at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_storage::{NodeId, TxnId};

    fn commit_at(micros: u64) -> Event {
        Event::new(SimTime(micros), NodeId(0), TxnId(1), EventKind::TxnCommit)
    }

    #[test]
    fn boundary_event_opens_next_bucket() {
        let mut agg = SeriesAggregator::new(SimDuration::from_secs(10));
        agg.record(&commit_at(9_999_999));
        agg.record(&commit_at(10_000_000)); // exactly on the boundary
        let run = &agg.runs()[0];
        assert_eq!(run.buckets.len(), 2);
        assert_eq!(run.buckets[0].commits, 1);
        assert_eq!(run.buckets[1].commits, 1);
    }

    #[test]
    fn interior_empty_buckets_are_materialized() {
        let mut agg = SeriesAggregator::new(SimDuration::from_secs(1));
        agg.record(&commit_at(100));
        agg.record(&commit_at(3_500_000)); // bucket 3; 1 and 2 empty
        let run = &agg.runs()[0];
        assert_eq!(run.buckets.len(), 4);
        assert!(run.buckets[1].is_empty() && run.buckets[2].is_empty());
        let rates = run.rates(SimDuration::from_secs(1));
        assert_eq!(rates[1].commit_rate, 0.0);
        assert_eq!(rates[3].commit_rate, 1.0);
    }

    #[test]
    fn partial_final_bucket_uses_true_width() {
        let mut agg = SeriesAggregator::new(SimDuration::from_secs(10));
        // 25-second run: buckets [0,10), [10,20), [20,25).
        agg.record(&commit_at(21_000_000));
        agg.record(&commit_at(24_000_000));
        agg.close_run(SimTime::from_secs(25));
        let run = &agg.runs()[0];
        let rates = run.rates(SimDuration::from_secs(10));
        assert_eq!(rates.len(), 3);
        assert!((rates[2].width_secs - 5.0).abs() < 1e-12);
        assert!((rates[2].commit_rate - 2.0 / 5.0).abs() < 1e-12);
        // Full interior buckets divide by the full width.
        assert!((rates[0].width_secs - 10.0).abs() < 1e-12);
    }

    #[test]
    fn run_start_splits_series() {
        let mut agg = SeriesAggregator::new(SimDuration::from_secs(1));
        agg.record(&Event::system(
            SimTime::ZERO,
            NodeId(0),
            EventKind::RunStart {
                label: "a".to_owned(),
            },
        ));
        agg.record(&commit_at(10));
        agg.record(&Event::system(
            SimTime::ZERO,
            NodeId(0),
            EventKind::RunStart {
                label: "b".to_owned(),
            },
        ));
        agg.record(&commit_at(20));
        agg.record(&commit_at(30));
        assert_eq!(agg.runs().len(), 2);
        assert_eq!(agg.runs()[0].label, "a");
        assert_eq!(agg.runs()[0].buckets[0].commits, 1);
        assert_eq!(agg.runs()[1].buckets[0].commits, 2);
    }
}
