//! Mergeable metrics: log-linear histograms, counters, and gauges.
//!
//! Unlike the tracer sinks (`Rc`-based, serial-only), everything here
//! is a plain value: an engine fills a [`RunMetrics`] while it runs,
//! hands it out inside its `Report`, and the harness merges registries
//! *after* the parallel sweep returns — in point order, on one thread.
//! Merging is order-independent at the representation level too
//! (element-wise sums, min/max), so a `--metrics` export is
//! byte-identical at any `--jobs` count.
//!
//! Histograms record sim-time durations in integer microseconds with a
//! fixed log-linear bucket layout (16 linear sub-buckets per power of
//! two, exact below 16 µs): quantile error is bounded at ~6% while the
//! layout never depends on the data, which is what makes two
//! histograms from different runs mergeable bucket-by-bucket.

use repl_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Linear sub-buckets per power-of-two tier (16 ⇒ ≤ 1/16 relative
/// bucket width).
const SUB_BITS: u32 = 4;
/// Sub-buckets per tier.
const SUB_BUCKETS: u32 = 1 << SUB_BITS;
/// Number of power-of-two tiers above the exact range: values with the
/// top bit at position 4..=63.
const TIERS: u32 = 64 - SUB_BITS;
/// Total bucket count: 16 exact buckets for values 0..16, then 16
/// sub-buckets per tier.
pub const BUCKET_COUNT: usize = (SUB_BUCKETS + TIERS * SUB_BUCKETS) as usize;

/// The bucket a microsecond value lands in.
fn bucket_index(v: u64) -> usize {
    if v < u64::from(SUB_BUCKETS) {
        return v as usize;
    }
    let tier = 63 - v.leading_zeros(); // >= SUB_BITS
    let offset = (v >> (tier - SUB_BITS)) - u64::from(SUB_BUCKETS);
    (SUB_BUCKETS + (tier - SUB_BITS) * SUB_BUCKETS) as usize + offset as usize
}

/// Inclusive `[low, high]` value range of bucket `b`.
fn bucket_bounds(b: usize) -> (u64, u64) {
    let b = b as u64;
    let sub = u64::from(SUB_BUCKETS);
    if b < sub {
        return (b, b);
    }
    let tier = SUB_BITS as u64 + (b - sub) / sub;
    let offset = (b - sub) % sub;
    let low = (sub + offset) << (tier - SUB_BITS as u64);
    let width = 1u64 << (tier - SUB_BITS as u64);
    // `low + (width - 1)`: the top bucket's high end is exactly
    // `u64::MAX`, so adding width first would overflow.
    (low, low + (width - 1))
}

/// A fixed-layout log-linear histogram of sim-time durations
/// (microseconds). Bucket counts are element-wise addable, so
/// [`Histogram::merge`] is commutative and associative — the property
/// the parallel sweep relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }
}

impl Histogram {
    /// Number of buckets in the fixed log-linear layout (identical in
    /// every histogram, which is what makes merge element-wise).
    pub const BUCKET_COUNT: usize = BUCKET_COUNT;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket a value lands in — exposed so tests can verify the
    /// value → bucket → bounds round-trip.
    pub fn bucket_index(v: u64) -> usize {
        bucket_index(v)
    }

    /// Inclusive `[low, high]` range of bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        bucket_bounds(b)
    }

    /// Record one duration sample.
    #[inline]
    pub fn record(&mut self, d: SimDuration) {
        self.record_value(d.0);
    }

    /// Record one raw microsecond (or other unit-consistent) value.
    #[inline]
    pub fn record_value(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Fold `other` into `self`. Order-independent: merging any
    /// permutation of the same histograms yields identical bytes.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (exact), 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (exact), 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (exact up to the saturating sum), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the ⌈q·count⌉-th sample, clamped to the exact
    /// observed `[min, max]`. 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bounds(b).1.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Quantile in (possibly fractional) seconds, for reporting.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.value_at_quantile(q) as f64 / 1e6
    }

    /// Largest sample in seconds.
    pub fn max_secs(&self) -> f64 {
        self.max() as f64 / 1e6
    }
}

/// Serialized form: only the non-zero buckets, as `(index, count)`
/// pairs in index order — registries hold many mostly-empty histograms.
/// The vendored serde derive has no container attributes, so
/// [`Histogram`]'s serde impls route through this repr by hand.
#[derive(Serialize, Deserialize)]
struct HistogramRepr {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<(u32, u64)>,
}

impl From<Histogram> for HistogramRepr {
    fn from(h: Histogram) -> Self {
        HistogramRepr {
            count: h.count,
            sum: h.sum,
            min: h.min(),
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(b, &n)| (b as u32, n))
                .collect(),
        }
    }
}

impl From<HistogramRepr> for Histogram {
    fn from(r: HistogramRepr) -> Self {
        let mut h = Histogram {
            count: r.count,
            sum: r.sum,
            min: r.min,
            max: r.max,
            ..Histogram::default()
        };
        for (b, n) in r.buckets {
            if let Some(slot) = h.buckets.get_mut(b as usize) {
                *slot = n;
            }
        }
        h
    }
}

impl Serialize for Histogram {
    fn to_content(&self) -> serde::Content {
        HistogramRepr::from(self.clone()).to_content()
    }
}

impl Deserialize for Histogram {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        HistogramRepr::from_content(content).map(Histogram::from)
    }
}

/// A mergeable summary gauge: count/sum/min/max of every observation
/// (no "last value", which would depend on merge order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Gauge {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl Gauge {
    /// Record one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Fold `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &Gauge) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Every distribution one engine run collects: named counters, gauges,
/// and histograms. `BTreeMap` keys keep serialization (and therefore
/// the `--metrics` export) deterministically ordered.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Named event counters (aborts, retries, …).
    pub counters: BTreeMap<String, u64>,
    /// Named summary gauges (per-replica staleness, …).
    pub gauges: BTreeMap<String, Gauge>,
    /// Named duration histograms (commit latency, lock wait, …).
    pub histograms: BTreeMap<String, Histogram>,
}

impl RunMetrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        RunMetrics::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Add `n` to counter `name`.
    #[inline]
    pub fn incr(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_owned(), n);
            }
        }
    }

    /// Record one duration sample into histogram `name`. The map
    /// lookup allocates only on the first sample per name.
    #[inline]
    pub fn record(&mut self, name: &str, d: SimDuration) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(d),
            None => {
                let mut h = Histogram::new();
                h.record(d);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Record one raw (unit-less) value into histogram `name` — batch
    /// sizes, queue depths, and other non-duration distributions.
    #[inline]
    pub fn record_value(&mut self, name: &str, v: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record_value(v),
            None => {
                let mut h = Histogram::new();
                h.record_value(v);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Record one observation into gauge `name`.
    #[inline]
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.gauges.get_mut(name) {
            Some(g) => g.observe(v),
            None => {
                let mut g = Gauge::default();
                g.observe(v);
                self.gauges.insert(name.to_owned(), g);
            }
        }
    }

    /// Counter value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Fold `other` into `self`, key by key. Commutative and
    /// associative, like every leaf merge.
    pub fn merge(&mut self, other: &RunMetrics) {
        for (name, n) in &other.counters {
            self.incr(name, *n);
        }
        for (name, g) in &other.gauges {
            match self.gauges.get_mut(name) {
                Some(mine) => mine.merge(g),
                None => {
                    self.gauges.insert(name.clone(), *g);
                }
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }
}

/// A snapshot of every run's metrics, keyed by run label — what
/// `--metrics FILE` serializes. Absorbing the same labels in the same
/// order yields byte-identical JSON regardless of how many worker
/// threads produced the underlying reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Export format version.
    pub schema: u32,
    /// Per-run metrics, keyed by run label.
    pub runs: BTreeMap<String, RunMetrics>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            schema: 1,
            runs: BTreeMap::new(),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Merge `metrics` into the run labelled `label` (created if new).
    /// Empty metrics are skipped so off-path runs leave no key behind.
    pub fn absorb(&mut self, label: &str, metrics: &RunMetrics) {
        if metrics.is_empty() {
            return;
        }
        match self.runs.get_mut(label) {
            Some(run) => run.merge(metrics),
            None => {
                self.runs.insert(label.to_owned(), metrics.clone());
            }
        }
    }

    /// Serialize to pretty JSON (deterministic key order) with a
    /// trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("registry serializes");
        s.push('\n');
        s
    }

    /// Parse a registry back from its JSON export.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            123_456,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let b = bucket_index(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "v={v} bucket={b} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn buckets_tile_the_range() {
        // Consecutive buckets abut exactly: no gaps, no overlap.
        for b in 0..BUCKET_COUNT - 1 {
            let (_, hi) = bucket_bounds(b);
            let (lo_next, _) = bucket_bounds(b + 1);
            assert_eq!(hi + 1, lo_next, "bucket {b}");
        }
        assert_eq!(bucket_bounds(BUCKET_COUNT - 1).1, u64::MAX);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record_value(v * 1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 100_000);
        let p50 = h.value_at_quantile(0.50);
        let p99 = h.value_at_quantile(0.99);
        // Log-linear resolution: within one bucket width (1/16).
        assert!((45_000..=55_000).contains(&p50), "p50={p50}");
        assert!((95_000..=100_000).contains(&p99), "p99={p99}");
        assert_eq!(h.value_at_quantile(1.0), 100_000);
        // q=0 lands in the lowest occupied bucket; its upper bound is
        // within one bucket width of the exact min.
        let p0 = h.value_at_quantile(0.0);
        assert!((1000..=1063).contains(&p0), "p0={p0}");
    }

    #[test]
    fn quantile_of_single_sample_is_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(250));
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.value_at_quantile(q), 250_000);
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..500u64 {
            a.record_value(v * 7 % 10_000);
            b.record_value(v * 13 % 90_000);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 1000);
    }

    #[test]
    fn sparse_serde_round_trips() {
        let mut h = Histogram::new();
        for v in [0, 3, 17, 12_345, 777_777_777] {
            h.record_value(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        // Sparse: far fewer entries than the 976 dense buckets.
        assert!(json.len() < 400, "not sparse: {} bytes", json.len());
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        // Empty histograms round-trip too.
        let empty = Histogram::new();
        let back: Histogram =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(empty, back);
    }

    #[test]
    fn gauge_tracks_extremes() {
        let mut g = Gauge::default();
        g.observe(5);
        g.observe(2);
        g.observe(9);
        assert_eq!((g.count, g.min, g.max), (3, 2, 9));
        let mut other = Gauge::default();
        other.observe(1);
        g.merge(&other);
        assert_eq!((g.count, g.min, g.max), (4, 1, 9));
        assert!((g.mean() - 4.25).abs() < 1e-12);
    }

    #[test]
    fn registry_absorb_merges_same_label() {
        let mut m = RunMetrics::new();
        m.incr("aborts", 2);
        m.record("commit_latency", SimDuration::from_millis(10));
        m.observe("staleness_n1", 4);
        let mut reg = MetricsRegistry::new();
        reg.absorb("e11 eager", &m);
        reg.absorb("e11 eager", &m);
        let run = &reg.runs["e11 eager"];
        assert_eq!(run.counter("aborts"), 4);
        assert_eq!(run.histogram("commit_latency").unwrap().count(), 2);
        assert_eq!(run.gauge("staleness_n1").unwrap().count, 2);
        // Empty metrics leave no key.
        reg.absorb("noop", &RunMetrics::new());
        assert!(!reg.runs.contains_key("noop"));
    }

    #[test]
    fn registry_json_round_trips() {
        let mut m = RunMetrics::new();
        m.incr("retries", 7);
        m.record("lock_wait", SimDuration::from_micros(42));
        let mut reg = MetricsRegistry::new();
        reg.absorb("run", &m);
        let json = reg.to_json();
        assert!(json.ends_with('\n'));
        let back = MetricsRegistry::from_json(&json).unwrap();
        assert_eq!(reg, back);
    }
}
