//! # repl-telemetry — structured tracing for every engine
//!
//! The paper's argument is entirely about *rates* — waits, deadlocks,
//! reconciliations (equations (10)–(19)) — but an end-of-run `Report`
//! is one mean per run. This crate gives every engine a structured
//! event stream so runs can be inspected in time:
//!
//! * [`Event`]/[`EventKind`] — one typed variant per point the engines
//!   bump a `Metrics` counter, stamped with `SimTime`, `NodeId`,
//!   `TxnId`; deadlocks carry the actual waits-for cycle,
//! * [`Tracer`] — the sink trait, with four implementations:
//!   [`NullTracer`] (zero-cost default), [`RingBuffer`] (last-N events
//!   for post-mortems), [`JsonlSink`] (streaming file export, the
//!   harness's `--trace FILE`), and [`SeriesAggregator`] (fixed-width
//!   time buckets yielding per-bucket rates, the harness's
//!   `--series SECS`),
//! * [`TraceHandle`]/[`SyncTraceHandle`] — the switch engines carry;
//!   with no sink attached the event-builder closure never runs,
//! * [`Profiler`] — wall-clock timers around event-loop phases (the
//!   harness's `--profile`),
//! * [`metrics`] — mergeable distributions ([`Histogram`], [`Gauge`],
//!   [`RunMetrics`], [`MetricsRegistry`]): plain values engines carry
//!   in their reports, so — unlike the `Rc`-based tracer handles —
//!   they compose with the parallel sweep executor and the harness's
//!   `--metrics FILE` export is byte-identical at any `--jobs` count.
//!
//! Tracing is strictly observational: attaching any sink must leave a
//! same-seed run's `Report` bit-identical (the root crate's
//! determinism guard test enforces this).

#![warn(missing_docs)]

pub mod event;
pub mod handle;
pub mod metrics;
pub mod profile;
pub mod series;
pub mod sinks;

pub use event::{AbortReason, Event, EventKind};
pub use handle::{SyncTraceHandle, TraceHandle};
pub use metrics::{Gauge, Histogram, MetricsRegistry, RunMetrics};
pub use profile::{PhaseStat, Profiler};
pub use series::{Bucket, BucketRates, RunSeries, SeriesAggregator};
pub use sinks::{parse_jsonl, Fanout, JsonlSink, NullTracer, RingBuffer, Tracer};
