//! Wall-clock profiling of event-loop phases (`--profile`).
//!
//! Unlike the event stream — which lives in simulated time — the
//! profiler measures *real* time spent in each engine phase, so it
//! answers "where does a run's wall-clock go", not "what did the
//! simulated system do".

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Accumulated wall-clock cost of one named phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseStat {
    /// Number of timed entries.
    pub calls: u64,
    /// Total wall-clock time.
    pub total: Duration,
}

/// A cheap, cloneable wall-clock profiler. Disabled (`off`) it holds
/// no state and [`Profiler::start`] returns `None` without reading the
/// clock.
#[derive(Clone, Default, Debug)]
pub struct Profiler {
    phases: Option<Rc<RefCell<HashMap<&'static str, PhaseStat>>>>,
}

impl Profiler {
    /// The zero-cost default.
    pub fn off() -> Self {
        Profiler::default()
    }

    /// An enabled profiler.
    pub fn enabled() -> Self {
        Profiler {
            phases: Some(Rc::new(RefCell::new(HashMap::new()))),
        }
    }

    /// True if timing is collected.
    pub fn is_enabled(&self) -> bool {
        self.phases.is_some()
    }

    /// Start timing a phase; pass the token to [`Profiler::stop`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.phases.as_ref().map(|_| Instant::now())
    }

    /// Stop timing `phase` (no-op when disabled).
    #[inline]
    pub fn stop(&self, phase: &'static str, started: Option<Instant>) {
        if let (Some(phases), Some(started)) = (&self.phases, started) {
            let mut map = phases.borrow_mut();
            let stat = map.entry(phase).or_default();
            stat.calls += 1;
            stat.total += started.elapsed();
        }
    }

    /// Time a closure as one phase entry.
    #[inline]
    pub fn scope<T>(&self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let token = self.start();
        let out = f();
        self.stop(phase, token);
        out
    }

    /// Snapshot of all phases, sorted by descending total time.
    pub fn stats(&self) -> Vec<(&'static str, PhaseStat)> {
        let Some(phases) = &self.phases else {
            return Vec::new();
        };
        let mut stats: Vec<_> = phases.borrow().iter().map(|(k, v)| (*k, *v)).collect();
        stats.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(b.0)));
        stats
    }

    /// Human-readable per-phase lines, sorted by descending total.
    pub fn report_lines(&self) -> Vec<String> {
        self.stats()
            .into_iter()
            .map(|(phase, s)| {
                let mean = if s.calls > 0 {
                    s.total / u32::try_from(s.calls.min(u64::from(u32::MAX))).unwrap_or(1)
                } else {
                    Duration::ZERO
                };
                format!(
                    "{phase:<24} {:>12?} total {:>10} calls {:>12?} mean",
                    s.total, s.calls, mean
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_profiler_reads_no_clock() {
        let p = Profiler::off();
        assert!(p.start().is_none());
        p.stop("x", None);
        assert!(p.stats().is_empty());
    }

    #[test]
    fn enabled_profiler_accumulates() {
        let p = Profiler::enabled();
        for _ in 0..3 {
            p.scope("phase-a", || std::hint::black_box(1 + 1));
        }
        let t = p.start();
        p.stop("phase-b", t);
        let stats = p.stats();
        assert_eq!(stats.len(), 2);
        let a = stats.iter().find(|(n, _)| *n == "phase-a").unwrap();
        assert_eq!(a.1.calls, 3);
        assert_eq!(p.report_lines().len(), 2);
    }
}
