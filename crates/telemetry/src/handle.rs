//! Tracer handles threaded through the engines.
//!
//! A handle is the engine-facing switch: engines call
//! [`TraceHandle::emit`] with a closure, and when no sink is attached
//! the closure never runs — the off-path costs one branch on an empty
//! `Vec`, so an untraced simulation keeps its pre-telemetry hot path
//! (the bench guard in `crates/bench` holds this to <5%).

use crate::event::Event;
use crate::sinks::Tracer;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// A cheap, cloneable handle to zero or more [`Tracer`] sinks, for the
/// single-threaded simulation engines.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sinks: Vec<Rc<RefCell<dyn Tracer>>>,
}

impl TraceHandle {
    /// The default: no sinks, events are never constructed.
    pub fn off() -> Self {
        TraceHandle::default()
    }

    /// A handle owning a single sink.
    pub fn new(tracer: impl Tracer + 'static) -> Self {
        TraceHandle {
            sinks: vec![Rc::new(RefCell::new(tracer))],
        }
    }

    /// A handle to a sink the caller keeps shared access to (read the
    /// sink back after the run).
    pub fn shared<T: Tracer + 'static>(tracer: &Rc<RefCell<T>>) -> Self {
        TraceHandle {
            sinks: vec![Rc::clone(tracer) as Rc<RefCell<dyn Tracer>>],
        }
    }

    /// Add another sink to this handle.
    pub fn attach<T: Tracer + 'static>(&mut self, tracer: &Rc<RefCell<T>>) {
        self.sinks
            .push(Rc::clone(tracer) as Rc<RefCell<dyn Tracer>>);
    }

    /// True if at least one sink is attached.
    pub fn is_active(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Record the event `build` produces. `build` runs only when a
    /// sink is attached; emission sites pay nothing to format or
    /// allocate when tracing is off.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if self.sinks.is_empty() {
            return;
        }
        let event = build();
        for sink in &self.sinks {
            sink.borrow_mut().record(&event);
        }
    }

    /// Tell every sink the current run ended at simulated time `at`.
    pub fn run_end(&self, at: repl_sim::SimTime) {
        for sink in &self.sinks {
            sink.borrow_mut().run_end(at);
        }
    }

    /// Flush every attached sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.borrow_mut().flush();
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The thread-safe sibling of [`TraceHandle`] for the threaded cluster
/// runtime, where several node threads share one sink.
#[derive(Clone, Default)]
pub struct SyncTraceHandle {
    sinks: Vec<Arc<Mutex<dyn Tracer + Send>>>,
}

impl SyncTraceHandle {
    /// The default: no sinks.
    pub fn off() -> Self {
        SyncTraceHandle::default()
    }

    /// A handle owning a single sink.
    pub fn new(tracer: impl Tracer + Send + 'static) -> Self {
        SyncTraceHandle {
            sinks: vec![Arc::new(Mutex::new(tracer))],
        }
    }

    /// A handle to a sink the caller keeps shared access to.
    pub fn shared<T: Tracer + Send + 'static>(tracer: &Arc<Mutex<T>>) -> Self {
        SyncTraceHandle {
            sinks: vec![Arc::clone(tracer) as Arc<Mutex<dyn Tracer + Send>>],
        }
    }

    /// True if at least one sink is attached.
    pub fn is_active(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Record the event `build` produces (only if a sink is attached).
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if self.sinks.is_empty() {
            return;
        }
        let event = build();
        for sink in &self.sinks {
            if let Ok(mut guard) = sink.lock() {
                guard.record(&event);
            }
        }
    }

    /// Tell every sink the current run ended at simulated time `at`.
    pub fn run_end(&self, at: repl_sim::SimTime) {
        for sink in &self.sinks {
            if let Ok(mut guard) = sink.lock() {
                guard.run_end(at);
            }
        }
    }

    /// Flush every attached sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            if let Ok(mut guard) = sink.lock() {
                guard.flush();
            }
        }
    }
}

impl std::fmt::Debug for SyncTraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncTraceHandle")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::sinks::RingBuffer;
    use repl_sim::SimTime;
    use repl_storage::NodeId;

    #[test]
    fn off_handle_never_builds() {
        let h = TraceHandle::off();
        h.emit(|| unreachable!("must not construct events when off"));
        assert!(!h.is_active());
    }

    #[test]
    fn shared_sink_observed_after_run() {
        let ring = Rc::new(RefCell::new(RingBuffer::new(8)));
        let mut h = TraceHandle::shared(&ring);
        let ring2 = Rc::new(RefCell::new(RingBuffer::new(8)));
        h.attach(&ring2);
        h.emit(|| Event::system(SimTime::ZERO, NodeId(1), EventKind::Reconnect));
        assert_eq!(ring.borrow().total_recorded(), 1);
        assert_eq!(ring2.borrow().total_recorded(), 1);
    }

    #[test]
    fn sync_handle_shares_across_threads() {
        let ring = Arc::new(Mutex::new(RingBuffer::new(64)));
        let h = SyncTraceHandle::shared(&ring);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    h.emit(|| Event::system(SimTime(i), NodeId(i as u32), EventKind::Reconnect));
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(ring.lock().unwrap().total_recorded(), 4);
    }
}
