//! Tracer sinks: the no-op default, a bounded post-mortem ring, a
//! streaming JSONL exporter, and a fan-out combinator.

use crate::event::Event;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Observes the event stream of one simulation run.
///
/// Implementations must be passive: recording an event may never feed
/// back into the simulation (the determinism guard test in the root
/// crate asserts a traced run's `Report` is bit-identical to an
/// untraced one).
pub trait Tracer {
    /// Record one event.
    fn record(&mut self, event: &Event);

    /// The current run finished at simulated time `at` (engines call
    /// this with their horizon). Sinks that bucket by time use it to
    /// bound the final window; others ignore it.
    fn run_end(&mut self, _at: repl_sim::SimTime) {}

    /// Flush buffered output (end of run).
    fn flush(&mut self) {}
}

/// The zero-cost default: records nothing.
///
/// An unattached [`TraceHandle`](crate::TraceHandle) never even
/// constructs the [`Event`], so the usual "null tracer" is simply no
/// handle at all; this type exists for code that wants an explicit
/// `dyn Tracer` that drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _event: &Event) {}
}

/// Keeps the last `capacity` events for post-mortem dumps (attach one
/// in a test; print [`RingBuffer::dump`] on assertion failure).
#[derive(Debug)]
pub struct RingBuffer {
    capacity: usize,
    events: VecDeque<Event>,
    /// Total events ever recorded (≥ `events.len()`).
    seen: u64,
}

impl RingBuffer {
    /// A ring keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.max(1)),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// The retained events as an owned vector.
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Total number of events recorded over the run (including ones
    /// that have since been evicted).
    pub fn total_recorded(&self) -> u64 {
        self.seen
    }

    /// Multi-line human-readable dump of the retained tail.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let evicted = self.seen - self.events.len() as u64;
        if evicted > 0 {
            let _ = writeln!(out, "… {evicted} earlier events evicted …");
        }
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        out
    }
}

impl Tracer for RingBuffer {
    fn record(&mut self, event: &Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
        self.seen += 1;
    }
}

/// Streams every event as one JSON object per line.
pub struct JsonlSink<W: Write = BufWriter<File>> {
    out: W,
    lines: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::from_writer(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Stream events into an arbitrary writer.
    pub fn from_writer(out: W) -> Self {
        JsonlSink { out, lines: 0 }
    }

    /// Number of lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Recover the writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Tracer for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let line = serde_json::to_string(event).expect("events always serialize");
        // I/O errors must not perturb the simulation; drop the line.
        if writeln!(self.out, "{line}").is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Parse a JSONL export (the `--trace FILE` output) back into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Duplicates the stream into several sinks (e.g. `--trace` and
/// `--series` together).
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Tracer>>,
}

impl Fanout {
    /// An empty fan-out.
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Add a sink.
    pub fn push(&mut self, sink: Box<dyn Tracer>) {
        self.sinks.push(sink);
    }
}

impl Tracer for Fanout {
    fn record(&mut self, event: &Event) {
        for s in &mut self.sinks {
            s.record(event);
        }
    }

    fn run_end(&mut self, at: repl_sim::SimTime) {
        for s in &mut self.sinks {
            s.run_end(at);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use repl_sim::SimTime;
    use repl_storage::{NodeId, TxnId};

    fn ev(i: u64) -> Event {
        Event::new(SimTime(i), NodeId(0), TxnId(i), EventKind::TxnCommit)
    }

    #[test]
    fn ring_keeps_only_tail() {
        let mut ring = RingBuffer::new(3);
        for i in 0..10 {
            ring.record(&ev(i));
        }
        assert_eq!(ring.total_recorded(), 10);
        let kept: Vec<u64> = ring.events().map(|e| e.txn.0).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert!(ring.dump().contains("7 earlier events evicted"));
    }

    #[test]
    fn jsonl_roundtrips() {
        let mut sink = JsonlSink::from_writer(Vec::new());
        for i in 0..5 {
            sink.record(&ev(i));
        }
        assert_eq!(sink.lines_written(), 5);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back[4], ev(4));
    }
}
