//! The typed event vocabulary: everything an engine can observe,
//! stamped with simulated time, the observing node, and the acting
//! transaction.

use repl_sim::SimTime;
use repl_storage::{Lsn, NodeId, ObjectId, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a transaction was rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The request would have closed a waits-for cycle; the requester
    /// is the deadlock victim (the model's equation (3)).
    Deadlock,
    /// A replica update lost the timestamp safety test and the local
    /// state had to be reconciled.
    Conflict,
    /// The node disconnected mid-transaction.
    Disconnect,
    /// The lock wait exceeded the configured timeout (§2's "most
    /// systems use timeout" deadlock resolution): the waiter is
    /// presumed deadlocked and aborted.
    Timeout,
    /// The node crashed with the transaction in flight.
    Crash,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::Deadlock => write!(f, "deadlock"),
            AbortReason::Conflict => write!(f, "conflict"),
            AbortReason::Disconnect => write!(f, "disconnect"),
            AbortReason::Timeout => write!(f, "timeout"),
            AbortReason::Crash => write!(f, "crash"),
        }
    }
}

/// What happened. One variant per point where the engines bump a
/// `Metrics` counter, plus run markers that let a single sink separate
/// the several engine runs inside one experiment sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A new engine run begins; subsequent events belong to it.
    RunStart {
        /// Human-readable run label (engine + parameter point).
        label: String,
    },
    /// A user transaction entered the system.
    TxnBegin,
    /// A user transaction committed.
    TxnCommit,
    /// A user transaction aborted.
    TxnAbort {
        /// Why it rolled back.
        reason: AbortReason,
    },
    /// A lock request blocked behind a holder (equation (10)'s waits).
    LockWait {
        /// The contended object.
        object: ObjectId,
        /// The transaction holding the lock.
        holder: TxnId,
        /// The transaction that must wait.
        waiter: TxnId,
    },
    /// A lock request would have closed a waits-for cycle (equation
    /// (12)'s deadlocks); `cycle` is the actual cycle, victim first.
    DeadlockDetected {
        /// The waits-for cycle `victim → … → victim`, in edge order.
        cycle: Vec<TxnId>,
    },
    /// A committed transaction's updates were sent to a replica.
    ReplicaSend {
        /// Destination node.
        to: NodeId,
        /// Log position of the shipped commit record.
        lsn: Lsn,
    },
    /// A replica-update transaction committed at this node.
    ReplicaApply,
    /// A replica update was skipped as a stale duplicate.
    StaleSkip,
    /// A replica update failed the timestamp safety test — the paper's
    /// "dangerous" update that lazy-group must reconcile.
    DangerousUpdate {
        /// The conflicting object.
        object: ObjectId,
    },
    /// A reconciliation was performed (equations (14)/(18)).
    Reconcile,
    /// A mobile node tentatively committed (two-tier, §7).
    TentativeCommit,
    /// A tentative transaction's base re-execution passed its
    /// acceptance criterion.
    TentativeAccepted,
    /// A tentative transaction's base re-execution failed its
    /// acceptance criterion.
    TentativeRejected,
    /// The node went offline.
    Disconnect,
    /// The node came back online.
    Reconnect,
    /// A network message was sent.
    MsgSent {
        /// Destination node.
        to: NodeId,
    },
    /// A network message was delivered.
    MsgDelivered {
        /// Originating node.
        from: NodeId,
    },
    /// A network message was dropped by fault injection (or lost on a
    /// dead link). The sender's watermark does not advance; the driver
    /// retransmits.
    MsgDropped {
        /// Destination node of the lost message.
        to: NodeId,
    },
    /// Fault injection duplicated a message; both copies will be
    /// delivered (the receiver's timestamp test deduplicates).
    MsgDuplicated {
        /// Destination node.
        to: NodeId,
    },
    /// A scheduled network partition split the cluster into two sides.
    PartitionStart {
        /// Nodes on the minority ("A") side; everyone else is on "B".
        side_a: Vec<NodeId>,
    },
    /// The partition healed; parked cross-partition traffic drains.
    PartitionHeal,
    /// The node crashed, losing all volatile state (lock table,
    /// in-flight transactions, unapplied replica backlog).
    NodeCrash,
    /// The node restarted and recovered from its durable state.
    NodeRestart,
    /// Messages parked or re-parked while the node was down were
    /// redelivered on restart (the undelivered propagation queue).
    RecoveryReplay {
        /// How many messages were replayed.
        messages: u64,
    },
    /// A lock wait exceeded the timeout-resolution bound; the waiter
    /// is aborted as a presumed deadlock victim.
    LockTimeout {
        /// The object the victim was waiting for.
        object: ObjectId,
    },
    /// A mobile sync attempt failed and is being retried after backoff.
    SyncRetried {
        /// Which retry this is (1 = first re-attempt).
        attempt: u32,
    },
    /// A base-tier election concluded: `leader` is the primary for
    /// `epoch` (at most one per epoch — the leader-safety invariant).
    LeaderElected {
        /// The new epoch (term) number.
        epoch: u64,
        /// The elected primary replica.
        leader: NodeId,
    },
    /// A base replica rejected a message stamped with a stale epoch —
    /// the fence that keeps a deposed primary from splitting the brain.
    EpochFenced {
        /// The stale epoch the message carried.
        stale: u64,
        /// The replica's current epoch.
        current: u64,
    },
    /// A newly elected primary (or a rejoining replica) finished
    /// anti-entropy log transfer and is ready to serve.
    CatchUpComplete {
        /// The epoch under which catch-up ran.
        epoch: u64,
        /// Replicated log records transferred.
        records: u64,
    },
}

/// One observed occurrence: an [`EventKind`] stamped with simulated
/// time, the observing node, and the acting transaction.
///
/// Events with no natural transaction (connectivity changes, run
/// markers) use [`TxnId`]'s default `t0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulated time of the observation.
    pub at: SimTime,
    /// The node at which it was observed.
    pub node: NodeId,
    /// The acting transaction (`TxnId(0)` when not applicable).
    pub txn: TxnId,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Construct an event.
    pub fn new(at: SimTime, node: NodeId, txn: TxnId, kind: EventKind) -> Self {
        Event {
            at,
            node,
            txn,
            kind,
        }
    }

    /// An event with no acting transaction.
    pub fn system(at: SimTime, node: NodeId, kind: EventKind) -> Self {
        Event::new(at, node, TxnId::default(), kind)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {:?}",
            self.at, self.node, self.txn, self.kind
        )
    }
}
