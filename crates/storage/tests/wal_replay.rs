//! Commit-log replay property: replaying a node's log in commit order
//! onto a fresh replica reproduces the exact final state — the
//! correctness basis of §5's "sends replica updates to slaves in
//! sequential commit order".

use proptest::prelude::*;
use repl_storage::{
    CommitLog, LamportClock, NodeId, ObjectId, ObjectStore, TxnId, UpdateRecord, Value,
};

proptest! {
    #[test]
    fn full_replay_reproduces_state(
        writes in prop::collection::vec((0u64..32, -500i64..500), 1..200),
    ) {
        let db = 32;
        let mut primary = ObjectStore::new(db);
        let mut clock = LamportClock::new(NodeId(1));
        let mut log = CommitLog::new();

        // The primary executes single-write transactions and logs them.
        for (i, (obj, val)) in writes.iter().enumerate() {
            let id = ObjectId(*obj);
            let old_ts = primary.get(id).ts;
            let new_ts = clock.tick();
            let value = Value::Int(*val);
            primary.set(id, value.clone(), new_ts);
            log.append(
                TxnId(i as u64),
                vec![UpdateRecord {
                    txn: TxnId(i as u64),
                    object: id,
                    old_ts,
                    new_ts,
                    value,
                }],
            );
        }

        // A replica replays the whole log in order: every update is
        // "safe" (old timestamp matches) and the states converge.
        let mut replica = ObjectStore::new(db);
        for record in log.since(repl_storage::Lsn(0)) {
            for u in &record.updates {
                let outcome = replica.apply_versioned(u.object, u.old_ts, u.new_ts, u.value.clone());
                prop_assert_eq!(
                    outcome,
                    repl_storage::ApplyOutcome::Applied,
                    "in-order replay must always be the safe case"
                );
            }
        }
        prop_assert_eq!(replica.digest(), primary.digest());
    }

    #[test]
    fn partial_then_resume_replay_also_converges(
        writes in prop::collection::vec((0u64..16, -100i64..100), 2..100),
        cut in 1usize..99,
    ) {
        let db = 16;
        let mut primary = ObjectStore::new(db);
        let mut clock = LamportClock::new(NodeId(1));
        let mut log = CommitLog::new();
        for (i, (obj, val)) in writes.iter().enumerate() {
            let id = ObjectId(*obj);
            let old_ts = primary.get(id).ts;
            let new_ts = clock.tick();
            let value = Value::Int(*val);
            primary.set(id, value.clone(), new_ts);
            log.append(TxnId(i as u64), vec![UpdateRecord {
                txn: TxnId(i as u64), object: id, old_ts, new_ts, value,
            }]);
        }

        // Replay a prefix, remember the watermark, then resume — the
        // reconnecting-node pattern.
        let cut = cut.min(writes.len() - 1);
        let mut replica = ObjectStore::new(db);
        let watermark = repl_storage::Lsn(cut as u64);
        for record in &log.since(repl_storage::Lsn(0))[..cut] {
            for u in &record.updates {
                replica.apply_versioned(u.object, u.old_ts, u.new_ts, u.value.clone());
            }
        }
        for record in log.since(watermark) {
            for u in &record.updates {
                replica.apply_versioned(u.object, u.old_ts, u.new_ts, u.value.clone());
            }
        }
        prop_assert_eq!(replica.digest(), primary.digest());
    }
}
