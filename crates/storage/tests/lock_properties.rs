//! Property tests for the lock manager: under arbitrary interleavings
//! of requests, commits and deadlock aborts, the manager's bookkeeping
//! stays consistent and everything is released at the end.

use proptest::prelude::*;
use repl_storage::{Acquire, DeadlockMode, LockManager, ObjectId, TxnId};
use std::collections::{HashMap, HashSet};

/// One step of the random walk.
#[derive(Debug, Clone)]
enum Step {
    /// Transaction `t` requests object `o` (ignored while blocked).
    Request(u64, u64),
    /// Transaction `t` commits (ignored while blocked).
    Commit(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..16, 0u64..8).prop_map(|(t, o)| Step::Request(t, o)),
        (0u64..16).prop_map(Step::Commit),
    ]
}

/// Mirror of what the walk believes each transaction is doing.
#[derive(Default)]
struct Mirror {
    /// Objects we believe each live transaction holds.
    held: HashMap<u64, HashSet<u64>>,
    /// Transactions currently blocked (and on which object).
    blocked: HashMap<u64, u64>,
}

impl Mirror {
    fn process_grants(&mut self, grants: Vec<(TxnId, ObjectId)>) {
        for (t, o) in grants {
            let was = self.blocked.remove(&t.0);
            assert_eq!(
                was,
                Some(o.0),
                "grant for {t} on {o} but mirror thought it waited on {was:?}"
            );
            self.held.entry(t.0).or_default().insert(o.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_walk_keeps_invariants(steps in prop::collection::vec(arb_step(), 1..300)) {
        let mut lm = LockManager::new();
        let mut m = Mirror::default();

        for step in steps {
            match step {
                Step::Request(t, o) => {
                    if m.blocked.contains_key(&t) {
                        continue; // a blocked transaction cannot issue requests
                    }
                    match lm.acquire(TxnId(t), ObjectId(o)) {
                        Acquire::Granted => {
                            m.held.entry(t).or_default().insert(o);
                            prop_assert!(lm.holds(TxnId(t), ObjectId(o)));
                        }
                        Acquire::Waiting => {
                            m.blocked.insert(t, o);
                            prop_assert!(lm.is_waiting(TxnId(t)));
                        }
                        Acquire::Deadlock => {
                            // Victim aborts immediately.
                            let grants = lm.release_all(TxnId(t));
                            m.held.remove(&t);
                            m.process_grants(grants);
                        }
                    }
                }
                Step::Commit(t) => {
                    if m.blocked.contains_key(&t) {
                        continue;
                    }
                    let grants = lm.release_all(TxnId(t));
                    m.held.remove(&t);
                    m.process_grants(grants);
                }
            }
            // Continuous invariants.
            prop_assert_eq!(lm.blocked_transactions(), m.blocked.len());
            for (&t, objs) in &m.held {
                for &o in objs {
                    prop_assert!(
                        lm.holds(TxnId(t), ObjectId(o)),
                        "mirror thinks {t} holds {o} but the manager disagrees"
                    );
                }
            }
        }

        // Shut everything down: commit all unblocked transactions until
        // the system drains; blocked ones become unblocked by grants.
        let mut remaining: Vec<u64> = m.held.keys().copied()
            .chain(m.blocked.keys().copied())
            .collect();
        remaining.sort_unstable();
        remaining.dedup();
        let mut fuel = remaining.len() * remaining.len() + 16;
        while !(m.held.is_empty() && m.blocked.is_empty()) {
            prop_assert!(fuel > 0, "drain did not terminate");
            fuel -= 1;
            let Some(&t) = m.held.keys().next() else {
                // Only blocked transactions remain but nobody holds a
                // lock — impossible.
                prop_assert!(
                    m.blocked.is_empty(),
                    "blocked transactions with no holders: {:?}",
                    m.blocked
                );
                break;
            };
            let grants = lm.release_all(TxnId(t));
            m.held.remove(&t);
            m.process_grants(grants);
        }
        prop_assert_eq!(lm.locked_objects(), 0);
        prop_assert_eq!(lm.blocked_transactions(), 0);
    }

    /// Equivalence of the two release paths: `release_all` (fresh Vec
    /// per call) and `release_all_into` (caller-owned buffer + held-Vec
    /// free list) must produce identical acquire outcomes, identical
    /// grant *orders*, and identical counters on every interleaving, in
    /// both deadlock modes. Guards the allocation pass against any
    /// behavioral drift.
    #[test]
    fn release_paths_are_equivalent(
        steps in prop::collection::vec(arb_step(), 1..300),
        timeout_mode in (0u8..2).prop_map(|v| v == 1),
    ) {
        let mode = if timeout_mode { DeadlockMode::TimeoutOnly } else { DeadlockMode::Detect };
        let mut a = LockManager::with_mode(mode);
        let mut b = LockManager::with_mode(mode);
        let mut buf = Vec::new();
        let mut blocked: HashSet<u64> = HashSet::new();

        let mut drive = |a: &mut LockManager, b: &mut LockManager, t: u64| -> Vec<(TxnId, ObjectId)> {
            let grants = a.release_all(TxnId(t));
            b.release_all_into(TxnId(t), &mut buf);
            assert_eq!(grants, buf, "grant order diverged releasing {t}");
            grants
        };

        for step in steps {
            match step {
                Step::Request(t, o) => {
                    if blocked.contains(&t) {
                        continue;
                    }
                    let ra = a.acquire(TxnId(t), ObjectId(o));
                    let rb = b.acquire(TxnId(t), ObjectId(o));
                    prop_assert_eq!(ra, rb, "acquire({}, {}) diverged", t, o);
                    match ra {
                        Acquire::Granted => {}
                        Acquire::Waiting => {
                            blocked.insert(t);
                        }
                        Acquire::Deadlock => {
                            for (w, _) in drive(&mut a, &mut b, t) {
                                blocked.remove(&w.0);
                            }
                        }
                    }
                }
                Step::Commit(t) => {
                    if blocked.contains(&t) {
                        // Timeout mode resolves a stuck waiter the way
                        // the engines do: cancel the wait, then release
                        // — the PR 2 ghost-lock sequence.
                        if mode != DeadlockMode::TimeoutOnly {
                            continue;
                        }
                        a.cancel_wait(TxnId(t));
                        b.cancel_wait(TxnId(t));
                        blocked.remove(&t);
                    }
                    for (w, _) in drive(&mut a, &mut b, t) {
                        blocked.remove(&w.0);
                    }
                }
            }
            prop_assert_eq!(a.cycle_checks(), b.cycle_checks());
            prop_assert_eq!(a.locked_objects(), b.locked_objects());
            prop_assert_eq!(a.blocked_transactions(), b.blocked_transactions());
        }
    }
}

/// The PR 2 ghost-lock regression as a fixed equivalence fixture: in
/// timeout mode a victim whose wait is cancelled must not be granted
/// the contested lock posthumously — and both release paths must agree
/// on the survivor hand-off, including grant order.
#[test]
fn ghost_lock_fixture_identical_across_release_paths() {
    let run = |into: bool| {
        let mut lm = LockManager::with_mode(DeadlockMode::TimeoutOnly);
        let mut log: Vec<Vec<(TxnId, ObjectId)>> = Vec::new();
        let mut buf = Vec::new();
        let mut release = |lm: &mut LockManager, t: TxnId| {
            if into {
                lm.release_all_into(t, &mut buf);
                log.push(buf.clone());
            } else {
                log.push(lm.release_all(t));
            }
        };
        // A<->B cycle on O1/O2, with C queued behind the contested O1.
        assert_eq!(lm.acquire(TxnId(1), ObjectId(1)), Acquire::Granted);
        assert_eq!(lm.acquire(TxnId(2), ObjectId(2)), Acquire::Granted);
        assert_eq!(lm.acquire(TxnId(2), ObjectId(1)), Acquire::Waiting);
        assert_eq!(lm.acquire(TxnId(1), ObjectId(2)), Acquire::Waiting);
        assert_eq!(lm.acquire(TxnId(3), ObjectId(1)), Acquire::Waiting);
        // B times out: cancel its wait, then release its held locks.
        lm.cancel_wait(TxnId(2));
        release(&mut lm, TxnId(2));
        // A commits; C must inherit O1 (no ghost grant to B).
        release(&mut lm, TxnId(1));
        assert!(
            lm.holds(TxnId(3), ObjectId(1)),
            "survivor never got the lock"
        );
        release(&mut lm, TxnId(3));
        assert_eq!(lm.locked_objects(), 0);
        (log, lm.cycle_checks())
    };
    assert_eq!(run(false), run(true));
}
