//! Property tests for the lock manager: under arbitrary interleavings
//! of requests, commits and deadlock aborts, the manager's bookkeeping
//! stays consistent and everything is released at the end.

use proptest::prelude::*;
use repl_storage::{Acquire, LockManager, ObjectId, TxnId};
use std::collections::{HashMap, HashSet};

/// One step of the random walk.
#[derive(Debug, Clone)]
enum Step {
    /// Transaction `t` requests object `o` (ignored while blocked).
    Request(u64, u64),
    /// Transaction `t` commits (ignored while blocked).
    Commit(u64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..16, 0u64..8).prop_map(|(t, o)| Step::Request(t, o)),
        (0u64..16).prop_map(Step::Commit),
    ]
}

/// Mirror of what the walk believes each transaction is doing.
#[derive(Default)]
struct Mirror {
    /// Objects we believe each live transaction holds.
    held: HashMap<u64, HashSet<u64>>,
    /// Transactions currently blocked (and on which object).
    blocked: HashMap<u64, u64>,
}

impl Mirror {
    fn process_grants(&mut self, grants: Vec<(TxnId, ObjectId)>) {
        for (t, o) in grants {
            let was = self.blocked.remove(&t.0);
            assert_eq!(
                was,
                Some(o.0),
                "grant for {t} on {o} but mirror thought it waited on {was:?}"
            );
            self.held.entry(t.0).or_default().insert(o.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_walk_keeps_invariants(steps in prop::collection::vec(arb_step(), 1..300)) {
        let mut lm = LockManager::new();
        let mut m = Mirror::default();

        for step in steps {
            match step {
                Step::Request(t, o) => {
                    if m.blocked.contains_key(&t) {
                        continue; // a blocked transaction cannot issue requests
                    }
                    match lm.acquire(TxnId(t), ObjectId(o)) {
                        Acquire::Granted => {
                            m.held.entry(t).or_default().insert(o);
                            prop_assert!(lm.holds(TxnId(t), ObjectId(o)));
                        }
                        Acquire::Waiting => {
                            m.blocked.insert(t, o);
                            prop_assert!(lm.is_waiting(TxnId(t)));
                        }
                        Acquire::Deadlock => {
                            // Victim aborts immediately.
                            let grants = lm.release_all(TxnId(t));
                            m.held.remove(&t);
                            m.process_grants(grants);
                        }
                    }
                }
                Step::Commit(t) => {
                    if m.blocked.contains_key(&t) {
                        continue;
                    }
                    let grants = lm.release_all(TxnId(t));
                    m.held.remove(&t);
                    m.process_grants(grants);
                }
            }
            // Continuous invariants.
            prop_assert_eq!(lm.blocked_transactions(), m.blocked.len());
            for (&t, objs) in &m.held {
                for &o in objs {
                    prop_assert!(
                        lm.holds(TxnId(t), ObjectId(o)),
                        "mirror thinks {t} holds {o} but the manager disagrees"
                    );
                }
            }
        }

        // Shut everything down: commit all unblocked transactions until
        // the system drains; blocked ones become unblocked by grants.
        let mut remaining: Vec<u64> = m.held.keys().copied()
            .chain(m.blocked.keys().copied())
            .collect();
        remaining.sort_unstable();
        remaining.dedup();
        let mut fuel = remaining.len() * remaining.len() + 16;
        while !(m.held.is_empty() && m.blocked.is_empty()) {
            prop_assert!(fuel > 0, "drain did not terminate");
            fuel -= 1;
            let Some(&t) = m.held.keys().next() else {
                // Only blocked transactions remain but nobody holds a
                // lock — impossible.
                prop_assert!(
                    m.blocked.is_empty(),
                    "blocked transactions with no holders: {:?}",
                    m.blocked
                );
                break;
            };
            let grants = lm.release_all(TxnId(t));
            m.held.remove(&t);
            m.process_grants(grants);
        }
        prop_assert_eq!(lm.locked_objects(), 0);
        prop_assert_eq!(lm.blocked_transactions(), 0);
    }
}
