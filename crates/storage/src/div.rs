//! Strength-reduced division by a runtime-constant divisor.
//!
//! The sharded hot paths divide by quantities fixed at construction —
//! the shard count (`id % shards`, `id / shards`) and a node's hosted
//! width — on every store access and every sampler draw. A hardware
//! 64-bit divide costs tens of cycles; multiplying by a precomputed
//! reciprocal and shifting costs ~2. This is the classic
//! Granlund–Montgomery "round-up" method specialised to 32-bit
//! dividends (object ids, slots and sampler indices are all well under
//! `2^32`): with `p = 32 + ceil(log2 d)` and `m = floor(2^p / d) + 1`,
//! `(n * m) >> p == n / d` exactly for every `n < 2^32`.
//!
//! Equality of two `FastDivMod`s is equality of divisors (the magic
//! pair is a pure function of `d`), so containing types keep their
//! derived `PartialEq`/`Eq` semantics.

/// Divider by a fixed `d`, exact for dividends below `2^32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDivMod {
    d: u64,
    m: u64,
    p: u32,
}

impl FastDivMod {
    /// Build the reciprocal for `d`. Panics if `d` is zero or at least
    /// `2^32` (no caller divides by anything near that).
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero divisor");
        assert!(d <= u64::from(u32::MAX), "divisor out of 32-bit range");
        // ceil(log2 d): 0 for d == 1.
        let l = 64 - (d - 1).leading_zeros();
        let p = 32 + l;
        let m = ((1u128 << p) / u128::from(d) + 1) as u64;
        FastDivMod { d, m, p }
    }

    /// The divisor this reciprocal encodes.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// `n / d`.
    #[inline]
    pub fn div(&self, n: u64) -> u64 {
        debug_assert!(n <= u64::from(u32::MAX), "dividend out of 32-bit range");
        ((u128::from(n) * u128::from(self.m)) >> self.p) as u64
    }

    /// `n % d`.
    #[inline]
    pub fn rem(&self, n: u64) -> u64 {
        n - self.div(n) * self.d
    }

    /// `(n / d, n % d)` with one multiply.
    #[inline]
    pub fn div_rem(&self, n: u64) -> (u64, u64) {
        let q = self.div(n);
        (q, n - q * self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_structured_divisors_and_dividends() {
        let divisors: Vec<u64> = (1..=300)
            .chain([1_000, 4_096, 65_535, 65_536, 1 << 20, (1 << 32) - 1])
            .chain((1..32).map(|k| 1u64 << k))
            .chain((1..32).map(|k| (1u64 << k) - 1))
            .chain((1..32).map(|k| (1u64 << k) + 1))
            .collect();
        let dividends: Vec<u64> = (0..2_000)
            .chain((0..16).map(|k| (1u64 << 32) - 1 - k))
            .chain((1..32).flat_map(|k| [(1u64 << k) - 1, 1u64 << k, (1u64 << k) + 1]))
            .collect();
        for &d in &divisors {
            let f = FastDivMod::new(d);
            assert_eq!(f.divisor(), d);
            for &n in &dividends {
                assert_eq!(f.div(n), n / d, "{n} / {d}");
                assert_eq!(f.rem(n), n % d, "{n} % {d}");
                assert_eq!(f.div_rem(n), (n / d, n % d), "{n} /% {d}");
            }
        }
    }

    #[test]
    fn exact_on_a_dense_grid() {
        // Exhaustive n for small d — the regime the shard maths
        // actually runs in (shards and hosted widths are small).
        for d in 1..=64u64 {
            let f = FastDivMod::new(d);
            for n in 0..=4_096u64 {
                assert_eq!(f.div_rem(n), (n / d, n % d), "{n} vs {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        FastDivMod::new(0);
    }
}
