//! The per-node object store: every node replicates all `DB_Size`
//! objects (the model's assumption), each carrying the timestamp of its
//! most recent committed update.

use crate::object::{ObjectId, Timestamp, Value, Versioned};

/// Outcome of applying a timestamped replica update (Figure 4 of the
/// paper): safe, duplicate, or dangerous.
///
/// The paper's test: "the node tests if the local replica's timestamp
/// and the update's old timestamp are equal. If so, the update is
/// safe." Anything else is *dangerous* and needs reconciliation; this
/// enum additionally reports which side the time-priority resolution
/// favoured, and recognizes exact re-deliveries as harmless duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The update's `old` timestamp matched the replica's current
    /// timestamp — the update was applied (the safe case).
    Applied,
    /// The replica already carries exactly this update (idempotent
    /// re-delivery, e.g. a replica transaction retried after a
    /// deadlock) — skipped, no reconciliation.
    Duplicate,
    /// Dangerous: the timestamps diverged and the incoming update is
    /// *newer*, so time-priority resolution installed it over the
    /// local version. A reconciliation.
    ConflictApplied,
    /// Dangerous: the timestamps diverged and the incoming update is
    /// *older*, so the local version stands and the incoming update is
    /// discarded (the update "lost"). Also a reconciliation.
    ConflictIgnored,
}

impl ApplyOutcome {
    /// Whether the paper's timestamp test flagged this update as
    /// dangerous (needing reconciliation).
    pub fn is_conflict(self) -> bool {
        matches!(
            self,
            ApplyOutcome::ConflictApplied | ApplyOutcome::ConflictIgnored
        )
    }
}

/// A dense, per-node replica of the whole database. Object ids are the
/// integers `0..db_size`, so the store is a flat `Vec` — the hot path of
/// every protocol is an index, not a hash.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    objects: Vec<Versioned>,
    /// Each slot's current [`slot_hash`], cached so a write subtracts
    /// the stored term instead of re-hashing the old version.
    slot_hashes: Vec<u64>,
    /// Rolling convergence digest: the wrapping sum of every slot's
    /// [`slot_hash`], maintained incrementally by each write so
    /// [`ObjectStore::digest`] is O(1) instead of a full scan.
    digest: u64,
}

/// A well-mixed 64-bit hash of one slot's `(index, value, timestamp)`.
/// Folding the index in means two stores that hold the same versions in
/// *different slots* digest differently; combining slot hashes with a
/// wrapping sum makes the combined digest order-free and incrementally
/// updatable (subtract the old slot hash, add the new one).
fn slot_hash(idx: usize, v: &Versioned) -> u64 {
    const MUL: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h = (h.rotate_left(5) ^ x).wrapping_mul(MUL);
    };
    mix(idx as u64);
    match &v.value {
        Value::Int(i) => {
            mix(1);
            mix(*i as u64);
        }
        Value::Text(s) => {
            mix(2);
            mix(s.len() as u64);
            for &b in s.as_bytes() {
                mix(u64::from(b));
            }
        }
    }
    mix(v.ts.counter);
    mix(u64::from(v.ts.node.0));
    h
}

impl ObjectStore {
    /// A store of `db_size` objects, all at [`Versioned::initial`].
    pub fn new(db_size: u64) -> Self {
        let objects = vec![Versioned::initial(); db_size as usize];
        let slot_hashes: Vec<u64> = objects
            .iter()
            .enumerate()
            .map(|(i, v)| slot_hash(i, v))
            .collect();
        let digest = slot_hashes.iter().fold(0u64, |d, &h| d.wrapping_add(h));
        ObjectStore {
            objects,
            slot_hashes,
            digest,
        }
    }

    /// Replace slot `idx` with `next`, rolling the digest forward.
    #[inline]
    fn write_slot(&mut self, idx: usize, next: Versioned) {
        let new_hash = slot_hash(idx, &next);
        let old_hash = std::mem::replace(&mut self.slot_hashes[idx], new_hash);
        self.digest = self.digest.wrapping_sub(old_hash).wrapping_add(new_hash);
        self.objects[idx] = next;
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Read an object's current version. Panics on an out-of-range id
    /// (the workload generator only produces valid ids).
    pub fn get(&self, id: ObjectId) -> &Versioned {
        &self.objects[id.0 as usize]
    }

    /// Overwrite an object's value and timestamp unconditionally — used
    /// by the local write path after the lock manager has granted access.
    pub fn set(&mut self, id: ObjectId, value: Value, ts: Timestamp) {
        self.write_slot(id.0 as usize, Versioned { value, ts });
    }

    /// Apply a replica update using the paper's timestamp test
    /// (lazy-group, Figure 4), resolving dangerous updates by time
    /// priority so replicas always converge:
    ///
    /// * replica.ts == `old` → safe, apply → [`ApplyOutcome::Applied`];
    /// * replica.ts == `new_ts` → idempotent re-delivery →
    ///   [`ApplyOutcome::Duplicate`];
    /// * otherwise the update is dangerous: the newer timestamp wins —
    ///   [`ApplyOutcome::ConflictApplied`] if the incoming update won,
    ///   [`ApplyOutcome::ConflictIgnored`] if the local version stood.
    pub fn apply_versioned(
        &mut self,
        id: ObjectId,
        old: Timestamp,
        new_ts: Timestamp,
        value: Value,
    ) -> ApplyOutcome {
        let idx = id.0 as usize;
        let slot = &self.objects[idx];
        if slot.ts == old {
            self.write_slot(idx, Versioned { value, ts: new_ts });
            ApplyOutcome::Applied
        } else if slot.ts == new_ts {
            ApplyOutcome::Duplicate
        } else if new_ts > slot.ts {
            self.write_slot(idx, Versioned { value, ts: new_ts });
            ApplyOutcome::ConflictApplied
        } else {
            ApplyOutcome::ConflictIgnored
        }
    }

    /// Apply a replica update with *last-writer-wins* semantics
    /// (lazy-master slave refresh in §5: "if the record timestamp is
    /// newer than a replica update timestamp, the update is stale and
    /// can be ignored"). Returns whether the update was applied.
    pub fn apply_lww(&mut self, id: ObjectId, new_ts: Timestamp, value: Value) -> bool {
        let idx = id.0 as usize;
        if new_ts > self.objects[idx].ts {
            self.write_slot(idx, Versioned { value, ts: new_ts });
            true
        } else {
            false
        }
    }

    /// Iterate over `(id, version)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Versioned)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, v)| (ObjectId(i as u64), v))
    }

    /// A deterministic digest of the full database state. Two replicas
    /// have converged iff their digests are equal — the §6 convergence
    /// tests rely on this. Maintained incrementally by every write, so
    /// this is O(1): the convergence oracles compare whole databases
    /// per check without re-scanning `DB_Size` objects.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Recompute the digest from scratch (O(`DB_Size`)). Returns the
    /// same value [`ObjectStore::digest`] reports — tests use the pair
    /// to validate the rolling maintenance, and the benches use it as
    /// the pre-incremental cost baseline.
    pub fn recompute_digest(&self) -> u64 {
        self.objects
            .iter()
            .enumerate()
            .fold(0u64, |d, (i, v)| d.wrapping_add(slot_hash(i, v)))
    }

    /// Sum of all integer values — workload invariants (e.g. "transfers
    /// preserve total money") check this. Text objects count as zero.
    pub fn total_int(&self) -> i64 {
        self.objects
            .iter()
            .map(|v| v.value.as_int().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NodeId;

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp::new(c, NodeId(n))
    }

    #[test]
    fn new_store_all_initial() {
        let s = ObjectStore::new(10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.get(ObjectId(3)), &Versioned::initial());
        assert_eq!(s.total_int(), 0);
    }

    #[test]
    fn set_then_get() {
        let mut s = ObjectStore::new(4);
        s.set(ObjectId(2), Value::Int(42), ts(1, 1));
        assert_eq!(s.get(ObjectId(2)).value, Value::Int(42));
        assert_eq!(s.get(ObjectId(2)).ts, ts(1, 1));
    }

    #[test]
    fn apply_versioned_safe_path() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(1, 1), Value::Int(5));
        assert_eq!(out, ApplyOutcome::Applied);
        assert_eq!(s.get(o).value, Value::Int(5));
    }

    #[test]
    fn apply_versioned_detects_conflict_and_resolves_by_time() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        // Node 1's update lands first.
        s.apply_versioned(o, Timestamp::ZERO, ts(1, 1), Value::Int(5));
        // Node 2 raced: it read the ZERO version but its new timestamp
        // is higher — the classic dangerous update. Time priority
        // installs it.
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(2, 2), Value::Int(9));
        assert_eq!(out, ApplyOutcome::ConflictApplied);
        assert!(out.is_conflict());
        assert_eq!(s.get(o).value, Value::Int(9));
    }

    #[test]
    fn apply_versioned_older_loser_is_ignored() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        s.apply_versioned(o, Timestamp::ZERO, ts(5, 1), Value::Int(5));
        // A racing update that read ZERO but carries an *older*
        // timestamp: dangerous, and it loses — local version stands.
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(3, 2), Value::Int(1));
        assert_eq!(out, ApplyOutcome::ConflictIgnored);
        assert!(out.is_conflict());
        assert_eq!(s.get(o).value, Value::Int(5));
    }

    #[test]
    fn apply_versioned_duplicate_is_idempotent() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        s.apply_versioned(o, Timestamp::ZERO, ts(5, 1), Value::Int(5));
        // Exact re-delivery of the same update (e.g. a deadlock retry).
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(5, 1), Value::Int(5));
        assert_eq!(out, ApplyOutcome::Duplicate);
        assert!(!out.is_conflict());
        assert_eq!(s.get(o).value, Value::Int(5));
    }

    #[test]
    fn apply_lww_keeps_newest() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        assert!(s.apply_lww(o, ts(2, 1), Value::Int(2)));
        assert!(!s.apply_lww(o, ts(1, 2), Value::Int(1))); // older loses
        assert_eq!(s.get(o).value, Value::Int(2));
        assert!(s.apply_lww(o, ts(3, 2), Value::Int(3)));
        assert_eq!(s.get(o).value, Value::Int(3));
    }

    #[test]
    fn lww_equal_timestamp_not_applied() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        s.apply_lww(o, ts(2, 1), Value::Int(2));
        assert!(!s.apply_lww(o, ts(2, 1), Value::Int(99)));
    }

    #[test]
    fn digest_equal_iff_state_equal() {
        let mut a = ObjectStore::new(8);
        let mut b = ObjectStore::new(8);
        assert_eq!(a.digest(), b.digest());
        a.set(ObjectId(1), Value::Int(1), ts(1, 1));
        assert_ne!(a.digest(), b.digest());
        b.set(ObjectId(1), Value::Int(1), ts(1, 1));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sensitive_to_timestamp() {
        let mut a = ObjectStore::new(1);
        let mut b = ObjectStore::new(1);
        a.set(ObjectId(0), Value::Int(1), ts(1, 1));
        b.set(ObjectId(0), Value::Int(1), ts(1, 2));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn rolling_digest_matches_full_recompute() {
        let mut s = ObjectStore::new(16);
        assert_eq!(s.digest(), s.recompute_digest());
        // Exercise every write path: set, safe apply, conflict apply,
        // ignored conflict, duplicate, lww win, lww loss.
        s.set(ObjectId(0), Value::Int(7), ts(1, 1));
        s.set(ObjectId(0), Value::from("text"), ts(2, 1));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(1, 2), Value::Int(9));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(3, 1), Value::Int(4));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(2, 2), Value::Int(5));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(3, 1), Value::Int(4));
        s.apply_lww(ObjectId(2), ts(5, 3), Value::Int(11));
        s.apply_lww(ObjectId(2), ts(4, 3), Value::Int(12));
        assert_eq!(s.digest(), s.recompute_digest());
    }

    #[test]
    fn digest_distinguishes_slot_placement() {
        // Same version in different slots must digest differently —
        // the order-free sum still folds the slot index into each term.
        let mut a = ObjectStore::new(2);
        let mut b = ObjectStore::new(2);
        a.set(ObjectId(0), Value::Int(1), ts(1, 1));
        b.set(ObjectId(1), Value::Int(1), ts(1, 1));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn total_int_sums_values() {
        let mut s = ObjectStore::new(3);
        s.set(ObjectId(0), Value::Int(10), ts(1, 1));
        s.set(ObjectId(1), Value::Int(-4), ts(2, 1));
        s.set(ObjectId(2), Value::from("text"), ts(3, 1));
        assert_eq!(s.total_int(), 6);
    }

    #[test]
    fn iter_yields_all() {
        let s = ObjectStore::new(5);
        assert_eq!(s.iter().count(), 5);
        let ids: Vec<u64> = s.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
