//! The per-node object store: each object carries the timestamp of its
//! most recent committed update. A *full* store replicates all
//! `DB_Size` objects (the model's baseline assumption); a *sharded*
//! store ([`ObjectStore::sharded`]) allocates slots only for the
//! objects whose shards the node hosts, so per-node memory and digest
//! work scale with the replication factor instead of the database.

use crate::object::{ObjectId, Timestamp, Value, Versioned};
use crate::shard::ShardMap;

/// Outcome of applying a timestamped replica update (Figure 4 of the
/// paper): safe, duplicate, or dangerous.
///
/// The paper's test: "the node tests if the local replica's timestamp
/// and the update's old timestamp are equal. If so, the update is
/// safe." Anything else is *dangerous* and needs reconciliation; this
/// enum additionally reports which side the time-priority resolution
/// favoured, and recognizes exact re-deliveries as harmless duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The update's `old` timestamp matched the replica's current
    /// timestamp — the update was applied (the safe case).
    Applied,
    /// The replica already carries exactly this update (idempotent
    /// re-delivery, e.g. a replica transaction retried after a
    /// deadlock) — skipped, no reconciliation.
    Duplicate,
    /// Dangerous: the timestamps diverged and the incoming update is
    /// *newer*, so time-priority resolution installed it over the
    /// local version. A reconciliation.
    ConflictApplied,
    /// Dangerous: the timestamps diverged and the incoming update is
    /// *older*, so the local version stands and the incoming update is
    /// discarded (the update "lost"). Also a reconciliation.
    ConflictIgnored,
}

impl ApplyOutcome {
    /// Whether the paper's timestamp test flagged this update as
    /// dangerous (needing reconciliation).
    pub fn is_conflict(self) -> bool {
        matches!(
            self,
            ApplyOutcome::ConflictApplied | ApplyOutcome::ConflictIgnored
        )
    }
}

/// A dense, per-node replica of the database. Object ids are the
/// integers `0..db_size`; a full store maps id `i` to slot `i`, while a
/// sharded store packs only the hosted objects into slots via a closed-
/// form `(row, rank)` mapping — the hot path of every protocol is still
/// an index, not a hash.
#[derive(Debug, Clone)]
pub struct ObjectStore {
    objects: Vec<Versioned>,
    /// Cached convergence digest: the wrapping sum of every slot's
    /// [`slot_hash`]. Writes are the hot path of every engine and
    /// digests are only compared between runs or at convergence
    /// checkpoints, so a write merely marks the cache dirty and
    /// [`ObjectStore::digest`] recomputes (then re-caches) on demand —
    /// the per-write hash mix this replaces was ~10% of a full
    /// simulation run.
    digest: std::cell::Cell<u64>,
    /// Whether `digest` needs recomputing before its next read.
    digest_dirty: std::cell::Cell<bool>,
    /// `Some` for a sharded (partial) store; `None` keeps the original
    /// dense id-is-slot layout and behavior bit-for-bit.
    layout: Option<ShardLayout>,
}

/// The per-node slice of a [`ShardMap`] a partial store needs to map
/// object ids to its packed slots.
#[derive(Debug, Clone)]
struct ShardLayout {
    /// Total shard count `k` (objects in shard `id % k`), as a
    /// strength-reduced divider — every sharded `get`/`set` divides by
    /// it, so the hardware divide is paid once at construction.
    shards: crate::div::FastDivMod,
    /// Hosted width divider (`hosted.len()`), for the slot→id inverse.
    width: crate::div::FastDivMod,
    /// This node's hosted shards, sorted ascending.
    hosted: Vec<u32>,
    /// `rank[s]` = index of shard `s` in `hosted`, `u32::MAX` if the
    /// node does not host `s`.
    rank: Vec<u32>,
}

impl ShardLayout {
    /// The packed slot for `id`, or `None` when the shard isn't hosted.
    /// Hosted objects ascending by id enumerate slots `0, 1, 2, …`
    /// (row-major over `(id / k, rank(id % k))`), so the mapping needs
    /// no per-object table.
    #[inline]
    fn slot(&self, id: ObjectId) -> Option<usize> {
        let (row, s) = self.shards.div_rem(id.0);
        let r = self.rank[s as usize];
        (r != u32::MAX).then(|| row as usize * self.hosted.len() + r as usize)
    }

    /// The object id stored in `slot` (inverse of [`ShardLayout::slot`]).
    #[inline]
    fn object_of(&self, slot: usize) -> ObjectId {
        let (row, r) = self.width.div_rem(slot as u64);
        ObjectId(row * self.shards.divisor() + u64::from(self.hosted[r as usize]))
    }
}

/// A well-mixed 64-bit hash of one slot's `(index, value, timestamp)`.
/// Folding the index in means two stores that hold the same versions in
/// *different slots* digest differently; combining slot hashes with a
/// wrapping sum makes the combined digest order-free and incrementally
/// updatable (subtract the old slot hash, add the new one).
fn slot_hash(idx: usize, v: &Versioned) -> u64 {
    const MUL: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h = (h.rotate_left(5) ^ x).wrapping_mul(MUL);
    };
    mix(idx as u64);
    match &v.value {
        Value::Int(i) => {
            mix(1);
            mix(*i as u64);
        }
        Value::Text(s) => {
            mix(2);
            mix(s.len() as u64);
            for &b in s.as_bytes() {
                mix(u64::from(b));
            }
        }
    }
    mix(v.ts.counter);
    mix(u64::from(v.ts.node.0));
    h
}

impl ObjectStore {
    /// A full store of `db_size` objects, all at [`Versioned::initial`].
    pub fn new(db_size: u64) -> Self {
        ObjectStore {
            objects: vec![Versioned::initial(); db_size as usize],
            digest: std::cell::Cell::new(0),
            digest_dirty: std::cell::Cell::new(true),
            layout: None,
        }
    }

    /// A partial store holding only the objects of the shards `map`
    /// places at `node`, all at [`Versioned::initial`]. Slot hashes stay
    /// keyed by **object id**, so two co-hosting nodes hash a shared
    /// object identically and a full-replication sharded store digests
    /// exactly like [`ObjectStore::new`].
    pub fn sharded(db_size: u64, map: &ShardMap, node: crate::object::NodeId) -> Self {
        if map.is_full() {
            return ObjectStore::new(db_size);
        }
        let shards = map.shards();
        let hosted = map.hosted_shards(node).to_vec();
        let layout = ShardLayout {
            shards: crate::div::FastDivMod::new(u64::from(shards)),
            // A node hosting nothing has no slots, so the inverse is
            // never consulted; 1 keeps construction total.
            width: crate::div::FastDivMod::new(hosted.len().max(1) as u64),
            hosted,
            rank: (0..shards)
                .map(|s| map.rank(node, s).unwrap_or(u32::MAX))
                .collect(),
        };
        let count = map.hosted_objects(node, db_size) as usize;
        ObjectStore {
            objects: vec![Versioned::initial(); count],
            digest: std::cell::Cell::new(0),
            digest_dirty: std::cell::Cell::new(true),
            layout: Some(layout),
        }
    }

    /// The hash key for `slot`: the object id it holds (which *is* the
    /// slot index in a full store).
    #[inline]
    fn hash_key(&self, slot: usize) -> usize {
        match &self.layout {
            None => slot,
            Some(l) => l.object_of(slot).0 as usize,
        }
    }

    /// The slot holding `id`. Panics on an id this store does not host
    /// (protocol paths only route hosted objects here).
    #[inline]
    fn slot_of(&self, id: ObjectId) -> usize {
        match &self.layout {
            None => id.0 as usize,
            Some(l) => l
                .slot(id)
                .unwrap_or_else(|| panic!("object {} is not hosted at this store", id.0)),
        }
    }

    /// Replace slot `idx` with `next`, invalidating the digest cache.
    #[inline]
    fn write_slot(&mut self, idx: usize, next: Versioned) {
        self.digest_dirty.set(true);
        self.objects[idx] = next;
    }

    /// Number of objects this store holds (the hosted subset for a
    /// sharded store).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether this store hosts `id` (always true for a full store's
    /// valid ids).
    pub fn hosts(&self, id: ObjectId) -> bool {
        match &self.layout {
            None => (id.0 as usize) < self.objects.len(),
            Some(l) => l.slot(id).is_some(),
        }
    }

    /// Read an object's current version. Panics on an out-of-range or
    /// unhosted id (the workload generator only produces valid ids).
    pub fn get(&self, id: ObjectId) -> &Versioned {
        &self.objects[self.slot_of(id)]
    }

    /// Overwrite an object's value and timestamp unconditionally — used
    /// by the local write path after the lock manager has granted access.
    pub fn set(&mut self, id: ObjectId, value: Value, ts: Timestamp) {
        let idx = self.slot_of(id);
        self.write_slot(idx, Versioned { value, ts });
    }

    /// Overwrite an object and return the version it replaces — the
    /// root write path's read-modify-write in one slot lookup, handing
    /// the pre-image to the caller's undo record without a clone.
    pub fn replace(&mut self, id: ObjectId, value: Value, ts: Timestamp) -> Versioned {
        let idx = self.slot_of(id);
        self.digest_dirty.set(true);
        std::mem::replace(&mut self.objects[idx], Versioned { value, ts })
    }

    /// Apply a replica update using the paper's timestamp test
    /// (lazy-group, Figure 4), resolving dangerous updates by time
    /// priority so replicas always converge:
    ///
    /// * replica.ts == `old` → safe, apply → [`ApplyOutcome::Applied`];
    /// * replica.ts == `new_ts` → idempotent re-delivery →
    ///   [`ApplyOutcome::Duplicate`];
    /// * otherwise the update is dangerous: the newer timestamp wins —
    ///   [`ApplyOutcome::ConflictApplied`] if the incoming update won,
    ///   [`ApplyOutcome::ConflictIgnored`] if the local version stood.
    pub fn apply_versioned(
        &mut self,
        id: ObjectId,
        old: Timestamp,
        new_ts: Timestamp,
        value: Value,
    ) -> ApplyOutcome {
        let idx = self.slot_of(id);
        let slot = &self.objects[idx];
        if slot.ts == old {
            self.write_slot(idx, Versioned { value, ts: new_ts });
            ApplyOutcome::Applied
        } else if slot.ts == new_ts {
            ApplyOutcome::Duplicate
        } else if new_ts > slot.ts {
            self.write_slot(idx, Versioned { value, ts: new_ts });
            ApplyOutcome::ConflictApplied
        } else {
            ApplyOutcome::ConflictIgnored
        }
    }

    /// Apply a replica update with *last-writer-wins* semantics
    /// (lazy-master slave refresh in §5: "if the record timestamp is
    /// newer than a replica update timestamp, the update is stale and
    /// can be ignored"). Returns whether the update was applied.
    pub fn apply_lww(&mut self, id: ObjectId, new_ts: Timestamp, value: Value) -> bool {
        let idx = self.slot_of(id);
        if new_ts > self.objects[idx].ts {
            self.write_slot(idx, Versioned { value, ts: new_ts });
            true
        } else {
            false
        }
    }

    /// Iterate over `(id, version)` pairs, ascending by object id (only
    /// the hosted subset for a sharded store).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Versioned)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, v)| (ObjectId(self.hash_key(i) as u64), v))
    }

    /// A deterministic digest of the full database state. Two replicas
    /// have converged iff their digests are equal — the §6 convergence
    /// tests rely on this. Computed on first read and cached until the
    /// next write: convergence checks happen at run boundaries, so the
    /// write path pays one dirty-flag store instead of a hash mix.
    pub fn digest(&self) -> u64 {
        if self.digest_dirty.get() {
            self.digest.set(self.recompute_digest());
            self.digest_dirty.set(false);
        }
        self.digest.get()
    }

    /// Recompute the digest from scratch (O(`DB_Size`)), bypassing the
    /// cache. Returns the same value [`ObjectStore::digest`] reports —
    /// tests use the pair to validate the cache invalidation.
    pub fn recompute_digest(&self) -> u64 {
        self.objects.iter().enumerate().fold(0u64, |d, (i, v)| {
            d.wrapping_add(slot_hash(self.hash_key(i), v))
        })
    }

    /// Sum of all integer values — workload invariants (e.g. "transfers
    /// preserve total money") check this. Text objects count as zero.
    pub fn total_int(&self) -> i64 {
        self.objects
            .iter()
            .map(|v| v.value.as_int().unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NodeId;

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp::new(c, NodeId(n))
    }

    #[test]
    fn new_store_all_initial() {
        let s = ObjectStore::new(10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.get(ObjectId(3)), &Versioned::initial());
        assert_eq!(s.total_int(), 0);
    }

    #[test]
    fn set_then_get() {
        let mut s = ObjectStore::new(4);
        s.set(ObjectId(2), Value::Int(42), ts(1, 1));
        assert_eq!(s.get(ObjectId(2)).value, Value::Int(42));
        assert_eq!(s.get(ObjectId(2)).ts, ts(1, 1));
    }

    #[test]
    fn apply_versioned_safe_path() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(1, 1), Value::Int(5));
        assert_eq!(out, ApplyOutcome::Applied);
        assert_eq!(s.get(o).value, Value::Int(5));
    }

    #[test]
    fn apply_versioned_detects_conflict_and_resolves_by_time() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        // Node 1's update lands first.
        s.apply_versioned(o, Timestamp::ZERO, ts(1, 1), Value::Int(5));
        // Node 2 raced: it read the ZERO version but its new timestamp
        // is higher — the classic dangerous update. Time priority
        // installs it.
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(2, 2), Value::Int(9));
        assert_eq!(out, ApplyOutcome::ConflictApplied);
        assert!(out.is_conflict());
        assert_eq!(s.get(o).value, Value::Int(9));
    }

    #[test]
    fn apply_versioned_older_loser_is_ignored() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        s.apply_versioned(o, Timestamp::ZERO, ts(5, 1), Value::Int(5));
        // A racing update that read ZERO but carries an *older*
        // timestamp: dangerous, and it loses — local version stands.
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(3, 2), Value::Int(1));
        assert_eq!(out, ApplyOutcome::ConflictIgnored);
        assert!(out.is_conflict());
        assert_eq!(s.get(o).value, Value::Int(5));
    }

    #[test]
    fn apply_versioned_duplicate_is_idempotent() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        s.apply_versioned(o, Timestamp::ZERO, ts(5, 1), Value::Int(5));
        // Exact re-delivery of the same update (e.g. a deadlock retry).
        let out = s.apply_versioned(o, Timestamp::ZERO, ts(5, 1), Value::Int(5));
        assert_eq!(out, ApplyOutcome::Duplicate);
        assert!(!out.is_conflict());
        assert_eq!(s.get(o).value, Value::Int(5));
    }

    #[test]
    fn apply_lww_keeps_newest() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        assert!(s.apply_lww(o, ts(2, 1), Value::Int(2)));
        assert!(!s.apply_lww(o, ts(1, 2), Value::Int(1))); // older loses
        assert_eq!(s.get(o).value, Value::Int(2));
        assert!(s.apply_lww(o, ts(3, 2), Value::Int(3)));
        assert_eq!(s.get(o).value, Value::Int(3));
    }

    #[test]
    fn lww_equal_timestamp_not_applied() {
        let mut s = ObjectStore::new(1);
        let o = ObjectId(0);
        s.apply_lww(o, ts(2, 1), Value::Int(2));
        assert!(!s.apply_lww(o, ts(2, 1), Value::Int(99)));
    }

    #[test]
    fn digest_equal_iff_state_equal() {
        let mut a = ObjectStore::new(8);
        let mut b = ObjectStore::new(8);
        assert_eq!(a.digest(), b.digest());
        a.set(ObjectId(1), Value::Int(1), ts(1, 1));
        assert_ne!(a.digest(), b.digest());
        b.set(ObjectId(1), Value::Int(1), ts(1, 1));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sensitive_to_timestamp() {
        let mut a = ObjectStore::new(1);
        let mut b = ObjectStore::new(1);
        a.set(ObjectId(0), Value::Int(1), ts(1, 1));
        b.set(ObjectId(0), Value::Int(1), ts(1, 2));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn rolling_digest_matches_full_recompute() {
        let mut s = ObjectStore::new(16);
        assert_eq!(s.digest(), s.recompute_digest());
        // Exercise every write path: set, safe apply, conflict apply,
        // ignored conflict, duplicate, lww win, lww loss.
        s.set(ObjectId(0), Value::Int(7), ts(1, 1));
        s.set(ObjectId(0), Value::from("text"), ts(2, 1));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(1, 2), Value::Int(9));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(3, 1), Value::Int(4));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(2, 2), Value::Int(5));
        s.apply_versioned(ObjectId(1), Timestamp::ZERO, ts(3, 1), Value::Int(4));
        s.apply_lww(ObjectId(2), ts(5, 3), Value::Int(11));
        s.apply_lww(ObjectId(2), ts(4, 3), Value::Int(12));
        assert_eq!(s.digest(), s.recompute_digest());
    }

    #[test]
    fn digest_distinguishes_slot_placement() {
        // Same version in different slots must digest differently —
        // the order-free sum still folds the slot index into each term.
        let mut a = ObjectStore::new(2);
        let mut b = ObjectStore::new(2);
        a.set(ObjectId(0), Value::Int(1), ts(1, 1));
        b.set(ObjectId(1), Value::Int(1), ts(1, 1));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn total_int_sums_values() {
        let mut s = ObjectStore::new(3);
        s.set(ObjectId(0), Value::Int(10), ts(1, 1));
        s.set(ObjectId(1), Value::Int(-4), ts(2, 1));
        s.set(ObjectId(2), Value::from("text"), ts(3, 1));
        assert_eq!(s.total_int(), 6);
    }

    #[test]
    fn iter_yields_all() {
        let s = ObjectStore::new(5);
        assert_eq!(s.iter().count(), 5);
        let ids: Vec<u64> = s.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sharded_store_holds_only_hosted_objects() {
        let map = ShardMap::new(4, 4, 2);
        let node = NodeId(1);
        let s = ObjectStore::sharded(22, &map, node);
        let expect: Vec<u64> = (0..22)
            .filter(|&o| map.hosts_object(node, ObjectId(o)))
            .collect();
        assert_eq!(s.len(), expect.len());
        let got: Vec<u64> = s.iter().map(|(id, _)| id.0).collect();
        assert_eq!(got, expect);
        for &o in &expect {
            assert!(s.hosts(ObjectId(o)));
        }
        assert!(!s.hosts(ObjectId(0)) || map.hosts_object(node, ObjectId(0)));
    }

    #[test]
    fn sharded_store_rolling_digest_matches_recompute() {
        let map = ShardMap::new(5, 5, 2);
        let node = NodeId(2);
        let mut s = ObjectStore::sharded(23, &map, node);
        assert_eq!(s.digest(), s.recompute_digest());
        let hosted: Vec<u64> = s.iter().map(|(id, _)| id.0).collect();
        for (i, &o) in hosted.iter().enumerate() {
            s.set(ObjectId(o), Value::Int(i as i64), ts(i as u64 + 1, 2));
        }
        assert_eq!(s.digest(), s.recompute_digest());
    }

    #[test]
    fn cohosting_nodes_agree_on_shared_state() {
        // Two replicas of the same shard applying the same updates must
        // agree per object (hashes are keyed by object id, not slot),
        // even though the object sits in different slots on each.
        let map = ShardMap::new(4, 4, 2);
        // Shard 1 lives at nodes {1, 2}.
        let (a, b) = (NodeId(1), NodeId(2));
        let mut sa = ObjectStore::sharded(16, &map, a);
        let mut sb = ObjectStore::sharded(16, &map, b);
        let obj = ObjectId(5); // shard 1
        sa.set(obj, Value::Int(9), ts(3, 1));
        sb.set(obj, Value::Int(9), ts(3, 1));
        assert_eq!(sa.get(obj), sb.get(obj));
        let ha = sa.iter().find(|(id, _)| *id == obj).unwrap().1;
        let hb = sb.iter().find(|(id, _)| *id == obj).unwrap().1;
        assert_eq!(ha, hb);
    }

    #[test]
    fn sharded_with_full_rf_is_a_plain_full_store() {
        let map = ShardMap::new(6, 3, 0);
        let full = ObjectStore::new(20);
        let sharded = ObjectStore::sharded(20, &map, NodeId(1));
        assert_eq!(sharded.len(), full.len());
        assert_eq!(sharded.digest(), full.digest());
    }

    #[test]
    #[should_panic(expected = "not hosted")]
    fn sharded_store_panics_on_unhosted_get() {
        let map = ShardMap::new(4, 4, 1);
        // Node 0 hosts only shard 0; object 1 is shard 1.
        let s = ObjectStore::sharded(8, &map, NodeId(0));
        let _ = s.get(ObjectId(1));
    }
}
