//! A fast, non-cryptographic hasher for integer-keyed maps on
//! simulator hot paths.
//!
//! The standard library's default hasher (SipHash) is DoS-resistant
//! but costs tens of nanoseconds per lookup — noticeable when an
//! engine consults a version map on every action of millions of
//! committed transactions. Keys here are internal ids (`ObjectId`,
//! `TxnId`, `Timestamp`), never attacker-controlled, so a
//! multiply-xor hash is safe and several times faster.
//!
//! Use [`FastMap`] only for maps that are *never iterated* for
//! output: iteration order differs from SipHash maps, and the
//! harness promises byte-identical output across runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (a large odd constant with good
/// bit dispersion under multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: fold each word in with rotate-xor-multiply.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastState = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed by the fast hasher. Never iterate one of these
/// for output — order is not the SipHash order the baselines froze.
pub type FastMap<K, V> = HashMap<K, V, FastState>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, Timestamp, TxnId};

    #[test]
    fn map_roundtrips_typical_keys() {
        let mut m: FastMap<ObjectId, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(ObjectId(i), i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&ObjectId(i)), Some(&(i * 2)));
        }
        let mut t: FastMap<(ObjectId, Timestamp), TxnId> = FastMap::default();
        t.insert((ObjectId(7), Timestamp::new(3, crate::NodeId(1))), TxnId(9));
        assert_eq!(
            t.get(&(ObjectId(7), Timestamp::new(3, crate::NodeId(1)))),
            Some(&TxnId(9))
        );
        assert_eq!(t.get(&(ObjectId(7), Timestamp::ZERO)), None);
    }

    #[test]
    fn distinct_words_hash_distinctly() {
        // Not a distribution test — just a guard against a degenerate
        // implementation (e.g. ignoring input or constant output).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FastHasher::default();
        a.write(b"abcdefgh-tail1");
        let mut b = FastHasher::default();
        b.write(b"abcdefgh-tail2");
        assert_ne!(a.finish(), b.finish());
    }
}
