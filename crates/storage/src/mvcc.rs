//! A multi-version object store — the concurrency-control substrate the
//! paper's model assumes: "it ignores 'true' serialization, and assumes
//! a weak multi-version form of committed-read serialization (no read
//! locks)".
//!
//! Each object keeps a bounded chain of committed versions. Readers
//! never block: `read_latest` returns the most recent committed value
//! (committed read), and `read_at` returns the newest version at or
//! below a timestamp (a consistent snapshot for that timestamp). Only
//! writers, which install new committed versions, need the lock manager.

use crate::object::{ObjectId, Timestamp, Value, Versioned};

/// Default number of versions retained per object.
const DEFAULT_RETAIN: usize = 8;

/// A bounded multi-version store over `db_size` objects.
#[derive(Debug, Clone)]
pub struct MvccStore {
    /// Per-object version chains, oldest → newest, always non-empty.
    chains: Vec<Vec<Versioned>>,
    retain: usize,
}

impl MvccStore {
    /// A store of `db_size` objects, each starting at
    /// [`Versioned::initial`], retaining [`DEFAULT_RETAIN`] versions.
    pub fn new(db_size: u64) -> Self {
        Self::with_retention(db_size, DEFAULT_RETAIN)
    }

    /// A store retaining up to `retain` versions per object (≥ 1).
    ///
    /// # Panics
    /// If `retain` is zero.
    pub fn with_retention(db_size: u64, retain: usize) -> Self {
        assert!(retain >= 1, "must retain at least the latest version");
        MvccStore {
            chains: (0..db_size).map(|_| vec![Versioned::initial()]).collect(),
            retain,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// Whether the store has no objects.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Install a new committed version. Versions must be installed in
    /// increasing timestamp order per object (the writer holds the
    /// exclusive lock, so this is the natural order); out-of-order
    /// installs are rejected and return `false`.
    pub fn install(&mut self, id: ObjectId, value: Value, ts: Timestamp) -> bool {
        let chain = &mut self.chains[id.0 as usize];
        let newest = chain.last().expect("chains are never empty");
        if ts <= newest.ts && newest.ts != Timestamp::ZERO {
            return false;
        }
        chain.push(Versioned { value, ts });
        if chain.len() > self.retain {
            let drop = chain.len() - self.retain;
            chain.drain(..drop);
        }
        true
    }

    /// Committed read: the most recent committed version. Never blocks
    /// — this is the "no read locks" discipline.
    pub fn read_latest(&self, id: ObjectId) -> &Versioned {
        self.chains[id.0 as usize]
            .last()
            .expect("chains are never empty")
    }

    /// Snapshot read: the newest version with timestamp ≤ `at`.
    /// Returns `None` if that version has been garbage-collected (the
    /// snapshot is too old) — the caller must fall back to a committed
    /// read, accepting the weaker isolation.
    pub fn read_at(&self, id: ObjectId, at: Timestamp) -> Option<&Versioned> {
        let chain = &self.chains[id.0 as usize];
        let candidate = chain.iter().rev().find(|v| v.ts <= at);
        match candidate {
            Some(v) => Some(v),
            None => None, // every retained version is newer than `at`
        }
    }

    /// Number of versions currently retained for `id`.
    pub fn version_count(&self, id: ObjectId) -> usize {
        self.chains[id.0 as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NodeId;

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, NodeId(1))
    }

    #[test]
    fn initial_state_readable() {
        let s = MvccStore::new(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.read_latest(ObjectId(2)), &Versioned::initial());
        assert_eq!(
            s.read_at(ObjectId(2), ts(100)).unwrap(),
            &Versioned::initial()
        );
    }

    #[test]
    fn committed_read_sees_newest() {
        let mut s = MvccStore::new(1);
        assert!(s.install(ObjectId(0), Value::Int(1), ts(1)));
        assert!(s.install(ObjectId(0), Value::Int(2), ts(2)));
        assert_eq!(s.read_latest(ObjectId(0)).value, Value::Int(2));
    }

    #[test]
    fn snapshot_read_sees_version_at_timestamp() {
        let mut s = MvccStore::new(1);
        s.install(ObjectId(0), Value::Int(10), ts(10));
        s.install(ObjectId(0), Value::Int(20), ts(20));
        s.install(ObjectId(0), Value::Int(30), ts(30));
        // A reader whose snapshot is t=25 sees the t=20 version even
        // though t=30 has committed — no read locks, no blocking.
        assert_eq!(
            s.read_at(ObjectId(0), ts(25)).unwrap().value,
            Value::Int(20)
        );
        assert_eq!(
            s.read_at(ObjectId(0), ts(10)).unwrap().value,
            Value::Int(10)
        );
        assert_eq!(
            s.read_at(ObjectId(0), ts(9)).unwrap().ts,
            Timestamp::ZERO,
            "before the first write the initial version is visible"
        );
    }

    #[test]
    fn out_of_order_install_rejected() {
        let mut s = MvccStore::new(1);
        assert!(s.install(ObjectId(0), Value::Int(5), ts(5)));
        assert!(!s.install(ObjectId(0), Value::Int(3), ts(3)));
        assert!(
            !s.install(ObjectId(0), Value::Int(9), ts(5)),
            "equal ts rejected"
        );
        assert_eq!(s.read_latest(ObjectId(0)).value, Value::Int(5));
    }

    #[test]
    fn retention_garbage_collects_oldest() {
        let mut s = MvccStore::with_retention(1, 3);
        for i in 1..=10u64 {
            s.install(ObjectId(0), Value::Int(i as i64), ts(i));
        }
        assert_eq!(s.version_count(ObjectId(0)), 3);
        assert_eq!(s.read_latest(ObjectId(0)).value, Value::Int(10));
        // Snapshots newer than the GC floor still resolve…
        assert_eq!(s.read_at(ObjectId(0), ts(9)).unwrap().value, Value::Int(9));
        // …but a too-old snapshot reports the miss instead of lying.
        assert!(s.read_at(ObjectId(0), ts(5)).is_none());
    }

    #[test]
    fn snapshot_is_consistent_across_objects() {
        // The scenario committed-read gets wrong and snapshots get
        // right: a transfer between two accounts.
        let mut s = MvccStore::new(2);
        s.install(ObjectId(0), Value::Int(100), ts(1));
        s.install(ObjectId(1), Value::Int(0), ts(1));
        // Transfer 40 commits at t=5.
        s.install(ObjectId(0), Value::Int(60), ts(5));
        s.install(ObjectId(1), Value::Int(40), ts(5));
        // A t=3 snapshot sees the pre-transfer state on BOTH accounts:
        // the invariant (sum = 100) holds.
        let a = s
            .read_at(ObjectId(0), ts(3))
            .unwrap()
            .value
            .as_int()
            .unwrap();
        let b = s
            .read_at(ObjectId(1), ts(3))
            .unwrap()
            .value
            .as_int()
            .unwrap();
        assert_eq!(a + b, 100);
        // And the t=5 snapshot sees the post-transfer state.
        let a = s
            .read_at(ObjectId(0), ts(5))
            .unwrap()
            .value
            .as_int()
            .unwrap();
        let b = s
            .read_at(ObjectId(1), ts(5))
            .unwrap()
            .value
            .as_int()
            .unwrap();
        assert_eq!((a, b), (60, 40));
    }

    #[test]
    #[should_panic(expected = "retain at least")]
    fn zero_retention_panics() {
        MvccStore::with_retention(1, 0);
    }
}
