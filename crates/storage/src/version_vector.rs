//! Version vectors, as used by Microsoft Access's "Wingman" replication
//! (§6): each node keeps a version vector with each replicated record;
//! vectors are exchanged pairwise and "the most recent update wins each
//! pairwise exchange", with rejected updates reported.

use crate::object::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How two version vectors relate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// Identical vectors.
    Equal,
    /// `self` dominates (strictly newer): it has seen everything the
    /// other has, and more.
    Dominates,
    /// The other dominates.
    DominatedBy,
    /// Each has updates the other has not seen — a true concurrent
    /// conflict that needs a resolution rule.
    Concurrent,
}

/// A per-record version vector: update counts per node.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VersionVector {
    counts: BTreeMap<NodeId, u64>,
}

impl VersionVector {
    /// The empty (initial) vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one local update at `node`.
    pub fn bump(&mut self, node: NodeId) {
        *self.counts.entry(node).or_insert(0) += 1;
    }

    /// The count recorded for `node` (0 if absent).
    pub fn get(&self, node: NodeId) -> u64 {
        self.counts.get(&node).copied().unwrap_or(0)
    }

    /// Compare two vectors for causal ordering.
    pub fn compare(&self, other: &VersionVector) -> Causality {
        let mut self_ahead = false;
        let mut other_ahead = false;
        let nodes = self.counts.keys().chain(other.counts.keys());
        for &node in nodes {
            let a = self.get(node);
            let b = other.get(node);
            if a > b {
                self_ahead = true;
            }
            if b > a {
                other_ahead = true;
            }
        }
        match (self_ahead, other_ahead) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::Dominates,
            (false, true) => Causality::DominatedBy,
            (true, true) => Causality::Concurrent,
        }
    }

    /// Pointwise maximum — the vector after merging two replicas.
    pub fn merge(&mut self, other: &VersionVector) {
        for (&node, &count) in &other.counts {
            let entry = self.counts.entry(node).or_insert(0);
            *entry = (*entry).max(count);
        }
    }

    /// Total number of updates recorded across all nodes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);
    const N3: NodeId = NodeId(3);

    #[test]
    fn fresh_vectors_equal() {
        assert_eq!(
            VersionVector::new().compare(&VersionVector::new()),
            Causality::Equal
        );
    }

    #[test]
    fn bump_dominates() {
        let mut a = VersionVector::new();
        let b = VersionVector::new();
        a.bump(N1);
        assert_eq!(a.compare(&b), Causality::Dominates);
        assert_eq!(b.compare(&a), Causality::DominatedBy);
    }

    #[test]
    fn concurrent_updates_detected() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        a.bump(N1);
        b.bump(N2);
        assert_eq!(a.compare(&b), Causality::Concurrent);
        assert_eq!(b.compare(&a), Causality::Concurrent);
    }

    #[test]
    fn sequential_history_orders() {
        // a: {n1:2}; b saw a then updated at n2: {n1:2, n2:1}.
        let mut a = VersionVector::new();
        a.bump(N1);
        a.bump(N1);
        let mut b = a.clone();
        b.bump(N2);
        assert_eq!(b.compare(&a), Causality::Dominates);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        a.bump(N1);
        a.bump(N1);
        b.bump(N1);
        b.bump(N2);
        b.bump(N3);
        a.merge(&b);
        assert_eq!(a.get(N1), 2);
        assert_eq!(a.get(N2), 1);
        assert_eq!(a.get(N3), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn merge_makes_domination() {
        let mut a = VersionVector::new();
        let mut b = VersionVector::new();
        a.bump(N1);
        b.bump(N2);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.compare(&a), Causality::Dominates);
        assert_eq!(merged.compare(&b), Causality::Dominates);
    }

    #[test]
    fn get_missing_is_zero() {
        assert_eq!(VersionVector::new().get(N3), 0);
    }
}
