//! The mobile node's dual-version store (§7): every replicated object
//! has a **master version** (best known value from the object master)
//! and possibly a **tentative version** produced by local tentative
//! transactions.
//!
//! On reconnect the mobile node "discards its tentative object versions
//! since they will soon be refreshed from the masters" — that is
//! [`TentativeStore::discard_tentative`].

use crate::object::{ObjectId, Timestamp, Value, Versioned};
use crate::store::ObjectStore;
use std::collections::HashMap;

/// Dual-version object storage for a mobile node.
#[derive(Debug)]
pub struct TentativeStore {
    /// Best known master versions (refreshed by lazy-master replication
    /// while connected).
    master: ObjectStore,
    /// Tentative overlays: objects updated by local tentative
    /// transactions since the last synchronization. Sparse — most of
    /// the database is untouched during a disconnect window.
    tentative: HashMap<ObjectId, Versioned>,
}

impl TentativeStore {
    /// A store over `db_size` objects with no tentative state.
    pub fn new(db_size: u64) -> Self {
        Self::from_master(ObjectStore::new(db_size))
    }

    /// Wrap an existing master-version store (e.g. a partial
    /// [`ObjectStore::sharded`] replica) with no tentative state.
    pub fn from_master(master: ObjectStore) -> Self {
        TentativeStore {
            master,
            tentative: HashMap::new(),
        }
    }

    /// The underlying master-version store.
    pub fn master(&self) -> &ObjectStore {
        &self.master
    }

    /// Mutable access to the master-version store (replica refresh).
    pub fn master_mut(&mut self) -> &mut ObjectStore {
        &mut self.master
    }

    /// Read through the tentative overlay: local queries "see the
    /// tentative values" (§7) — the tentative version if one exists,
    /// else the best known master version.
    pub fn read(&self, id: ObjectId) -> &Versioned {
        self.tentative
            .get(&id)
            .unwrap_or_else(|| self.master.get(id))
    }

    /// Read only the master version, ignoring tentative state.
    pub fn read_master(&self, id: ObjectId) -> &Versioned {
        self.master.get(id)
    }

    /// Record a tentative write.
    pub fn write_tentative(&mut self, id: ObjectId, value: Value, ts: Timestamp) {
        self.tentative.insert(id, Versioned { value, ts });
    }

    /// Whether `id` has a tentative version.
    pub fn is_tentative(&self, id: ObjectId) -> bool {
        self.tentative.contains_key(&id)
    }

    /// Number of objects with tentative versions.
    pub fn tentative_count(&self) -> usize {
        self.tentative.len()
    }

    /// Reconnect step 1: drop all tentative versions (they are about to
    /// be re-derived by re-executing the tentative transactions at the
    /// base).
    pub fn discard_tentative(&mut self) {
        self.tentative.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NodeId;

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, NodeId(9))
    }

    #[test]
    fn read_prefers_tentative_overlay() {
        let mut s = TentativeStore::new(4);
        s.master_mut().set(ObjectId(1), Value::Int(100), ts(1));
        assert_eq!(s.read(ObjectId(1)).value, Value::Int(100));
        s.write_tentative(ObjectId(1), Value::Int(75), ts(2));
        assert_eq!(s.read(ObjectId(1)).value, Value::Int(75));
        // The master version is untouched.
        assert_eq!(s.read_master(ObjectId(1)).value, Value::Int(100));
    }

    #[test]
    fn read_falls_through_for_untouched_objects() {
        let s = TentativeStore::new(4);
        assert_eq!(s.read(ObjectId(2)), &Versioned::initial());
    }

    #[test]
    fn discard_restores_master_view() {
        let mut s = TentativeStore::new(4);
        s.master_mut().set(ObjectId(0), Value::Int(10), ts(1));
        s.write_tentative(ObjectId(0), Value::Int(99), ts(2));
        s.write_tentative(ObjectId(3), Value::Int(1), ts(3));
        assert_eq!(s.tentative_count(), 2);
        s.discard_tentative();
        assert_eq!(s.tentative_count(), 0);
        assert_eq!(s.read(ObjectId(0)).value, Value::Int(10));
        assert!(!s.is_tentative(ObjectId(3)));
    }

    #[test]
    fn tentative_writes_layer_on_each_other() {
        let mut s = TentativeStore::new(2);
        s.write_tentative(ObjectId(0), Value::Int(1), ts(1));
        s.write_tentative(ObjectId(0), Value::Int(2), ts(2));
        assert_eq!(s.read(ObjectId(0)).value, Value::Int(2));
        assert_eq!(s.tentative_count(), 1);
    }
}
