//! Object identity, values, and the Lamport timestamps that tag every
//! replica update (the paper's Figure 4: `OID, old time, new value`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the `DB_Size` distinct objects in the database.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Identifies a node (replica site). Base and mobile nodes share the
/// same id space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A Lamport timestamp `(counter, node)` — totally ordered, unique per
/// update, and deterministic under the simulator. The paper's timestamp
/// reconciliation test ("if the local replica's timestamp and the
/// update's old timestamp are equal, the update is safe") compares these.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp {
    /// Logical Lamport counter (major component).
    pub counter: u64,
    /// Originating node (tie-breaker, makes timestamps globally unique).
    pub node: NodeId,
}

impl Timestamp {
    /// The timestamp of the initial database state, older than any
    /// update any node can generate.
    pub const ZERO: Timestamp = Timestamp {
        counter: 0,
        node: NodeId(0),
    };

    /// Construct a timestamp.
    pub fn new(counter: u64, node: NodeId) -> Self {
        Timestamp { counter, node }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.counter, self.node)
    }
}

/// A per-node Lamport clock: `tick` for local events, `observe` to merge
/// a remote timestamp (receive rule).
#[derive(Debug, Clone)]
pub struct LamportClock {
    node: NodeId,
    counter: u64,
}

impl LamportClock {
    /// A clock for `node`, starting above [`Timestamp::ZERO`].
    pub fn new(node: NodeId) -> Self {
        LamportClock { node, counter: 0 }
    }

    /// Advance for a local event and return the fresh timestamp.
    pub fn tick(&mut self) -> Timestamp {
        self.counter += 1;
        Timestamp::new(self.counter, self.node)
    }

    /// Merge an observed remote timestamp (Lamport receive rule): the
    /// local counter jumps above anything seen.
    pub fn observe(&mut self, ts: Timestamp) {
        self.counter = self.counter.max(ts.counter);
    }

    /// The most recent timestamp issued (not advanced).
    pub fn current(&self) -> Timestamp {
        Timestamp::new(self.counter, self.node)
    }
}

/// An object value. The paper's workloads are numeric (account balances,
/// stock levels, quotes); `Int` covers them and keeps commutativity
/// checkable. `Text` supports document-style payloads in the §6
/// convergent stores and the order-entry example.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit integer (account balance, stock count, …).
    Int(i64),
    /// An opaque text payload (document, note, address, …).
    Text(String),
}

impl Value {
    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Text(_) => None,
        }
    }

    /// The text inside, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

/// One versioned object: its current value and the timestamp of the
/// update that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Versioned {
    /// Current committed value.
    pub value: Value,
    /// Timestamp of the most recent committed update.
    pub ts: Timestamp,
}

impl Versioned {
    /// The initial version of every object: value zero at time zero.
    pub fn initial() -> Self {
        Versioned {
            value: Value::default(),
            ts: Timestamp::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_totally_ordered() {
        let a = Timestamp::new(1, NodeId(5));
        let b = Timestamp::new(2, NodeId(1));
        let c = Timestamp::new(2, NodeId(3));
        assert!(a < b);
        assert!(b < c); // same counter, node breaks tie
        assert!(Timestamp::ZERO < a);
    }

    #[test]
    fn lamport_clock_monotone() {
        let mut clk = LamportClock::new(NodeId(1));
        let t1 = clk.tick();
        let t2 = clk.tick();
        assert!(t2 > t1);
        assert_eq!(t2.node, NodeId(1));
    }

    #[test]
    fn lamport_observe_jumps_forward() {
        let mut clk = LamportClock::new(NodeId(1));
        clk.tick();
        clk.observe(Timestamp::new(100, NodeId(2)));
        let t = clk.tick();
        assert_eq!(t.counter, 101);
    }

    #[test]
    fn observe_smaller_is_noop() {
        let mut clk = LamportClock::new(NodeId(1));
        for _ in 0..10 {
            clk.tick();
        }
        clk.observe(Timestamp::new(3, NodeId(2)));
        assert_eq!(clk.tick().counter, 11);
    }

    #[test]
    fn clocks_on_distinct_nodes_never_collide() {
        let mut a = LamportClock::new(NodeId(1));
        let mut b = LamportClock::new(NodeId(2));
        let ta = a.tick();
        let tb = b.tick();
        assert_ne!(ta, tb);
        assert_eq!(ta.counter, tb.counter);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_text(), None);
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from("hi").as_int(), None);
    }

    #[test]
    fn initial_version_is_zero_at_time_zero() {
        let v = Versioned::initial();
        assert_eq!(v.value, Value::Int(0));
        assert_eq!(v.ts, Timestamp::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(3).to_string(), "o3");
        assert_eq!(NodeId(2).to_string(), "n2");
        assert_eq!(Timestamp::new(9, NodeId(2)).to_string(), "9@n2");
        assert_eq!(Value::Int(5).to_string(), "5");
    }
}
