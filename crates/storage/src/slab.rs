//! Generational slab arenas for in-flight transactions.
//!
//! The simulation engines keep every live transaction in a table and
//! touch it on every event dispatch (a `RootStep`, a replica apply, a
//! lock grant). A `HashMap<TxnId, _>` pays a hash per touch; this slab
//! instead *derives* the [`TxnId`] from the slot it occupies, so a
//! lookup is two array indexes and a generation compare. Freed slots go
//! on a free list and are recycled — like the lock manager's
//! `spare_held` pool — so a long run's arena stays as small as its peak
//! concurrency, not its total transaction count.
//!
//! Id layout (64 bits):
//!
//! ```text
//! | tag (8) | generation (24) | slot (32) |
//! ```
//!
//! * **slot** — dense index into the arena.
//! * **generation** — bumped every time a slot is freed, so a stale id
//!   from a completed transaction misses instead of aliasing the slot's
//!   next occupant. Wraps after 2^24 reuses of one slot (a run would
//!   need ~16M transactions through a single slot to alias — far past
//!   any horizon the harness sweeps).
//! * **tag** — distinguishes arenas that share an id space. The
//!   lazy-group engine keeps root and replica transactions in separate
//!   slabs; the tag routes a granted lock's `TxnId` back to the right
//!   arena without a membership probe in both.
//!
//! Iteration ([`TxnSlab::iter`]) is in slot order — deterministic, and
//! independent of hasher state, unlike `HashMap` iteration.

use crate::lock::TxnId;

const SLOT_BITS: u32 = 32;
const GEN_BITS: u32 = 24;
const GEN_MASK: u64 = (1 << GEN_BITS) - 1;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// One arena slot: the occupant (if any) plus the generation stamp ids
/// are checked against.
#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A generational slab keyed by the [`TxnId`]s it mints.
#[derive(Debug, Clone)]
pub struct TxnSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    /// Tag OR'd into every id this slab mints (pre-shifted).
    tag: u64,
}

impl<T> TxnSlab<T> {
    /// An empty slab. `tag` (0..=255) namespaces this slab's ids so
    /// multiple arenas can share one id space; ids minted here never
    /// match a slab with a different tag.
    pub fn new(tag: u8) -> Self {
        TxnSlab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            tag: u64::from(tag) << (SLOT_BITS + GEN_BITS),
        }
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` carries this slab's tag (regardless of liveness).
    /// Engines with several arenas use this to route an id to the
    /// arena that minted it.
    #[inline]
    pub fn owns(&self, id: TxnId) -> bool {
        id.0 >> (SLOT_BITS + GEN_BITS) == self.tag >> (SLOT_BITS + GEN_BITS)
    }

    #[inline]
    fn unpack(&self, id: TxnId) -> Option<(usize, u32)> {
        if id.0 & !(SLOT_MASK | (GEN_MASK << SLOT_BITS)) != self.tag {
            return None;
        }
        let slot = (id.0 & SLOT_MASK) as usize;
        let gen = ((id.0 >> SLOT_BITS) & GEN_MASK) as u32;
        Some((slot, gen))
    }

    /// Insert a transaction, minting its id from the slot it lands in.
    pub fn insert(&mut self, val: T) -> TxnId {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.val.is_none());
            s.val = Some(val);
            TxnId(self.tag | (u64::from(s.gen) << SLOT_BITS) | u64::from(slot))
        } else {
            let slot = self.slots.len() as u32;
            assert!(u64::from(slot) <= SLOT_MASK, "transaction arena overflow");
            self.slots.push(Slot {
                gen: 0,
                val: Some(val),
            });
            TxnId(self.tag | u64::from(slot))
        }
    }

    /// The live transaction with this id, if it is still in the arena.
    #[inline]
    pub fn get(&self, id: TxnId) -> Option<&T> {
        let (slot, gen) = self.unpack(id)?;
        let s = self.slots.get(slot)?;
        if s.gen != gen {
            return None;
        }
        s.val.as_ref()
    }

    /// Mutable access to the live transaction with this id.
    #[inline]
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut T> {
        let (slot, gen) = self.unpack(id)?;
        let s = self.slots.get_mut(slot)?;
        if s.gen != gen {
            return None;
        }
        s.val.as_mut()
    }

    /// Whether `id` names a live transaction here.
    #[inline]
    pub fn contains(&self, id: TxnId) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the transaction, recycling its slot. A stale
    /// or foreign id returns `None` and changes nothing.
    pub fn remove(&mut self, id: TxnId) -> Option<T> {
        let (slot, gen) = self.unpack(id)?;
        let s = self.slots.get_mut(slot)?;
        if s.gen != gen || s.val.is_none() {
            return None;
        }
        let val = s.val.take();
        // Bump the generation at free time so every outstanding copy of
        // this id goes stale immediately.
        s.gen = (s.gen + 1) & GEN_MASK as u32;
        self.free.push(slot as u32);
        self.len -= 1;
        val
    }

    /// Iterate `(id, txn)` pairs in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (TxnId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| {
                (
                    TxnId(self.tag | (u64::from(s.gen) << SLOT_BITS) | i as u64),
                    v,
                )
            })
        })
    }

    /// Ids of all live transactions, in slot order.
    pub fn ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = TxnSlab::new(0);
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
        assert!(!slab.is_empty());
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut slab = TxnSlab::new(0);
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        // Same slot, different generation: the stale id must miss.
        assert_ne!(a, b);
        assert_eq!(a.0 & SLOT_MASK, b.0 & SLOT_MASK);
        assert_eq!(slab.get(a), None);
        assert!(!slab.contains(a));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn tags_partition_the_id_space() {
        let mut roots: TxnSlab<&str> = TxnSlab::new(0);
        let mut reps: TxnSlab<&str> = TxnSlab::new(1);
        let r = roots.insert("root");
        let p = reps.insert("replica");
        assert!(roots.owns(r) && !roots.owns(p));
        assert!(reps.owns(p) && !reps.owns(r));
        // A foreign id never resolves, even with a matching slot/gen.
        assert_eq!(roots.get(p), None);
        assert_eq!(reps.get(r), None);
        assert_eq!(reps.remove(r), None);
        assert_eq!(reps.len(), 1);
    }

    #[test]
    fn iteration_is_slot_ordered_and_skips_holes() {
        let mut slab = TxnSlab::new(3);
        let ids: Vec<_> = (0..5).map(|i| slab.insert(i)).collect();
        slab.remove(ids[1]);
        slab.remove(ids[3]);
        let seen: Vec<i32> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![0, 2, 4]);
        let listed: Vec<TxnId> = slab.ids().collect();
        assert_eq!(listed, vec![ids[0], ids[2], ids[4]]);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut slab = TxnSlab::new(0);
        let id = slab.insert(vec![1, 2]);
        slab.get_mut(id).unwrap().push(3);
        assert_eq!(slab.get(id), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn free_list_keeps_arena_dense() {
        let mut slab = TxnSlab::new(0);
        for round in 0..100 {
            let id = slab.insert(round);
            assert_eq!(id.0 & SLOT_MASK, 0, "slot should be recycled");
            slab.remove(id);
        }
        assert!(slab.is_empty());
        assert_eq!(slab.slots.len(), 1);
    }
}
