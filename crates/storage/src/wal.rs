//! Per-node commit log. Lazy replication replays committed updates "in
//! sequential commit order" (§5); the log records exactly that order and
//! hands out contiguous ranges for propagation.

use crate::hash::FastMap;
use crate::lock::{Mutation, TxnId};
use crate::object::{NodeId, ObjectId, Timestamp, Value};
use serde::{Deserialize, Serialize};

/// Log sequence number: position in a node's commit log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Lsn(pub u64);

/// One committed object update, as shipped to replicas (the paper's
/// Figure 4 message: `TRID, OID, old time, new value`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// The committing (root) transaction.
    pub txn: TxnId,
    /// The updated object.
    pub object: ObjectId,
    /// Timestamp the root transaction observed before its write — the
    /// lazy-group safety test compares replicas against this.
    pub old_ts: Timestamp,
    /// Timestamp of the new version.
    pub new_ts: Timestamp,
    /// The new value.
    pub value: Value,
}

/// A committed transaction's updates, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitRecord {
    /// Log position of this commit.
    pub lsn: Lsn,
    /// The committed transaction.
    pub txn: TxnId,
    /// Its updates, in the order the transaction performed them.
    pub updates: Vec<UpdateRecord>,
}

/// An append-only, in-memory commit log for one node.
///
/// Supports truncation of fully replicated prefixes: once every
/// destination's watermark has passed an LSN, the records below it can
/// be discarded (`truncate_until`) while LSNs remain stable.
#[derive(Debug, Default)]
pub struct CommitLog {
    /// Backing storage. Live records are `records[start..]`; the
    /// prefix below `start` is truncated husks awaiting compaction.
    /// Truncation happens once per *commit* (the propagation path
    /// garbage-collects the fully shipped prefix), so eagerly
    /// `drain`ing the front would memmove the whole surviving tail
    /// every time — quadratic while a disconnected destination holds
    /// the watermark back. Advancing `start` and compacting only when
    /// the dead prefix dominates keeps truncation amortized O(1).
    records: Vec<CommitRecord>,
    /// Index of the oldest live record in `records`.
    start: usize,
    /// LSN of `records[start]` (number of records ever truncated).
    base: u64,
}

impl CommitLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of commits recorded.
    pub fn len(&self) -> usize {
        self.records.len() - self.start
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.records.len()
    }

    /// The LSN the *next* commit will receive.
    pub fn head(&self) -> Lsn {
        Lsn(self.base + self.len() as u64)
    }

    /// The oldest LSN still present (everything below was truncated).
    pub fn tail(&self) -> Lsn {
        Lsn(self.base)
    }

    /// Append a committed transaction, assigning its LSN.
    pub fn append(&mut self, txn: TxnId, updates: Vec<UpdateRecord>) -> Lsn {
        let lsn = self.head();
        self.records.push(CommitRecord { lsn, txn, updates });
        lsn
    }

    /// The commits in `[from, head)`, in commit order — what a
    /// reconnecting replica that has replayed up to `from` must apply.
    ///
    /// # Panics
    /// In debug builds if `from` lies below the truncation point (the
    /// requested history no longer exists).
    pub fn since(&self, from: Lsn) -> &[CommitRecord] {
        debug_assert!(
            from.0 >= self.base || self.is_empty(),
            "requested LSN {from:?} below truncation point {}",
            self.base
        );
        let skip = (from.0.saturating_sub(self.base) as usize).min(self.len());
        &self.records[self.start + skip..]
    }

    /// Read one commit by LSN. Returns `None` for truncated or
    /// not-yet-written positions.
    pub fn get(&self, lsn: Lsn) -> Option<&CommitRecord> {
        let idx = lsn.0.checked_sub(self.base)? as usize;
        if idx >= self.len() {
            return None;
        }
        self.records.get(self.start + idx)
    }

    /// Discard every record below `upto` (exclusive). Call with the
    /// minimum of all destination watermarks so no replica loses
    /// history it still needs.
    pub fn truncate_until(&mut self, upto: Lsn) {
        let cut = (upto.0.saturating_sub(self.base) as usize).min(self.len());
        if cut == 0 {
            return;
        }
        for rec in &mut self.records[self.start..self.start + cut] {
            // Free the payload now; the husk waits for compaction.
            rec.updates = Vec::new();
        }
        self.advance(cut);
    }

    /// [`CommitLog::truncate_until`], but the discarded records' update
    /// buffers are cleared and pushed onto `spare` instead of freed, so
    /// the engine can hand the allocations to future commits. At steady
    /// state commits consume recycled buffers as fast as truncation
    /// produces them, so `spare` stays bounded by the log's own churn.
    pub fn truncate_until_recycling(&mut self, upto: Lsn, spare: &mut Vec<Vec<UpdateRecord>>) {
        let cut = (upto.0.saturating_sub(self.base) as usize).min(self.len());
        if cut == 0 {
            return;
        }
        for rec in &mut self.records[self.start..self.start + cut] {
            let mut updates = std::mem::take(&mut rec.updates);
            updates.clear();
            spare.push(updates);
        }
        self.advance(cut);
    }

    /// Advance the truncation point past `cut` already-emptied records,
    /// compacting the backing vector once the dead prefix outweighs the
    /// live tail (amortized O(1) per truncated record).
    fn advance(&mut self, cut: usize) {
        self.start += cut;
        self.base += cut as u64;
        if self.start >= 32 && self.start >= self.records.len() - self.start {
            self.records.drain(..self.start);
            self.start = 0;
        }
    }
}

/// One node's durable 2PC state for a transaction, as replayed on
/// restart. Presumed abort: a transaction with no entry (or a
/// [`DecisionState::Prepared`] entry on the *coordinator*) is aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecisionState {
    /// Participant force-logged its yes-vote; it is in doubt until the
    /// decision from `coord` arrives (recovery asks `coord`).
    Prepared {
        /// The coordinating node to query on recovery.
        coord: NodeId,
    },
    /// The decision is durable. On the coordinator the record carries
    /// the participant set so recovery can re-distribute it.
    Decided {
        /// True for commit, false for abort.
        commit: bool,
        /// Remote participants still owed the decision (coordinator
        /// records only; empty on participants).
        participants: Vec<NodeId>,
    },
    /// Every participant acknowledged — the entry is garbage.
    Done,
}

/// The durable per-node decision log of the two-phase commit layer —
/// the WAL-replay path a crashed owner recovers in-doubt transactions
/// from. Appends survive crashes; everything volatile (coordinator
/// timers, vote tallies) does not.
///
/// The `REPL_MUTATE=drop-decision[:P]` mutation (read once at
/// construction) silently loses every `P`-th [`DecisionLog::log_decision`]
/// append, modelling a coordinator that acks before the log is durable —
/// the decision-durability oracle must catch it.
#[derive(Debug, Default)]
pub struct DecisionLog {
    entries: FastMap<TxnId, DecisionState>,
    mutation: Mutation,
    decision_appends: u64,
}

impl DecisionLog {
    /// An empty log, with the `REPL_MUTATE` hook armed.
    pub fn new() -> Self {
        DecisionLog {
            entries: FastMap::default(),
            mutation: Mutation::from_env(),
            decision_appends: 0,
        }
    }

    /// Participant: force-log the yes-vote before sending it.
    pub fn log_prepared(&mut self, txn: TxnId, coord: NodeId) {
        self.entries
            .entry(txn)
            .or_insert(DecisionState::Prepared { coord });
    }

    /// Force-log a decision (coordinator passes the remote participant
    /// set; participants pass an empty one). Overwrites a `Prepared`
    /// entry; never downgrades a `Done` one.
    pub fn log_decision(&mut self, txn: TxnId, commit: bool, participants: Vec<NodeId>) {
        self.decision_appends += 1;
        if let Mutation::DropDecision { period } = self.mutation {
            if self.decision_appends.is_multiple_of(period) {
                return; // the injected bug: ack without durability
            }
        }
        match self.entries.entry(txn) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if !matches!(e.get(), DecisionState::Done) {
                    e.insert(DecisionState::Decided {
                        commit,
                        participants,
                    });
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(DecisionState::Decided {
                    commit,
                    participants,
                });
            }
        }
    }

    /// Coordinator: every participant acked, the entry can be forgotten.
    pub fn mark_done(&mut self, txn: TxnId) {
        // Only an existing record transitions to Done: if the decision
        // append never made it to the log (crash, injected drop), acks
        // completing must not fabricate durability.
        if let Some(e) = self.entries.get_mut(&txn) {
            if matches!(e, DecisionState::Decided { .. }) {
                *e = DecisionState::Done;
            }
        }
    }

    /// The durable decision for `txn`, if any (`true` = commit).
    /// Presumed abort: callers treat `None` as abort.
    pub fn decision(&self, txn: TxnId) -> Option<bool> {
        match self.entries.get(&txn)? {
            DecisionState::Decided { commit, .. } => Some(*commit),
            _ => None,
        }
    }

    /// The durable state for `txn`, if any.
    pub fn state(&self, txn: TxnId) -> Option<&DecisionState> {
        self.entries.get(&txn)
    }

    /// Replay iterator: every surviving entry, for restart recovery and
    /// end-of-run durability audits. Order is unspecified — recovery
    /// treats each transaction independently.
    pub fn entries(&self) -> impl Iterator<Item = (TxnId, &DecisionState)> {
        self.entries.iter().map(|(t, s)| (*t, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(txn: u64, obj: u64, c: u64) -> UpdateRecord {
        UpdateRecord {
            txn: TxnId(txn),
            object: ObjectId(obj),
            old_ts: Timestamp::ZERO,
            new_ts: Timestamp::new(c, NodeId(1)),
            value: Value::Int(c as i64),
        }
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut log = CommitLog::new();
        assert_eq!(log.append(TxnId(1), vec![upd(1, 0, 1)]), Lsn(0));
        assert_eq!(log.append(TxnId(2), vec![upd(2, 1, 2)]), Lsn(1));
        assert_eq!(log.head(), Lsn(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn since_returns_suffix_in_order() {
        let mut log = CommitLog::new();
        for i in 0..5 {
            log.append(TxnId(i), vec![upd(i, i, i + 1)]);
        }
        let tail = log.since(Lsn(3));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].txn, TxnId(3));
        assert_eq!(tail[1].txn, TxnId(4));
    }

    #[test]
    fn since_head_is_empty() {
        let mut log = CommitLog::new();
        log.append(TxnId(1), vec![]);
        assert!(log.since(log.head()).is_empty());
    }

    #[test]
    fn since_past_head_is_empty_not_panic() {
        let log = CommitLog::new();
        assert!(log.since(Lsn(42)).is_empty());
    }

    #[test]
    fn get_by_lsn() {
        let mut log = CommitLog::new();
        let lsn = log.append(TxnId(7), vec![upd(7, 3, 9)]);
        let rec = log.get(lsn).unwrap();
        assert_eq!(rec.txn, TxnId(7));
        assert_eq!(rec.updates[0].object, ObjectId(3));
        assert!(log.get(Lsn(99)).is_none());
    }

    #[test]
    fn empty_log_state() {
        let log = CommitLog::new();
        assert!(log.is_empty());
        assert_eq!(log.head(), Lsn(0));
        assert_eq!(log.tail(), Lsn(0));
    }

    #[test]
    fn truncate_preserves_lsns() {
        let mut log = CommitLog::new();
        for i in 0..10 {
            log.append(TxnId(i), vec![upd(i, i, i + 1)]);
        }
        log.truncate_until(Lsn(4));
        assert_eq!(log.tail(), Lsn(4));
        assert_eq!(log.head(), Lsn(10));
        assert_eq!(log.len(), 6);
        // LSNs are stable across truncation.
        assert_eq!(log.get(Lsn(4)).unwrap().txn, TxnId(4));
        assert!(log.get(Lsn(3)).is_none(), "truncated record must be gone");
        let tail = log.since(Lsn(8));
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].txn, TxnId(8));
    }

    #[test]
    fn truncate_everything_then_append() {
        let mut log = CommitLog::new();
        log.append(TxnId(1), vec![]);
        log.append(TxnId(2), vec![]);
        log.truncate_until(log.head());
        assert!(log.is_empty());
        assert_eq!(log.head(), Lsn(2));
        let lsn = log.append(TxnId(3), vec![]);
        assert_eq!(lsn, Lsn(2));
        assert_eq!(log.get(Lsn(2)).unwrap().txn, TxnId(3));
    }

    #[test]
    fn truncate_beyond_head_clamps() {
        let mut log = CommitLog::new();
        log.append(TxnId(1), vec![]);
        log.truncate_until(Lsn(99));
        assert!(log.is_empty());
        assert_eq!(log.tail(), Lsn(1));
    }

    #[test]
    fn truncate_recycling_matches_plain_truncate() {
        let mut a = CommitLog::new();
        let mut b = CommitLog::new();
        for i in 0..6 {
            a.append(TxnId(i), vec![upd(i, i, i + 1)]);
            b.append(TxnId(i), vec![upd(i, i, i + 1)]);
        }
        let mut spare = Vec::new();
        a.truncate_until(Lsn(4));
        b.truncate_until_recycling(Lsn(4), &mut spare);
        assert_eq!(a.tail(), b.tail());
        assert_eq!(a.head(), b.head());
        assert_eq!(a.since(Lsn(4)), b.since(Lsn(4)));
        // Four buffers came back, emptied but with capacity intact.
        assert_eq!(spare.len(), 4);
        assert!(spare.iter().all(|v| v.is_empty() && v.capacity() >= 1));
    }

    #[test]
    fn decision_log_presumes_abort() {
        let log = DecisionLog::new();
        assert_eq!(log.decision(TxnId(1)), None);
        assert!(log.state(TxnId(1)).is_none());
    }

    #[test]
    fn decision_log_lifecycle() {
        let mut log = DecisionLog::new();
        log.log_prepared(TxnId(1), NodeId(3));
        assert_eq!(
            log.state(TxnId(1)),
            Some(&DecisionState::Prepared { coord: NodeId(3) })
        );
        assert_eq!(log.decision(TxnId(1)), None, "prepared is not decided");
        log.log_decision(TxnId(1), true, vec![NodeId(2)]);
        assert_eq!(log.decision(TxnId(1)), Some(true));
        log.mark_done(TxnId(1));
        assert_eq!(log.state(TxnId(1)), Some(&DecisionState::Done));
        // A replayed decision never resurrects a Done entry.
        log.log_decision(TxnId(1), false, vec![]);
        assert_eq!(log.state(TxnId(1)), Some(&DecisionState::Done));
    }

    #[test]
    fn decision_log_drop_decision_mutation() {
        // Construct directly (not via env) so the test cannot race other
        // tests over the process-global REPL_MUTATE variable.
        let mut log = DecisionLog {
            mutation: Mutation::DropDecision { period: 2 },
            ..DecisionLog::default()
        };
        log.log_decision(TxnId(1), true, vec![]);
        log.log_decision(TxnId(2), true, vec![]);
        log.log_decision(TxnId(3), false, vec![]);
        assert_eq!(log.decision(TxnId(1)), Some(true));
        assert_eq!(log.decision(TxnId(2)), None, "2nd append must be lost");
        assert_eq!(log.decision(TxnId(3)), Some(false));
        // Ack completion must not mask the dropped append: mark_done on
        // a missing entry leaves it missing (this is what the
        // lost-decision oracle detects).
        log.mark_done(TxnId(2));
        assert!(log.state(TxnId(2)).is_none());
    }

    #[test]
    fn truncate_noop_below_base() {
        let mut log = CommitLog::new();
        for i in 0..5 {
            log.append(TxnId(i), vec![]);
        }
        log.truncate_until(Lsn(3));
        log.truncate_until(Lsn(2)); // already gone — must not panic
        assert_eq!(log.tail(), Lsn(3));
    }
}
