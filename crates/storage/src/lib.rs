//! # repl-storage — per-node database substrate
//!
//! Everything a replica site needs, built from scratch:
//!
//! * [`object`] — object/node identity, [`Value`]s, Lamport
//!   [`Timestamp`]s and clocks (the tags on every replica update in the
//!   paper's Figure 4),
//! * [`store`] — the dense replicated [`ObjectStore`] with the paper's
//!   timestamp safety test (`apply_versioned`) and last-writer-wins
//!   refresh (`apply_lww`),
//! * [`lock`] — strict exclusive two-phase locking with FIFO queues and
//!   immediate waits-for deadlock detection (§3's "locking detects
//!   potential anomalies and converts them to waits or deadlocks"),
//! * [`mvcc`] — the multi-version committed-read store the model's
//!   "no read locks" assumption rests on,
//! * [`shard`] — the sharded-keyspace layout ([`ShardMap`]): object→
//!   shard assignment and shard→replica-set placement for partial
//!   replication,
//! * [`slab`] — generational slab arenas that mint dense [`TxnId`]s, so
//!   engines index in-flight transactions instead of hashing them,
//! * [`wal`] — the per-node commit log replayed "in sequential commit
//!   order" by lazy replication (§5),
//! * [`tentative`] — the mobile node's dual master/tentative versions
//!   (§7),
//! * [`version_vector`] — Access-style per-record version vectors (§6).

#![warn(missing_docs)]

pub mod div;
pub mod hash;
pub mod lock;
pub mod mvcc;
pub mod object;
pub mod shard;
pub mod slab;
pub mod store;
pub mod tentative;
pub mod version_vector;
pub mod wal;

pub use div::FastDivMod;
pub use lock::{Acquire, DeadlockMode, LockManager, Mutation, TxnId};
pub use mvcc::MvccStore;
pub use object::{LamportClock, NodeId, ObjectId, Timestamp, Value, Versioned};
pub use shard::ShardMap;
pub use slab::TxnSlab;
pub use store::{ApplyOutcome, ObjectStore};
pub use tentative::TentativeStore;
pub use version_vector::{Causality, VersionVector};
pub use wal::{CommitLog, CommitRecord, DecisionLog, DecisionState, Lsn, UpdateRecord};
