//! Exclusive lock manager with waits-for deadlock detection.
//!
//! The paper's model regulates concurrent execution with locking
//! (§3: "Locking detects potential anomalies and converts them to waits
//! or deadlocks"). Reads are ignored and every action is an update, so
//! only exclusive locks exist. A transaction performs its actions
//! *sequentially*, so it waits on at most one object at a time — the
//! waits-for graph is functional and a cycle check is a simple chain
//! walk from the blocking holder.

use crate::hash::FastMap;
use crate::object::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::fmt;

/// Globally unique transaction identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted immediately (or was already held).
    Granted,
    /// Another transaction holds the lock; the requester was queued and
    /// must suspend until [`LockManager::release_all`] grants it.
    Waiting,
    /// Queueing the requester would close a waits-for cycle. The
    /// request was **not** queued; the caller must abort the requester
    /// (the model's equation (3): the requesting transaction is the one
    /// that deadlocks).
    Deadlock,
}

/// How deadlocks are resolved (the paper's §2: "in practice, most
/// systems use timeout" rather than exact cycle detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockMode {
    /// Walk the waits-for graph on every contended request and refuse
    /// cycle-closing waits ([`Acquire::Deadlock`]).
    #[default]
    Detect,
    /// Never inspect the waits-for graph: every contended request
    /// queues ([`Acquire::Waiting`]), and the *caller* aborts waiters
    /// whose wait exceeds its timeout bound. Cycles then dissolve when
    /// any member times out; innocent long waits are collateral aborts
    /// — exactly the trade real systems make.
    TimeoutOnly,
}

/// Deliberate, environment-gated lock-discipline bugs for oracle
/// mutation testing. Set `REPL_MUTATE=grant-held[:P]` to make every
/// `P`-th contended acquire succeed spuriously; the correctness oracles
/// (`repl-check`) must then observe non-serializable histories.
/// Production runs never set the variable, so the default is
/// [`Mutation::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Correct locking.
    #[default]
    None,
    /// Every `period`-th contended acquire is granted even though
    /// another transaction holds the lock — a ghost grant that breaks
    /// strict two-phase locking, producing lost updates the DSG oracle
    /// sees as rw/ww cycles.
    GrantHeld {
        /// Ghost-grant every this-many-th contended request (≥ 1).
        period: u64,
    },
    /// Every `period`-th 2PC decision append to a
    /// [`DecisionLog`](crate::wal::DecisionLog) is silently lost — a
    /// coordinator that acks a commit it never made durable. The
    /// decision-durability oracle must flag the run
    /// (`REPL_MUTATE=drop-decision[:P]`).
    DropDecision {
        /// Drop every this-many-th decision append (≥ 1).
        period: u64,
    },
}

impl Mutation {
    /// Parse a `REPL_MUTATE` value. Unknown or empty specs mean no
    /// mutation; a missing or unparsable period defaults to 4.
    pub fn parse(spec: &str) -> Mutation {
        let spec = spec.trim();
        if let Some(rest) = spec.strip_prefix("grant-held") {
            let period = rest
                .strip_prefix(':')
                .and_then(|p| p.parse::<u64>().ok())
                .unwrap_or(4)
                .max(1);
            return Mutation::GrantHeld { period };
        }
        if let Some(rest) = spec.strip_prefix("drop-decision") {
            let period = rest
                .strip_prefix(':')
                .and_then(|p| p.parse::<u64>().ok())
                .unwrap_or(4)
                .max(1);
            return Mutation::DropDecision { period };
        }
        Mutation::None
    }

    /// Read the mutation from the `REPL_MUTATE` environment variable
    /// (the oracle mutation-testing hook; unset means no mutation).
    pub fn from_env() -> Mutation {
        std::env::var("REPL_MUTATE")
            .map(|v| Mutation::parse(&v))
            .unwrap_or_default()
    }
}

#[derive(Debug, Default)]
struct LockState {
    holder: TxnId,
    waiters: VecDeque<TxnId>,
}

/// Reusable buffers for the waits-for walk. The walk runs on every
/// contended request in [`DeadlockMode::Detect`] — recycling its three
/// vectors keeps the hot path allocation-free after warm-up.
#[derive(Debug, Default)]
struct WalkScratch {
    stack: Vec<TxnId>,
    visited: Vec<TxnId>,
    /// (node, the transaction that waits for it) — first edge wins,
    /// so the recorded chain is always a real waits-for path.
    parent: Vec<(TxnId, TxnId)>,
}

/// Cap on recycled held-lock vectors: bounds pool memory while still
/// covering any realistic concurrent-transaction population.
const SPARE_HELD_CAP: usize = 256;

/// Strict exclusive locking with FIFO wait queues and pluggable
/// deadlock resolution: immediate waits-for cycle detection
/// ([`DeadlockMode::Detect`], the default) or caller-driven timeouts
/// ([`DeadlockMode::TimeoutOnly`]).
#[derive(Debug, Default)]
pub struct LockManager {
    /// Objects currently locked. All three tables use [`FastMap`]: they
    /// are consulted on every action of every transaction, keyed by
    /// internal ids, and never iterated for output.
    locks: FastMap<ObjectId, LockState>,
    /// All locks held by each live transaction (for release-all).
    held: FastMap<TxnId, Vec<ObjectId>>,
    /// The single object each blocked transaction is waiting on.
    waiting_on: FastMap<TxnId, ObjectId>,
    /// The waits-for cycle behind the most recent [`Acquire::Deadlock`]
    /// result, victim first (telemetry forensics).
    last_cycle: Vec<TxnId>,
    /// Deadlock resolution mode.
    mode: DeadlockMode,
    /// How many times the waits-for graph was searched (always zero in
    /// [`DeadlockMode::TimeoutOnly`]).
    cycle_checks: u64,
    /// Recycled held-lock vectors: popped when a transaction takes its
    /// first lock, pushed back by release-all.
    spare_held: Vec<Vec<ObjectId>>,
    /// Recycled waits-for walk buffers.
    scratch: WalkScratch,
    /// Deliberate bug injection (`REPL_MUTATE`), [`Mutation::None`]
    /// unless the environment opts in.
    mutation: Mutation,
    /// Contended-acquire counter driving the mutation period.
    mutation_ticks: u64,
}

impl LockManager {
    /// An empty lock manager with cycle detection. Reads `REPL_MUTATE`
    /// (see [`Mutation`]) so oracle mutation tests can inject bugs
    /// without touching engine call sites.
    pub fn new() -> Self {
        LockManager {
            mutation: Mutation::from_env(),
            ..Self::default()
        }
    }

    /// An empty lock manager with the given deadlock resolution mode
    /// (also honours `REPL_MUTATE`, see [`LockManager::new`]).
    pub fn with_mode(mode: DeadlockMode) -> Self {
        LockManager {
            mode,
            mutation: Mutation::from_env(),
            ..Self::default()
        }
    }

    /// The configured deadlock resolution mode.
    pub fn mode(&self) -> DeadlockMode {
        self.mode
    }

    /// How many waits-for graph searches have run. Stays zero in
    /// [`DeadlockMode::TimeoutOnly`] — the whole point of the timeout
    /// policy is never paying for the search.
    pub fn cycle_checks(&self) -> u64 {
        self.cycle_checks
    }

    /// Number of currently locked objects.
    pub fn locked_objects(&self) -> usize {
        self.locks.len()
    }

    /// Number of currently blocked transactions.
    pub fn blocked_transactions(&self) -> usize {
        self.waiting_on.len()
    }

    /// Whether `txn` currently holds the lock on `obj`.
    pub fn holds(&self, txn: TxnId, obj: ObjectId) -> bool {
        self.locks.get(&obj).is_some_and(|l| l.holder == txn)
    }

    /// Whether `txn` is blocked.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.waiting_on.contains_key(&txn)
    }

    /// The object `txn` is currently blocked on, if any. Lets a
    /// timeout-mode driver check that a scheduled timeout still refers
    /// to the same wait before aborting the victim.
    pub fn waiting_on(&self, txn: TxnId) -> Option<ObjectId> {
        self.waiting_on.get(&txn).copied()
    }

    /// Request an exclusive lock on `obj` for `txn`.
    ///
    /// Walks the waits-for chain before queueing: if suspending `txn`
    /// behind `obj`'s holder would close a cycle, returns
    /// [`Acquire::Deadlock`] without queueing.
    pub fn acquire(&mut self, txn: TxnId, obj: ObjectId) -> Acquire {
        debug_assert!(
            !self.waiting_on.contains_key(&txn),
            "{txn} requested a lock while already blocked"
        );
        match self.locks.entry(obj) {
            Entry::Vacant(v) => {
                v.insert(LockState {
                    holder: txn,
                    waiters: VecDeque::new(),
                });
                Self::record_held(&mut self.held, &mut self.spare_held, txn, obj);
                return Acquire::Granted;
            }
            Entry::Occupied(mut o) => {
                if o.get().holder == txn {
                    return Acquire::Granted;
                }
                if let Mutation::GrantHeld { period } = self.mutation {
                    self.mutation_ticks += 1;
                    if self.mutation_ticks.is_multiple_of(period) {
                        // Ghost grant: the recorded holder stays the
                        // original transaction, so its release works
                        // normally and the ghost's own release skips
                        // the object it never really held.
                        Self::record_held(&mut self.held, &mut self.spare_held, txn, obj);
                        return Acquire::Granted;
                    }
                }
                if self.mode == DeadlockMode::TimeoutOnly {
                    o.get_mut().waiters.push_back(txn);
                    self.waiting_on.insert(txn, obj);
                    return Acquire::Waiting;
                }
            }
        }
        // Detect mode, contended: the graph walk needs `&mut self`, so
        // the entry borrow ends here and the state is re-fetched after
        // the walk decides the request may queue.
        self.cycle_checks += 1;
        if self.would_deadlock(txn, obj) {
            return Acquire::Deadlock;
        }
        let state = self.locks.get_mut(&obj).expect("lock state vanished");
        state.waiters.push_back(txn);
        self.waiting_on.insert(txn, obj);
        Acquire::Waiting
    }

    /// Append `obj` to `txn`'s held list, seeding the list from the
    /// spare pool on first acquisition.
    fn record_held(
        held: &mut FastMap<TxnId, Vec<ObjectId>>,
        spare: &mut Vec<Vec<ObjectId>>,
        txn: TxnId,
        obj: ObjectId,
    ) {
        held.entry(txn)
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push(obj);
    }

    /// Would suspending `txn` behind `obj` close a waits-for cycle?
    ///
    /// With FIFO promotion a new waiter effectively waits for the
    /// current holder *and* every transaction already queued (each will
    /// hold the lock before the newcomer), so the search must traverse
    /// all of them, not just the holder chain. Depth-first search from
    /// the transactions `txn` would wait for; a path back to `txn` is a
    /// cycle. On detection the cycle is reconstructed from parent
    /// edges and stored for [`LockManager::last_deadlock_cycle`].
    fn would_deadlock(&mut self, txn: TxnId, obj: ObjectId) -> bool {
        let mut s = std::mem::take(&mut self.scratch);
        let found = self.walk_cycle(txn, obj, &mut s);
        self.scratch = s;
        found
    }

    /// The depth-first search behind [`Self::would_deadlock`],
    /// split out so the borrowed scratch buffers can be restored on
    /// every exit path.
    fn walk_cycle(&mut self, txn: TxnId, obj: ObjectId, s: &mut WalkScratch) -> bool {
        s.stack.clear();
        s.visited.clear();
        s.parent.clear();
        let push =
            |stack: &mut Vec<TxnId>, parent: &mut Vec<(TxnId, TxnId)>, node: TxnId, from: TxnId| {
                if !parent.iter().any(|(n, _)| *n == node) {
                    parent.push((node, from));
                }
                stack.push(node);
            };
        let seed = &self.locks[&obj];
        push(&mut s.stack, &mut s.parent, seed.holder, txn);
        for w in seed.waiters.iter().copied() {
            push(&mut s.stack, &mut s.parent, w, txn);
        }
        while let Some(current) = s.stack.pop() {
            if current == txn {
                // Walk parent edges back to the requester: each hop is
                // "X waits for Y", so reversing the tail yields the
                // cycle in waits-for order, victim first.
                self.last_cycle.clear();
                self.last_cycle.push(txn);
                let mut cur = txn;
                while let Some(&(_, from)) = s.parent.iter().find(|(n, _)| *n == cur) {
                    if from == txn {
                        break;
                    }
                    self.last_cycle.push(from);
                    cur = from;
                }
                self.last_cycle[1..].reverse();
                return true;
            }
            if s.visited.contains(&current) {
                continue;
            }
            s.visited.push(current);
            if let Some(next_obj) = self.waiting_on.get(&current) {
                // `current` waits for the holder and only the waiters
                // *ahead of it* in the FIFO queue — including later
                // waiters would manufacture false cycles.
                let state = &self.locks[next_obj];
                push(&mut s.stack, &mut s.parent, state.holder, current);
                for w in state.waiters.iter().copied().take_while(|w| *w != current) {
                    push(&mut s.stack, &mut s.parent, w, current);
                }
            }
        }
        false
    }

    /// The waits-for cycle behind the most recent
    /// [`Acquire::Deadlock`] result, victim first: element `i` waits
    /// for element `i + 1`, and the last element waits for the victim.
    /// Empty until the first deadlock is detected.
    pub fn last_deadlock_cycle(&self) -> &[TxnId] {
        &self.last_cycle
    }

    /// The transaction currently holding the lock on `obj`, if locked.
    pub fn holder_of(&self, obj: ObjectId) -> Option<TxnId> {
        self.locks.get(&obj).map(|l| l.holder)
    }

    /// Release every lock `txn` holds (commit or abort), promoting the
    /// next FIFO waiter on each object. Returns the `(transaction,
    /// object)` pairs that just acquired their lock so the driver can
    /// resume them.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, ObjectId)> {
        let mut granted = Vec::new();
        self.release_all_into(txn, &mut granted);
        granted
    }

    /// Allocation-free variant of [`Self::release_all`]: clears
    /// `granted` and fills it with the promoted `(transaction, object)`
    /// pairs. Engines pass a recycled scratch buffer so the
    /// commit/abort path allocates nothing; the released transaction's
    /// held-lock vector returns to the spare pool for the next txn.
    pub fn release_all_into(&mut self, txn: TxnId, granted: &mut Vec<(TxnId, ObjectId)>) {
        granted.clear();
        let Some(mut objs) = self.held.remove(&txn) else {
            return;
        };
        for obj in objs.drain(..) {
            let Some(state) = self.locks.get_mut(&obj) else {
                continue;
            };
            if state.holder != txn {
                continue;
            }
            match state.waiters.pop_front() {
                Some(next) => {
                    state.holder = next;
                    self.waiting_on.remove(&next);
                    Self::record_held(&mut self.held, &mut self.spare_held, next, obj);
                    granted.push((next, obj));
                }
                None => {
                    self.locks.remove(&obj);
                }
            }
        }
        if self.spare_held.len() < SPARE_HELD_CAP {
            self.spare_held.push(objs);
        }
    }

    /// Remove `txn` from the wait queue it sits in (used when an
    /// externally chosen victim aborts while blocked).
    pub fn cancel_wait(&mut self, txn: TxnId) {
        if let Some(obj) = self.waiting_on.remove(&txn) {
            if let Some(state) = self.locks.get_mut(&obj) {
                state.waiters.retain(|&w| w != txn);
            }
        }
    }

    /// The locks `txn` currently holds (empty slice if none).
    pub fn held_by(&self, txn: TxnId) -> &[ObjectId] {
        self.held.get(&txn).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TxnId = TxnId(1);
    const B: TxnId = TxnId(2);
    const C: TxnId = TxnId(3);
    const O1: ObjectId = ObjectId(1);
    const O2: ObjectId = ObjectId(2);
    const O3: ObjectId = ObjectId(3);

    #[test]
    fn grant_free_lock() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1), Acquire::Granted);
        assert!(lm.holds(A, O1));
        assert_eq!(lm.held_by(A), &[O1]);
    }

    #[test]
    fn reentrant_acquire_is_granted() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(A, O1), Acquire::Granted);
        // Not double-recorded.
        assert_eq!(lm.held_by(A).len(), 1);
    }

    #[test]
    fn second_requester_waits() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert!(lm.is_waiting(B));
        assert_eq!(lm.blocked_transactions(), 1);
    }

    #[test]
    fn release_promotes_fifo() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        lm.acquire(C, O1);
        let granted = lm.release_all(A);
        assert_eq!(granted, vec![(B, O1)]);
        assert!(lm.holds(B, O1));
        assert!(!lm.is_waiting(B));
        assert!(lm.is_waiting(C));
        let granted = lm.release_all(B);
        assert_eq!(granted, vec![(C, O1)]);
    }

    #[test]
    fn release_frees_uncontended_lock() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert!(lm.release_all(A).is_empty());
        assert_eq!(lm.locked_objects(), 0);
        assert_eq!(lm.acquire(B, O1), Acquire::Granted);
    }

    #[test]
    fn two_cycle_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting);
        // B requesting O1 would close A→O2(B) / B→O1(A).
        assert_eq!(lm.acquire(B, O1), Acquire::Deadlock);
        // B was not queued.
        assert!(!lm.is_waiting(B));
    }

    #[test]
    fn three_cycle_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(C, O3);
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting);
        assert_eq!(lm.acquire(B, O3), Acquire::Waiting);
        assert_eq!(lm.acquire(C, O1), Acquire::Deadlock);
    }

    #[test]
    fn chain_without_cycle_waits() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        assert_eq!(lm.acquire(C, O1), Acquire::Waiting); // C→A, A free: fine
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting); // A→B, B free: fine
    }

    #[test]
    fn victim_abort_releases_and_unblocks() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(A, O2);
        assert_eq!(lm.acquire(B, O1), Acquire::Deadlock);
        // B aborts: releases O2, which unblocks A.
        let granted = lm.release_all(B);
        assert_eq!(granted, vec![(A, O2)]);
        assert!(lm.holds(A, O2));
        assert!(!lm.is_waiting(A));
    }

    #[test]
    fn cancel_wait_removes_from_queue() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        lm.acquire(C, O1);
        lm.cancel_wait(B);
        assert!(!lm.is_waiting(B));
        let granted = lm.release_all(A);
        assert_eq!(granted, vec![(C, O1)]);
    }

    #[test]
    fn release_all_unknown_txn_is_noop() {
        let mut lm = LockManager::new();
        assert!(lm.release_all(TxnId(99)).is_empty());
    }

    #[test]
    fn deadlock_through_queued_waiter_detected() {
        // A holds O1. B waits on O1. C requests O1 (queued behind B) —
        // then B can only run after A releases, and if B ultimately
        // needs something C holds we have a cycle through the queue.
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(C, O2);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        // C queues behind B on O1: C waits for A and B.
        assert_eq!(lm.acquire(C, O1), Acquire::Waiting);
        // A commits; B now holds O1, C still queued behind B.
        lm.release_all(A);
        assert!(lm.holds(B, O1));
        // B requests O2 (held by C, who waits for B) → cycle.
        assert_eq!(lm.acquire(B, O2), Acquire::Deadlock);
    }

    #[test]
    fn later_waiter_does_not_create_false_cycle() {
        // A holds O1; B waits on O1; C queues after B on O1 and also
        // holds O2. B requesting O2 must NOT be a deadlock: B is ahead
        // of C, so C does not block B.
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(C, O2);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert_eq!(lm.acquire(C, O1), Acquire::Waiting);
        // B is blocked, so in the simulator it could not issue another
        // request — but verify the graph logic directly: a fresh txn D
        // queued ahead-of-nobody asking for O2 just waits.
        let d = TxnId(4);
        assert_eq!(lm.acquire(d, O2), Acquire::Waiting);
    }

    #[test]
    fn holder_of_reports_current_holder() {
        let mut lm = LockManager::new();
        assert_eq!(lm.holder_of(O1), None);
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        assert_eq!(lm.holder_of(O1), Some(A));
        lm.release_all(A);
        assert_eq!(lm.holder_of(O1), Some(B));
        lm.release_all(B);
        assert_eq!(lm.holder_of(O1), None);
    }

    #[test]
    fn two_cycle_reconstructed_victim_first() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(A, O2);
        assert!(lm.last_deadlock_cycle().is_empty());
        assert_eq!(lm.acquire(B, O1), Acquire::Deadlock);
        assert_eq!(lm.last_deadlock_cycle(), &[B, A]);
    }

    #[test]
    fn three_cycle_reconstructed_in_waits_for_order() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(C, O3);
        lm.acquire(A, O2);
        lm.acquire(B, O3);
        assert_eq!(lm.acquire(C, O1), Acquire::Deadlock);
        // C waits for A (O1), A waits for B (O2), B waits for C (O3).
        assert_eq!(lm.last_deadlock_cycle(), &[C, A, B]);
    }

    #[test]
    fn cycle_through_queued_waiter_includes_waiter() {
        // Same setup as deadlock_through_queued_waiter_detected: after
        // A commits, B holds O1 with C queued behind it, and C holds
        // O2. B requesting O2 closes B→C→B.
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(C, O2);
        lm.acquire(B, O1);
        lm.acquire(C, O1);
        lm.release_all(A);
        assert_eq!(lm.acquire(B, O2), Acquire::Deadlock);
        assert_eq!(lm.last_deadlock_cycle(), &[B, C]);
    }

    #[test]
    fn timeout_mode_queues_cycle_closing_waits() {
        let mut lm = LockManager::with_mode(DeadlockMode::TimeoutOnly);
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting);
        // Under detection this request is refused; under timeout it
        // queues and the cycle sits until a caller-side timeout fires.
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert!(lm.is_waiting(A));
        assert!(lm.is_waiting(B));
        assert_eq!(lm.cycle_checks(), 0, "timeout mode never walks the graph");
        // The caller picks B as the timeout victim: cancel its wait and
        // release its locks; A unblocks and the cycle dissolves.
        lm.cancel_wait(B);
        let granted = lm.release_all(B);
        assert_eq!(granted, vec![(A, O2)]);
        assert!(!lm.is_waiting(A));
    }

    #[test]
    fn detect_mode_counts_cycle_checks() {
        let mut lm = LockManager::new();
        assert_eq!(lm.mode(), DeadlockMode::Detect);
        lm.acquire(A, O1);
        assert_eq!(lm.cycle_checks(), 0, "uncontended grants skip the walk");
        lm.acquire(B, O1);
        assert_eq!(lm.cycle_checks(), 1);
        lm.acquire(C, O1);
        assert_eq!(lm.cycle_checks(), 2);
    }

    #[test]
    fn waiting_on_reports_blocking_object() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert_eq!(lm.waiting_on(A), None);
        lm.acquire(B, O1);
        assert_eq!(lm.waiting_on(B), Some(O1));
        lm.release_all(A);
        assert_eq!(lm.waiting_on(B), None);
    }

    #[test]
    fn release_all_into_clears_stale_contents() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        let mut out = vec![(C, O3)]; // stale garbage must be cleared
        lm.release_all_into(A, &mut out);
        assert_eq!(out, vec![(B, O1)]);
        lm.release_all_into(B, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn held_vectors_recycle_through_spare_pool() {
        let mut lm = LockManager::new();
        for round in 0..10 {
            let t = TxnId(100 + round);
            lm.acquire(t, O1);
            lm.acquire(t, O2);
            assert_eq!(lm.held_by(t), &[O1, O2]);
            assert!(lm.release_all(t).is_empty());
            assert_eq!(lm.locked_objects(), 0);
        }
        assert!(
            lm.spare_held.len() <= 1,
            "one txn at a time recycles a single vec, got {}",
            lm.spare_held.len()
        );
    }

    #[test]
    fn grant_held_mutation_ghost_grants_contended_requests() {
        let mut lm = LockManager {
            mutation: Mutation::GrantHeld { period: 1 },
            ..Default::default()
        };
        lm.acquire(A, O1);
        // Every contended request is ghost-granted under period 1.
        assert_eq!(lm.acquire(B, O1), Acquire::Granted);
        // The real holder is unchanged and releases normally…
        assert_eq!(lm.holder_of(O1), Some(A));
        assert!(lm.release_all(A).is_empty());
        // …and the ghost's release skips the lock it never truly held.
        assert!(lm.release_all(B).is_empty());
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn mutation_spec_parsing() {
        assert_eq!(Mutation::parse(""), Mutation::None);
        assert_eq!(Mutation::parse("nonsense"), Mutation::None);
        assert_eq!(
            Mutation::parse("grant-held"),
            Mutation::GrantHeld { period: 4 }
        );
        assert_eq!(
            Mutation::parse("grant-held:3"),
            Mutation::GrantHeld { period: 3 }
        );
        // Zero and garbage periods clamp/default rather than panic.
        assert_eq!(
            Mutation::parse("grant-held:0"),
            Mutation::GrantHeld { period: 1 }
        );
        assert_eq!(
            Mutation::parse("grant-held:x"),
            Mutation::GrantHeld { period: 4 }
        );
        assert_eq!(
            Mutation::parse("drop-decision"),
            Mutation::DropDecision { period: 4 }
        );
        assert_eq!(
            Mutation::parse("drop-decision:7"),
            Mutation::DropDecision { period: 7 }
        );
        assert_eq!(
            Mutation::parse("drop-decision:0"),
            Mutation::DropDecision { period: 1 }
        );
    }

    #[test]
    fn deadlock_after_queue_respects_waiters() {
        // A holds O1; B waits on O1; B holds O2; A requests O2 → cycle
        // through the *queued* B must still be found.
        let mut lm = LockManager::new();
        lm.acquire(B, O2);
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert_eq!(lm.acquire(A, O2), Acquire::Deadlock);
    }
}
