//! Exclusive lock manager with waits-for deadlock detection.
//!
//! The paper's model regulates concurrent execution with locking
//! (§3: "Locking detects potential anomalies and converts them to waits
//! or deadlocks"). Reads are ignored and every action is an update, so
//! only exclusive locks exist. A transaction performs its actions
//! *sequentially*, so it waits on at most one object at a time — the
//! waits-for graph is functional and a cycle check is a simple chain
//! walk from the blocking holder.

use crate::hash::FastMap;
use crate::object::ObjectId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Globally unique transaction identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted immediately (or was already held).
    Granted,
    /// Another transaction holds the lock; the requester was queued and
    /// must suspend until [`LockManager::release_all`] grants it.
    Waiting,
    /// Queueing the requester would close a waits-for cycle. The
    /// request was **not** queued; the caller must abort the requester
    /// (the model's equation (3): the requesting transaction is the one
    /// that deadlocks).
    Deadlock,
}

/// How deadlocks are resolved (the paper's §2: "in practice, most
/// systems use timeout" rather than exact cycle detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockMode {
    /// Walk the waits-for graph on every contended request and refuse
    /// cycle-closing waits ([`Acquire::Deadlock`]).
    #[default]
    Detect,
    /// Never inspect the waits-for graph: every contended request
    /// queues ([`Acquire::Waiting`]), and the *caller* aborts waiters
    /// whose wait exceeds its timeout bound. Cycles then dissolve when
    /// any member times out; innocent long waits are collateral aborts
    /// — exactly the trade real systems make.
    TimeoutOnly,
}

/// Deliberate, environment-gated lock-discipline bugs for oracle
/// mutation testing. Set `REPL_MUTATE=grant-held[:P]` to make every
/// `P`-th contended acquire succeed spuriously; the correctness oracles
/// (`repl-check`) must then observe non-serializable histories.
/// Production runs never set the variable, so the default is
/// [`Mutation::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Correct locking.
    #[default]
    None,
    /// Every `period`-th contended acquire is granted even though
    /// another transaction holds the lock — a ghost grant that breaks
    /// strict two-phase locking, producing lost updates the DSG oracle
    /// sees as rw/ww cycles.
    GrantHeld {
        /// Ghost-grant every this-many-th contended request (≥ 1).
        period: u64,
    },
    /// Every `period`-th 2PC decision append to a
    /// [`DecisionLog`](crate::wal::DecisionLog) is silently lost — a
    /// coordinator that acks a commit it never made durable. The
    /// decision-durability oracle must flag the run
    /// (`REPL_MUTATE=drop-decision[:P]`).
    DropDecision {
        /// Drop every this-many-th decision append (≥ 1).
        period: u64,
    },
}

impl Mutation {
    /// Parse a `REPL_MUTATE` value. Unknown or empty specs mean no
    /// mutation; a missing or unparsable period defaults to 4.
    pub fn parse(spec: &str) -> Mutation {
        let spec = spec.trim();
        if let Some(rest) = spec.strip_prefix("grant-held") {
            let period = rest
                .strip_prefix(':')
                .and_then(|p| p.parse::<u64>().ok())
                .unwrap_or(4)
                .max(1);
            return Mutation::GrantHeld { period };
        }
        if let Some(rest) = spec.strip_prefix("drop-decision") {
            let period = rest
                .strip_prefix(':')
                .and_then(|p| p.parse::<u64>().ok())
                .unwrap_or(4)
                .max(1);
            return Mutation::DropDecision { period };
        }
        Mutation::None
    }

    /// Read the mutation from the `REPL_MUTATE` environment variable
    /// (the oracle mutation-testing hook; unset means no mutation).
    pub fn from_env() -> Mutation {
        std::env::var("REPL_MUTATE")
            .map(|v| Mutation::parse(&v))
            .unwrap_or_default()
    }
}

/// Sentinel for "no holder" in the dense holder table. No slab ever
/// mints it: it would need tag 255 *and* the maximal generation *and*
/// the maximal slot simultaneously (see `slab`'s id layout), and the
/// engines' hand-rolled ids in tests are tiny. A debug assertion in
/// [`LockManager::acquire`] guards the invariant anyway.
const FREE: TxnId = TxnId(u64::MAX);

/// Reusable buffers for the waits-for walk. The walk runs on every
/// contended request in [`DeadlockMode::Detect`] — recycling its three
/// vectors keeps the hot path allocation-free after warm-up.
#[derive(Debug, Default)]
struct WalkScratch {
    stack: Vec<TxnId>,
    visited: Vec<TxnId>,
    /// (node, the transaction that waits for it) — first edge wins,
    /// so the recorded chain is always a real waits-for path.
    parent: Vec<(TxnId, TxnId)>,
}

/// Per-transaction state for one arena tag, indexed by slab slot.
///
/// Transaction ids are minted by `TxnSlab` as `| tag(8) | gen(24) |
/// slot(32) |` with slots reused densely, so per-transaction lookups
/// (held locks, blocked-on object) index a flat array by `(tag, slot)`
/// instead of hashing the full id — the second-hottest map traffic in a
/// run after the holder table itself. Each entry records the owning
/// [`TxnId`] (including its generation): a stale id whose slot was
/// recycled compares unequal and reads as absent, exactly like a hash
/// map miss, which the timeout drivers rely on when validating that a
/// scheduled lock timeout still refers to the same wait.
#[derive(Debug, Default)]
struct TagTable {
    /// `held[slot]` — the owner and the locks it holds; owner is
    /// [`FREE`] when the slot has no live lock-holding transaction.
    /// The `Vec` stays in place across slot reuse, so its capacity is
    /// recycled for the next generation without a spare pool.
    held: Vec<(TxnId, Vec<ObjectId>)>,
    /// `waiting[slot]` — the owner and the single object it is blocked
    /// on; owner is [`FREE`] when the slot's transaction is not
    /// blocked.
    waiting: Vec<(TxnId, ObjectId)>,
}

/// Strict exclusive locking with FIFO wait queues and pluggable
/// deadlock resolution: immediate waits-for cycle detection
/// ([`DeadlockMode::Detect`], the default) or caller-driven timeouts
/// ([`DeadlockMode::TimeoutOnly`]).
#[derive(Debug, Default)]
pub struct LockManager {
    /// Dense holder table indexed by `ObjectId`: [`FREE`] or the
    /// holding transaction. Object ids are minted densely from
    /// `0..db_size` everywhere in this codebase, so a flat array turns
    /// the per-action acquire/release — the hottest storage operation
    /// in a run — into one indexed load and store, no hashing. Grown
    /// on demand to the largest id ever locked.
    holders: Vec<TxnId>,
    /// One bit per holder slot: set iff the object has a wait queue in
    /// `queues`. Lets the uncontended release path skip the queue map
    /// entirely.
    waitbits: Vec<u64>,
    /// FIFO wait queues, present only for objects with waiters
    /// (contention is the rare case; the map stays tiny).
    queues: FastMap<ObjectId, VecDeque<TxnId>>,
    /// Number of currently held locks (telemetry).
    locked: usize,
    /// Dense per-transaction state (held locks, blocked-on object),
    /// indexed by arena tag then slab slot — see [`TagTable`].
    txns: Vec<TagTable>,
    /// Number of currently blocked transactions.
    blocked: usize,
    /// The waits-for cycle behind the most recent [`Acquire::Deadlock`]
    /// result, victim first (telemetry forensics).
    last_cycle: Vec<TxnId>,
    /// Deadlock resolution mode.
    mode: DeadlockMode,
    /// How many times the waits-for graph was searched (always zero in
    /// [`DeadlockMode::TimeoutOnly`]).
    cycle_checks: u64,
    /// Recycled waits-for walk buffers.
    scratch: WalkScratch,
    /// Deliberate bug injection (`REPL_MUTATE`), [`Mutation::None`]
    /// unless the environment opts in.
    mutation: Mutation,
    /// Contended-acquire counter driving the mutation period.
    mutation_ticks: u64,
}

impl LockManager {
    /// An empty lock manager with cycle detection. Reads `REPL_MUTATE`
    /// (see [`Mutation`]) so oracle mutation tests can inject bugs
    /// without touching engine call sites.
    pub fn new() -> Self {
        LockManager {
            mutation: Mutation::from_env(),
            ..Self::default()
        }
    }

    /// An empty lock manager with the given deadlock resolution mode
    /// (also honours `REPL_MUTATE`, see [`LockManager::new`]).
    pub fn with_mode(mode: DeadlockMode) -> Self {
        LockManager {
            mode,
            mutation: Mutation::from_env(),
            ..Self::default()
        }
    }

    /// The configured deadlock resolution mode.
    pub fn mode(&self) -> DeadlockMode {
        self.mode
    }

    /// How many waits-for graph searches have run. Stays zero in
    /// [`DeadlockMode::TimeoutOnly`] — the whole point of the timeout
    /// policy is never paying for the search.
    pub fn cycle_checks(&self) -> u64 {
        self.cycle_checks
    }

    /// Number of currently locked objects.
    pub fn locked_objects(&self) -> usize {
        self.locked
    }

    /// Number of currently blocked transactions.
    pub fn blocked_transactions(&self) -> usize {
        self.blocked
    }

    /// The arena tag of `txn` (high 8 bits of the id).
    #[inline]
    fn tag_of(txn: TxnId) -> usize {
        (txn.0 >> 56) as usize
    }

    /// The slab slot of `txn` (low 32 bits of the id).
    #[inline]
    fn slot_of(txn: TxnId) -> usize {
        txn.0 as u32 as usize
    }

    /// The object `txn` is blocked on, or `None` — including when the
    /// slot was recycled by a newer generation (owner id mismatch).
    #[inline]
    fn wait_entry(&self, txn: TxnId) -> Option<ObjectId> {
        let table = self.txns.get(Self::tag_of(txn))?;
        let &(owner, obj) = table.waiting.get(Self::slot_of(txn))?;
        (owner == txn).then_some(obj)
    }

    /// Record that `txn` is blocked on `obj`.
    fn set_waiting(&mut self, txn: TxnId, obj: ObjectId) {
        let (tag, slot) = (Self::tag_of(txn), Self::slot_of(txn));
        if tag >= self.txns.len() {
            self.txns.resize_with(tag + 1, TagTable::default);
        }
        let waiting = &mut self.txns[tag].waiting;
        if slot >= waiting.len() {
            waiting.resize(slot + 1, (FREE, ObjectId(0)));
        }
        waiting[slot] = (txn, obj);
        self.blocked += 1;
    }

    /// Clear `txn`'s blocked-on record, returning the object it was
    /// waiting on (no-op `None` if it was not blocked).
    fn clear_waiting(&mut self, txn: TxnId) -> Option<ObjectId> {
        let table = self.txns.get_mut(Self::tag_of(txn))?;
        let entry = table.waiting.get_mut(Self::slot_of(txn))?;
        if entry.0 != txn {
            return None;
        }
        let obj = entry.1;
        entry.0 = FREE;
        self.blocked -= 1;
        Some(obj)
    }

    /// The holder slot for `obj`, or [`FREE`] if never locked.
    #[inline]
    fn holder(&self, obj: ObjectId) -> TxnId {
        self.holders.get(obj.0 as usize).copied().unwrap_or(FREE)
    }

    /// Grow the dense tables to cover object index `o`.
    #[cold]
    fn grow(&mut self, o: usize) {
        self.holders.resize(o + 1, FREE);
        self.waitbits.resize(o / 64 + 1, 0);
    }

    /// Pre-size the dense holder tables for object ids `0..n`, so a
    /// run over a known database size never regrows them mid-stream.
    pub fn reserve_objects(&mut self, n: usize) {
        if n > self.holders.len() {
            self.grow(n - 1);
        }
    }

    /// Whether `txn` currently holds the lock on `obj`.
    pub fn holds(&self, txn: TxnId, obj: ObjectId) -> bool {
        txn != FREE && self.holder(obj) == txn
    }

    /// Whether `txn` is blocked.
    pub fn is_waiting(&self, txn: TxnId) -> bool {
        self.wait_entry(txn).is_some()
    }

    /// The object `txn` is currently blocked on, if any. Lets a
    /// timeout-mode driver check that a scheduled timeout still refers
    /// to the same wait before aborting the victim.
    pub fn waiting_on(&self, txn: TxnId) -> Option<ObjectId> {
        self.wait_entry(txn)
    }

    /// Request an exclusive lock on `obj` for `txn`.
    ///
    /// Walks the waits-for chain before queueing: if suspending `txn`
    /// behind `obj`'s holder would close a cycle, returns
    /// [`Acquire::Deadlock`] without queueing.
    pub fn acquire(&mut self, txn: TxnId, obj: ObjectId) -> Acquire {
        debug_assert!(txn != FREE, "the sentinel id cannot take locks");
        debug_assert!(
            !self.is_waiting(txn),
            "{txn} requested a lock while already blocked"
        );
        let o = obj.0 as usize;
        if o >= self.holders.len() {
            self.grow(o);
        }
        let holder = self.holders[o];
        if holder == FREE {
            self.holders[o] = txn;
            self.locked += 1;
            self.record_held(txn, obj);
            return Acquire::Granted;
        }
        if holder == txn {
            return Acquire::Granted;
        }
        if let Mutation::GrantHeld { period } = self.mutation {
            self.mutation_ticks += 1;
            if self.mutation_ticks.is_multiple_of(period) {
                // Ghost grant: the recorded holder stays the
                // original transaction, so its release works
                // normally and the ghost's own release skips
                // the object it never really held.
                self.record_held(txn, obj);
                return Acquire::Granted;
            }
        }
        if self.mode == DeadlockMode::Detect {
            self.cycle_checks += 1;
            if self.would_deadlock(txn, obj) {
                return Acquire::Deadlock;
            }
        }
        self.queues.entry(obj).or_default().push_back(txn);
        self.waitbits[o / 64] |= 1u64 << (o % 64);
        self.set_waiting(txn, obj);
        Acquire::Waiting
    }

    /// Append `obj` to `txn`'s held list, claiming the slot's entry on
    /// first acquisition. A slot recycled by the slab reuses the old
    /// generation's vector capacity (every release empties it first).
    fn record_held(&mut self, txn: TxnId, obj: ObjectId) {
        let (tag, slot) = (Self::tag_of(txn), Self::slot_of(txn));
        if tag >= self.txns.len() {
            self.txns.resize_with(tag + 1, TagTable::default);
        }
        let held = &mut self.txns[tag].held;
        if slot >= held.len() {
            held.resize_with(slot + 1, || (FREE, Vec::new()));
        }
        let entry = &mut held[slot];
        if entry.0 != txn {
            debug_assert!(
                entry.0 == FREE || entry.1.is_empty(),
                "slot recycled while the previous generation held locks"
            );
            entry.0 = txn;
            entry.1.clear();
        }
        entry.1.push(obj);
    }

    /// Would suspending `txn` behind `obj` close a waits-for cycle?
    ///
    /// With FIFO promotion a new waiter effectively waits for the
    /// current holder *and* every transaction already queued (each will
    /// hold the lock before the newcomer), so the search must traverse
    /// all of them, not just the holder chain. Depth-first search from
    /// the transactions `txn` would wait for; a path back to `txn` is a
    /// cycle. On detection the cycle is reconstructed from parent
    /// edges and stored for [`LockManager::last_deadlock_cycle`].
    fn would_deadlock(&mut self, txn: TxnId, obj: ObjectId) -> bool {
        let mut s = std::mem::take(&mut self.scratch);
        let found = self.walk_cycle(txn, obj, &mut s);
        self.scratch = s;
        found
    }

    /// The depth-first search behind [`Self::would_deadlock`],
    /// split out so the borrowed scratch buffers can be restored on
    /// every exit path.
    fn walk_cycle(&mut self, txn: TxnId, obj: ObjectId, s: &mut WalkScratch) -> bool {
        s.stack.clear();
        s.visited.clear();
        s.parent.clear();
        let push =
            |stack: &mut Vec<TxnId>, parent: &mut Vec<(TxnId, TxnId)>, node: TxnId, from: TxnId| {
                if !parent.iter().any(|(n, _)| *n == node) {
                    parent.push((node, from));
                }
                stack.push(node);
            };
        push(&mut s.stack, &mut s.parent, self.holder(obj), txn);
        if let Some(q) = self.queues.get(&obj) {
            for w in q.iter().copied() {
                push(&mut s.stack, &mut s.parent, w, txn);
            }
        }
        while let Some(current) = s.stack.pop() {
            if current == txn {
                // Walk parent edges back to the requester: each hop is
                // "X waits for Y", so reversing the tail yields the
                // cycle in waits-for order, victim first.
                self.last_cycle.clear();
                self.last_cycle.push(txn);
                let mut cur = txn;
                while let Some(&(_, from)) = s.parent.iter().find(|(n, _)| *n == cur) {
                    if from == txn {
                        break;
                    }
                    self.last_cycle.push(from);
                    cur = from;
                }
                self.last_cycle[1..].reverse();
                return true;
            }
            if s.visited.contains(&current) {
                continue;
            }
            s.visited.push(current);
            if let Some(next_obj) = self.wait_entry(current) {
                // `current` waits for the holder and only the waiters
                // *ahead of it* in the FIFO queue — including later
                // waiters would manufacture false cycles.
                push(&mut s.stack, &mut s.parent, self.holder(next_obj), current);
                if let Some(q) = self.queues.get(&next_obj) {
                    for w in q.iter().copied().take_while(|w| *w != current) {
                        push(&mut s.stack, &mut s.parent, w, current);
                    }
                }
            }
        }
        false
    }

    /// The waits-for cycle behind the most recent
    /// [`Acquire::Deadlock`] result, victim first: element `i` waits
    /// for element `i + 1`, and the last element waits for the victim.
    /// Empty until the first deadlock is detected.
    pub fn last_deadlock_cycle(&self) -> &[TxnId] {
        &self.last_cycle
    }

    /// The transaction currently holding the lock on `obj`, if locked.
    pub fn holder_of(&self, obj: ObjectId) -> Option<TxnId> {
        let h = self.holder(obj);
        (h != FREE).then_some(h)
    }

    /// Release every lock `txn` holds (commit or abort), promoting the
    /// next FIFO waiter on each object. Returns the `(transaction,
    /// object)` pairs that just acquired their lock so the driver can
    /// resume them.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, ObjectId)> {
        let mut granted = Vec::new();
        self.release_all_into(txn, &mut granted);
        granted
    }

    /// Allocation-free variant of [`Self::release_all`]: clears
    /// `granted` and fills it with the promoted `(transaction, object)`
    /// pairs. Engines pass a recycled scratch buffer so the
    /// commit/abort path allocates nothing; the released transaction's
    /// held-lock vector returns to the spare pool for the next txn.
    pub fn release_all_into(&mut self, txn: TxnId, granted: &mut Vec<(TxnId, ObjectId)>) {
        granted.clear();
        let (tag, slot) = (Self::tag_of(txn), Self::slot_of(txn));
        let Some(entry) = self.txns.get_mut(tag).and_then(|t| t.held.get_mut(slot)) else {
            return;
        };
        if entry.0 != txn {
            return;
        }
        entry.0 = FREE;
        // Detach the held list so the loop can borrow `self` freely;
        // its capacity is handed back to the slot afterwards.
        let mut objs = std::mem::take(&mut entry.1);
        for obj in objs.drain(..) {
            let o = obj.0 as usize;
            // A ghost grant (mutation) records a held lock the ghost
            // never really took — skip anything `txn` does not hold.
            if self.holders[o] != txn {
                continue;
            }
            let (w, b) = (o / 64, 1u64 << (o % 64));
            if self.waitbits[w] & b == 0 {
                self.holders[o] = FREE;
                self.locked -= 1;
                continue;
            }
            let q = self.queues.get_mut(&obj).expect("waiter bit set");
            let next = q.pop_front().expect("waiter bit set");
            if q.is_empty() {
                self.queues.remove(&obj);
                self.waitbits[w] &= !b;
            }
            self.holders[o] = next;
            self.clear_waiting(next);
            self.record_held(next, obj);
            granted.push((next, obj));
        }
        self.txns[tag].held[slot].1 = objs;
    }

    /// Remove `txn` from the wait queue it sits in (used when an
    /// externally chosen victim aborts while blocked).
    pub fn cancel_wait(&mut self, txn: TxnId) {
        if let Some(obj) = self.clear_waiting(txn) {
            if let Some(q) = self.queues.get_mut(&obj) {
                q.retain(|&w| w != txn);
                if q.is_empty() {
                    self.queues.remove(&obj);
                    let o = obj.0 as usize;
                    self.waitbits[o / 64] &= !(1u64 << (o % 64));
                }
            }
        }
    }

    /// The locks `txn` currently holds (empty slice if none).
    pub fn held_by(&self, txn: TxnId) -> &[ObjectId] {
        self.txns
            .get(Self::tag_of(txn))
            .and_then(|t| t.held.get(Self::slot_of(txn)))
            .filter(|entry| entry.0 == txn)
            .map_or(&[], |entry| entry.1.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TxnId = TxnId(1);
    const B: TxnId = TxnId(2);
    const C: TxnId = TxnId(3);
    const O1: ObjectId = ObjectId(1);
    const O2: ObjectId = ObjectId(2);
    const O3: ObjectId = ObjectId(3);

    #[test]
    fn grant_free_lock() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1), Acquire::Granted);
        assert!(lm.holds(A, O1));
        assert_eq!(lm.held_by(A), &[O1]);
    }

    #[test]
    fn reentrant_acquire_is_granted() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(A, O1), Acquire::Granted);
        // Not double-recorded.
        assert_eq!(lm.held_by(A).len(), 1);
    }

    #[test]
    fn second_requester_waits() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert!(lm.is_waiting(B));
        assert_eq!(lm.blocked_transactions(), 1);
    }

    #[test]
    fn release_promotes_fifo() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        lm.acquire(C, O1);
        let granted = lm.release_all(A);
        assert_eq!(granted, vec![(B, O1)]);
        assert!(lm.holds(B, O1));
        assert!(!lm.is_waiting(B));
        assert!(lm.is_waiting(C));
        let granted = lm.release_all(B);
        assert_eq!(granted, vec![(C, O1)]);
    }

    #[test]
    fn release_frees_uncontended_lock() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert!(lm.release_all(A).is_empty());
        assert_eq!(lm.locked_objects(), 0);
        assert_eq!(lm.acquire(B, O1), Acquire::Granted);
    }

    #[test]
    fn two_cycle_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting);
        // B requesting O1 would close A→O2(B) / B→O1(A).
        assert_eq!(lm.acquire(B, O1), Acquire::Deadlock);
        // B was not queued.
        assert!(!lm.is_waiting(B));
    }

    #[test]
    fn three_cycle_deadlock_detected() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(C, O3);
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting);
        assert_eq!(lm.acquire(B, O3), Acquire::Waiting);
        assert_eq!(lm.acquire(C, O1), Acquire::Deadlock);
    }

    #[test]
    fn chain_without_cycle_waits() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        assert_eq!(lm.acquire(C, O1), Acquire::Waiting); // C→A, A free: fine
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting); // A→B, B free: fine
    }

    #[test]
    fn victim_abort_releases_and_unblocks() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(A, O2);
        assert_eq!(lm.acquire(B, O1), Acquire::Deadlock);
        // B aborts: releases O2, which unblocks A.
        let granted = lm.release_all(B);
        assert_eq!(granted, vec![(A, O2)]);
        assert!(lm.holds(A, O2));
        assert!(!lm.is_waiting(A));
    }

    #[test]
    fn cancel_wait_removes_from_queue() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        lm.acquire(C, O1);
        lm.cancel_wait(B);
        assert!(!lm.is_waiting(B));
        let granted = lm.release_all(A);
        assert_eq!(granted, vec![(C, O1)]);
    }

    #[test]
    fn release_all_unknown_txn_is_noop() {
        let mut lm = LockManager::new();
        assert!(lm.release_all(TxnId(99)).is_empty());
    }

    #[test]
    fn deadlock_through_queued_waiter_detected() {
        // A holds O1. B waits on O1. C requests O1 (queued behind B) —
        // then B can only run after A releases, and if B ultimately
        // needs something C holds we have a cycle through the queue.
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(C, O2);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        // C queues behind B on O1: C waits for A and B.
        assert_eq!(lm.acquire(C, O1), Acquire::Waiting);
        // A commits; B now holds O1, C still queued behind B.
        lm.release_all(A);
        assert!(lm.holds(B, O1));
        // B requests O2 (held by C, who waits for B) → cycle.
        assert_eq!(lm.acquire(B, O2), Acquire::Deadlock);
    }

    #[test]
    fn later_waiter_does_not_create_false_cycle() {
        // A holds O1; B waits on O1; C queues after B on O1 and also
        // holds O2. B requesting O2 must NOT be a deadlock: B is ahead
        // of C, so C does not block B.
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(C, O2);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert_eq!(lm.acquire(C, O1), Acquire::Waiting);
        // B is blocked, so in the simulator it could not issue another
        // request — but verify the graph logic directly: a fresh txn D
        // queued ahead-of-nobody asking for O2 just waits.
        let d = TxnId(4);
        assert_eq!(lm.acquire(d, O2), Acquire::Waiting);
    }

    #[test]
    fn holder_of_reports_current_holder() {
        let mut lm = LockManager::new();
        assert_eq!(lm.holder_of(O1), None);
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        assert_eq!(lm.holder_of(O1), Some(A));
        lm.release_all(A);
        assert_eq!(lm.holder_of(O1), Some(B));
        lm.release_all(B);
        assert_eq!(lm.holder_of(O1), None);
    }

    #[test]
    fn two_cycle_reconstructed_victim_first() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(A, O2);
        assert!(lm.last_deadlock_cycle().is_empty());
        assert_eq!(lm.acquire(B, O1), Acquire::Deadlock);
        assert_eq!(lm.last_deadlock_cycle(), &[B, A]);
    }

    #[test]
    fn three_cycle_reconstructed_in_waits_for_order() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        lm.acquire(C, O3);
        lm.acquire(A, O2);
        lm.acquire(B, O3);
        assert_eq!(lm.acquire(C, O1), Acquire::Deadlock);
        // C waits for A (O1), A waits for B (O2), B waits for C (O3).
        assert_eq!(lm.last_deadlock_cycle(), &[C, A, B]);
    }

    #[test]
    fn cycle_through_queued_waiter_includes_waiter() {
        // Same setup as deadlock_through_queued_waiter_detected: after
        // A commits, B holds O1 with C queued behind it, and C holds
        // O2. B requesting O2 closes B→C→B.
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(C, O2);
        lm.acquire(B, O1);
        lm.acquire(C, O1);
        lm.release_all(A);
        assert_eq!(lm.acquire(B, O2), Acquire::Deadlock);
        assert_eq!(lm.last_deadlock_cycle(), &[B, C]);
    }

    #[test]
    fn timeout_mode_queues_cycle_closing_waits() {
        let mut lm = LockManager::with_mode(DeadlockMode::TimeoutOnly);
        lm.acquire(A, O1);
        lm.acquire(B, O2);
        assert_eq!(lm.acquire(A, O2), Acquire::Waiting);
        // Under detection this request is refused; under timeout it
        // queues and the cycle sits until a caller-side timeout fires.
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert!(lm.is_waiting(A));
        assert!(lm.is_waiting(B));
        assert_eq!(lm.cycle_checks(), 0, "timeout mode never walks the graph");
        // The caller picks B as the timeout victim: cancel its wait and
        // release its locks; A unblocks and the cycle dissolves.
        lm.cancel_wait(B);
        let granted = lm.release_all(B);
        assert_eq!(granted, vec![(A, O2)]);
        assert!(!lm.is_waiting(A));
    }

    #[test]
    fn detect_mode_counts_cycle_checks() {
        let mut lm = LockManager::new();
        assert_eq!(lm.mode(), DeadlockMode::Detect);
        lm.acquire(A, O1);
        assert_eq!(lm.cycle_checks(), 0, "uncontended grants skip the walk");
        lm.acquire(B, O1);
        assert_eq!(lm.cycle_checks(), 1);
        lm.acquire(C, O1);
        assert_eq!(lm.cycle_checks(), 2);
    }

    #[test]
    fn waiting_on_reports_blocking_object() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        assert_eq!(lm.waiting_on(A), None);
        lm.acquire(B, O1);
        assert_eq!(lm.waiting_on(B), Some(O1));
        lm.release_all(A);
        assert_eq!(lm.waiting_on(B), None);
    }

    #[test]
    fn release_all_into_clears_stale_contents() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1);
        lm.acquire(B, O1);
        let mut out = vec![(C, O3)]; // stale garbage must be cleared
        lm.release_all_into(A, &mut out);
        assert_eq!(out, vec![(B, O1)]);
        lm.release_all_into(B, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn held_slot_reuse_across_generations() {
        // Same slot (low 32 bits), bumped generation (bits 32..56):
        // the recycled slot must serve the new id and reject the old.
        let mut lm = LockManager::new();
        let slot = 7u64;
        for generation in 0..10u64 {
            let t = TxnId((generation << 32) | slot);
            lm.acquire(t, O1);
            lm.acquire(t, O2);
            assert_eq!(lm.held_by(t), &[O1, O2]);
            assert!(lm.release_all(t).is_empty());
            assert_eq!(lm.locked_objects(), 0);
            assert!(lm.held_by(t).is_empty());
        }
        // A stale id from an earlier generation reads as holding
        // nothing even while the current generation holds locks.
        let current = TxnId((10 << 32) | slot);
        let stale = TxnId(slot);
        lm.acquire(current, O1);
        assert!(lm.held_by(stale).is_empty());
        assert!(!lm.holds(stale, O1));
    }

    #[test]
    fn stale_generation_wait_queries_read_absent() {
        // A recycled slot's wait entry must not answer for the previous
        // generation — the timeout drivers validate a scheduled timeout
        // against `waiting_on` before aborting the victim.
        let mut lm = LockManager::new();
        let old = TxnId(5);
        let new = TxnId((1 << 32) | 5);
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(old, O1), Acquire::Waiting);
        lm.cancel_wait(old);
        assert_eq!(lm.acquire(new, O1), Acquire::Waiting);
        assert_eq!(lm.waiting_on(old), None);
        assert_eq!(lm.waiting_on(new), Some(O1));
        assert!(!lm.is_waiting(old));
        assert_eq!(lm.blocked_transactions(), 1);
    }

    #[test]
    fn grant_held_mutation_ghost_grants_contended_requests() {
        let mut lm = LockManager {
            mutation: Mutation::GrantHeld { period: 1 },
            ..Default::default()
        };
        lm.acquire(A, O1);
        // Every contended request is ghost-granted under period 1.
        assert_eq!(lm.acquire(B, O1), Acquire::Granted);
        // The real holder is unchanged and releases normally…
        assert_eq!(lm.holder_of(O1), Some(A));
        assert!(lm.release_all(A).is_empty());
        // …and the ghost's release skips the lock it never truly held.
        assert!(lm.release_all(B).is_empty());
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn mutation_spec_parsing() {
        assert_eq!(Mutation::parse(""), Mutation::None);
        assert_eq!(Mutation::parse("nonsense"), Mutation::None);
        assert_eq!(
            Mutation::parse("grant-held"),
            Mutation::GrantHeld { period: 4 }
        );
        assert_eq!(
            Mutation::parse("grant-held:3"),
            Mutation::GrantHeld { period: 3 }
        );
        // Zero and garbage periods clamp/default rather than panic.
        assert_eq!(
            Mutation::parse("grant-held:0"),
            Mutation::GrantHeld { period: 1 }
        );
        assert_eq!(
            Mutation::parse("grant-held:x"),
            Mutation::GrantHeld { period: 4 }
        );
        assert_eq!(
            Mutation::parse("drop-decision"),
            Mutation::DropDecision { period: 4 }
        );
        assert_eq!(
            Mutation::parse("drop-decision:7"),
            Mutation::DropDecision { period: 7 }
        );
        assert_eq!(
            Mutation::parse("drop-decision:0"),
            Mutation::DropDecision { period: 1 }
        );
    }

    #[test]
    fn deadlock_after_queue_respects_waiters() {
        // A holds O1; B waits on O1; B holds O2; A requests O2 → cycle
        // through the *queued* B must still be found.
        let mut lm = LockManager::new();
        lm.acquire(B, O2);
        lm.acquire(A, O1);
        assert_eq!(lm.acquire(B, O1), Acquire::Waiting);
        assert_eq!(lm.acquire(A, O2), Acquire::Deadlock);
    }
}
