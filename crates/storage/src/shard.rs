//! Sharded keyspace with partial replication: a deterministic
//! object→shard assignment plus a shard→replica-set placement with a
//! configurable replication factor (per Sutra & Shapiro,
//! *Fault-Tolerant Partial Replication in Large-Scale Database
//! Systems*).
//!
//! Every node hosts only the shards whose replica set contains it, so
//! per-node replication work scales with `rf`, not `Nodes` — the
//! refactor that lets the paper's Nodes³ sweeps run into the hundreds.
//! With `rf == Nodes` every replica set is the full cluster in node
//! order, so a full-replication run through the map is byte-identical
//! to the unsharded code path (the established `--jobs`/`--batch`
//! invariance pattern).

use crate::object::{NodeId, ObjectId};

/// Deterministic shard layout: `shard_of(o) = o mod shards`, and shard
/// `s` is replicated at nodes `{(s + i) mod nodes : i < rf}` (sorted).
/// Shard `s`'s *owner* — the coordinator for cross-shard work — is
/// `s mod nodes`, always a member of its replica set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
    nodes: u32,
    rf: u32,
    /// Per-shard replica sets, each sorted ascending.
    replica_sets: Vec<Vec<NodeId>>,
    /// Per-node sorted list of hosted shards.
    hosted: Vec<Vec<u32>>,
    /// Per-node shard membership bitset (`shards` bits each), for O(1)
    /// `hosts` and O(words) `shares_any`.
    bits: Vec<Vec<u64>>,
    /// `rank[node * shards + s]` = index of `s` in `hosted[node]`, or
    /// `u32::MAX` when the node does not host `s`.
    rank: Vec<u32>,
    /// Fan-out signature groups (see [`ShardMap::fanout_group`]):
    /// `fanout_group[origin * nodes + dest]` = the dest's group id
    /// within `origin`'s fan-out, or `u32::MAX` when the pair shares
    /// no shard (or `dest == origin`).
    fanout_group: Vec<u32>,
    /// Per-origin offsets into `fanout_sigs`, in *groups* (length
    /// `nodes + 1`): origin `o` owns group signatures
    /// `fanout_base[o]..fanout_base[o + 1]`.
    fanout_base: Vec<u32>,
    /// Group signature bitsets, `words_per_sig` words each: the shard
    /// intersection every member of the group shares with the origin.
    fanout_sigs: Vec<u64>,
    /// Master fan-out groups (see [`ShardMap::host_group`]):
    /// `host_group[dest]` = group id keyed by the dest's *entire*
    /// hosted set — the signature when the sender hosts every shard —
    /// or `u32::MAX` for a node hosting nothing.
    host_group: Vec<u32>,
    /// Signature bitsets for the master fan-out groups.
    host_sigs: Vec<u64>,
    words_per_sig: usize,
    /// Strength-reduced divider for `shards` — `shard_of` runs on
    /// every filter test and sampler draw.
    shard_div: crate::div::FastDivMod,
    /// Per-node divider by `hosted[n].len()` (1 for nodes hosting
    /// nothing, whose mapping is never consulted), for `nth_hosted`.
    hosted_div: Vec<crate::div::FastDivMod>,
}

impl ShardMap {
    /// Build the layout for `shards` shards over `nodes` nodes at
    /// replication factor `rf` (clamped to `nodes`; `rf == 0` means
    /// full replication). Panics if `shards` or `nodes` is zero.
    pub fn new(shards: u32, nodes: u32, rf: u32) -> Self {
        assert!(shards > 0, "shard map needs at least one shard");
        assert!(nodes > 0, "shard map needs at least one node");
        let rf = if rf == 0 { nodes } else { rf.min(nodes) };
        let words = (shards as usize).div_ceil(64);
        let mut replica_sets = Vec::with_capacity(shards as usize);
        let mut hosted = vec![Vec::new(); nodes as usize];
        let mut bits = vec![vec![0u64; words]; nodes as usize];
        for s in 0..shards {
            let mut set: Vec<NodeId> = (0..rf).map(|i| NodeId((s + i) % nodes)).collect();
            set.sort_unstable();
            set.dedup();
            for &n in &set {
                hosted[n.0 as usize].push(s);
                bits[n.0 as usize][(s / 64) as usize] |= 1u64 << (s % 64);
            }
            replica_sets.push(set);
        }
        let mut rank = vec![u32::MAX; nodes as usize * shards as usize];
        for (n, shards_of_n) in hosted.iter().enumerate() {
            for (r, &s) in shards_of_n.iter().enumerate() {
                rank[n * shards as usize + s as usize] = r as u32;
            }
        }
        // Precompute the fan-out signature groups. Membership never
        // changes during a run, so this happens exactly once; engines
        // then filter each propagated record once per *distinct
        // signature* instead of once per destination.
        let mut fanout_group = vec![u32::MAX; nodes as usize * nodes as usize];
        let mut fanout_base = Vec::with_capacity(nodes as usize + 1);
        let mut fanout_sigs = Vec::new();
        let mut sig_scratch = vec![0u64; words];
        let mut seen: std::collections::HashMap<Vec<u64>, u32> = std::collections::HashMap::new();
        fanout_base.push(0);
        for origin in 0..nodes as usize {
            seen.clear();
            let base_groups = fanout_sigs.len() / words;
            for dest in 0..nodes as usize {
                if dest == origin {
                    continue;
                }
                let mut any = 0u64;
                for (w, (&x, &y)) in bits[origin].iter().zip(&bits[dest]).enumerate() {
                    sig_scratch[w] = x & y;
                    any |= x & y;
                }
                if any == 0 {
                    continue;
                }
                // Group ids are assigned in ascending-destination
                // discovery order, so they are deterministic.
                let next = (fanout_sigs.len() / words - base_groups) as u32;
                let id = *seen.entry(sig_scratch.clone()).or_insert_with(|| {
                    fanout_sigs.extend_from_slice(&sig_scratch);
                    next
                });
                fanout_group[origin * nodes as usize + dest] = id;
            }
            fanout_base.push((fanout_sigs.len() / words) as u32);
        }
        // Master fan-out: the sender hosts everything, so a dest's
        // signature is its entire hosted set.
        let mut host_group = vec![u32::MAX; nodes as usize];
        let mut host_sigs = Vec::new();
        seen.clear();
        for dest in 0..nodes as usize {
            if bits[dest].iter().all(|&w| w == 0) {
                continue;
            }
            let next = (host_sigs.len() / words) as u32;
            host_group[dest] = *seen.entry(bits[dest].clone()).or_insert_with(|| {
                host_sigs.extend_from_slice(&bits[dest]);
                next
            });
        }
        let shard_div = crate::div::FastDivMod::new(u64::from(shards));
        let hosted_div = hosted
            .iter()
            .map(|h| crate::div::FastDivMod::new(h.len().max(1) as u64))
            .collect();
        ShardMap {
            shards,
            nodes,
            rf,
            replica_sets,
            hosted,
            bits,
            rank,
            fanout_group,
            fanout_base,
            fanout_sigs,
            host_group,
            host_sigs,
            words_per_sig: words,
            shard_div,
            hosted_div,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Effective replication factor.
    pub fn rf(&self) -> u32 {
        self.rf
    }

    /// Whether every node hosts every shard (full replication): the
    /// layout changes nothing and engines keep their unsharded paths.
    pub fn is_full(&self) -> bool {
        self.rf == self.nodes
    }

    /// The shard an object belongs to.
    #[inline]
    pub fn shard_of(&self, id: ObjectId) -> u32 {
        self.shard_div.rem(id.0) as u32
    }

    /// Shard `s`'s replica set, sorted ascending. With `rf == nodes`
    /// this is exactly `0..nodes` for every shard.
    pub fn replicas(&self, shard: u32) -> &[NodeId] {
        &self.replica_sets[shard as usize]
    }

    /// Shard `s`'s owner — the coordinator node for cross-shard
    /// transactions touching `s`. Always a member of `replicas(s)`.
    #[inline]
    pub fn owner(&self, shard: u32) -> NodeId {
        NodeId(shard % self.nodes)
    }

    /// Whether `node` hosts `shard` (is in its replica set).
    #[inline]
    pub fn hosts(&self, node: NodeId, shard: u32) -> bool {
        self.bits[node.0 as usize][(shard / 64) as usize] & (1u64 << (shard % 64)) != 0
    }

    /// Whether `node` hosts the shard `object` belongs to.
    #[inline]
    pub fn hosts_object(&self, node: NodeId, object: ObjectId) -> bool {
        self.hosts(node, self.shard_of(object))
    }

    /// The shards `node` hosts, sorted ascending.
    pub fn hosted_shards(&self, node: NodeId) -> &[u32] {
        &self.hosted[node.0 as usize]
    }

    /// Whether two nodes co-host at least one shard (i.e. `a` ever has
    /// replica traffic for `b`). Propagation skips pairs that share
    /// nothing.
    pub fn shares_any(&self, a: NodeId, b: NodeId) -> bool {
        self.bits[a.0 as usize]
            .iter()
            .zip(&self.bits[b.0 as usize])
            .any(|(x, y)| x & y != 0)
    }

    /// Fan-out signature group of `dest` within `origin`'s
    /// propagation, or `None` when the pair shares no shard (including
    /// `dest == origin`) and the channel carries no replica traffic.
    ///
    /// Two destinations are in the same group exactly when they host
    /// the *same intersection* of the origin's shards, so a record
    /// filtered for one member is the record for every member. Group
    /// ids are dense (`0..fanout_groups(origin)`) and assigned in
    /// ascending destination order — deterministic, like everything
    /// else in the layout.
    #[inline]
    pub fn fanout_group(&self, origin: NodeId, dest: NodeId) -> Option<u32> {
        let g = self.fanout_group[origin.0 as usize * self.nodes as usize + dest.0 as usize];
        (g != u32::MAX).then_some(g)
    }

    /// Number of distinct fan-out signature groups for `origin` — the
    /// number of filter passes a propagation actually pays, versus
    /// `nodes - 1` destinations.
    #[inline]
    pub fn fanout_groups(&self, origin: NodeId) -> usize {
        (self.fanout_base[origin.0 as usize + 1] - self.fanout_base[origin.0 as usize]) as usize
    }

    /// Whether `origin`'s fan-out group `group` hosts `object` — the
    /// grouped equivalent of [`ShardMap::hosts_object`] for every
    /// destination in the group, *provided the origin hosts the
    /// object* (true for everything in an origin's replication log:
    /// cross-shard writes to foreign shards are forwarded to their
    /// owners, never logged locally).
    #[inline]
    pub fn fanout_group_hosts(&self, origin: NodeId, group: u32, object: ObjectId) -> bool {
        let s = self.shard_of(object);
        let base = (self.fanout_base[origin.0 as usize] + group) as usize * self.words_per_sig;
        self.fanout_sigs[base + (s / 64) as usize] & (1u64 << (s % 64)) != 0
    }

    /// Master fan-out signature group of `dest`: the grouping when the
    /// sender hosts *every* shard (the two-tier base), so a dest's
    /// signature is its entire hosted set. `None` for a node hosting
    /// nothing.
    #[inline]
    pub fn host_group(&self, dest: NodeId) -> Option<u32> {
        let g = self.host_group[dest.0 as usize];
        (g != u32::MAX).then_some(g)
    }

    /// Number of distinct master fan-out groups.
    #[inline]
    pub fn host_groups(&self) -> usize {
        self.host_sigs.len() / self.words_per_sig
    }

    /// Whether every destination in master fan-out group `group` hosts
    /// `object` — the grouped equivalent of [`ShardMap::hosts_object`].
    #[inline]
    pub fn host_group_hosts(&self, group: u32, object: ObjectId) -> bool {
        let s = self.shard_of(object);
        let base = group as usize * self.words_per_sig;
        self.host_sigs[base + (s / 64) as usize] & (1u64 << (s % 64)) != 0
    }

    /// Index of `shard` within `hosted_shards(node)`, if hosted.
    #[inline]
    pub fn rank(&self, node: NodeId, shard: u32) -> Option<u32> {
        let r = self.rank[node.0 as usize * self.shards as usize + shard as usize];
        (r != u32::MAX).then_some(r)
    }

    /// How many of the `db_size` objects `node` hosts.
    pub fn hosted_objects(&self, node: NodeId, db_size: u64) -> u64 {
        let (full_rows, tail) = self.shard_div.div_rem(db_size);
        let h = &self.hosted[node.0 as usize];
        let tail_hosted = h.iter().take_while(|&&s| u64::from(s) < tail).count() as u64;
        full_rows * h.len() as u64 + tail_hosted
    }

    /// The `i`-th (ascending by id) object hosted at `node`, for
    /// `i < hosted_objects(node, db_size)` — the dense-index→object
    /// mapping workload samplers draw through so access skew applies to
    /// the node's hosted subset.
    #[inline]
    pub fn nth_hosted(&self, node: NodeId, i: u64) -> ObjectId {
        let h = &self.hosted[node.0 as usize];
        let (row, r) = self.hosted_div[node.0 as usize].div_rem(i);
        ObjectId(row * u64::from(self.shards) + u64::from(h[r as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_replication_sets_are_all_nodes_in_order() {
        let m = ShardMap::new(7, 4, 0);
        assert!(m.is_full());
        assert_eq!(m.rf(), 4);
        for s in 0..7 {
            let ids: Vec<u32> = m.replicas(s).iter().map(|n| n.0).collect();
            assert_eq!(ids, vec![0, 1, 2, 3], "shard {s}");
        }
        for n in 0..4 {
            assert_eq!(m.hosted_shards(NodeId(n)).len(), 7);
        }
    }

    #[test]
    fn rf_clamps_to_nodes() {
        let m = ShardMap::new(4, 3, 9);
        assert!(m.is_full());
        assert_eq!(m.rf(), 3);
    }

    #[test]
    fn partial_placement_is_balanced_when_shards_equal_nodes() {
        let m = ShardMap::new(8, 8, 3);
        assert!(!m.is_full());
        for s in 0..8 {
            assert_eq!(m.replicas(s).len(), 3);
            assert!(m.replicas(s).contains(&m.owner(s)));
        }
        // Round-robin placement: every node hosts exactly rf shards.
        for n in 0..8 {
            assert_eq!(m.hosted_shards(NodeId(n)).len(), 3, "node {n}");
        }
    }

    #[test]
    fn hosts_matches_replica_sets() {
        let m = ShardMap::new(10, 6, 2);
        for s in 0..10 {
            for n in 0..6 {
                assert_eq!(
                    m.hosts(NodeId(n), s),
                    m.replicas(s).contains(&NodeId(n)),
                    "node {n} shard {s}"
                );
            }
        }
    }

    #[test]
    fn shard_of_is_modular() {
        let m = ShardMap::new(4, 4, 2);
        assert_eq!(m.shard_of(ObjectId(0)), 0);
        assert_eq!(m.shard_of(ObjectId(5)), 1);
        assert_eq!(m.shard_of(ObjectId(7)), 3);
    }

    #[test]
    fn shares_any_detects_cohosting() {
        let m = ShardMap::new(8, 8, 2);
        // Shard s lives at {s, s+1}: adjacent nodes share, distant don't.
        assert!(m.shares_any(NodeId(0), NodeId(1)));
        assert!(!m.shares_any(NodeId(0), NodeId(4)));
    }

    #[test]
    fn hosted_object_mapping_is_dense_ascending_and_complete() {
        let m = ShardMap::new(5, 5, 2);
        let db = 23u64; // deliberately not a multiple of shards
        for n in 0..5 {
            let node = NodeId(n);
            let count = m.hosted_objects(node, db);
            let expect: Vec<u64> = (0..db)
                .filter(|&o| m.hosts_object(node, ObjectId(o)))
                .collect();
            assert_eq!(count, expect.len() as u64, "node {n}");
            let got: Vec<u64> = (0..count).map(|i| m.nth_hosted(node, i).0).collect();
            assert_eq!(got, expect, "node {n}");
        }
    }

    #[test]
    fn fanout_groups_agree_with_per_destination_filter() {
        for (shards, nodes, rf) in [(8, 8, 3), (5, 7, 2), (16, 4, 3), (3, 9, 1), (8, 8, 8)] {
            let m = ShardMap::new(shards, nodes, rf);
            for o in 0..nodes {
                let origin = NodeId(o);
                let mut max_group = None;
                for d in 0..nodes {
                    let dest = NodeId(d);
                    let group = m.fanout_group(origin, dest);
                    assert_eq!(
                        group.is_some(),
                        d != o && m.shares_any(origin, dest),
                        "{shards}/{nodes}/{rf} origin {o} dest {d}"
                    );
                    let Some(g) = group else { continue };
                    max_group = max_group.max(Some(g));
                    // The group signature must answer exactly like the
                    // per-destination filter for every origin-hosted
                    // object (the only objects an origin ever ships).
                    for obj in (0..64).map(ObjectId) {
                        if !m.hosts_object(origin, obj) {
                            continue;
                        }
                        assert_eq!(
                            m.fanout_group_hosts(origin, g, obj),
                            m.hosts_object(dest, obj),
                            "{shards}/{nodes}/{rf} origin {o} dest {d} obj {obj:?}"
                        );
                    }
                }
                // Ids are dense: 0..fanout_groups(origin).
                let groups = m.fanout_groups(origin);
                assert_eq!(
                    groups,
                    max_group.map_or(0, |g| g as usize + 1),
                    "origin {o}"
                );
            }
        }
    }

    #[test]
    fn host_groups_agree_with_hosted_sets() {
        for (shards, nodes, rf) in [(8, 8, 3), (5, 7, 2), (8, 20, 2)] {
            let m = ShardMap::new(shards, nodes, rf);
            for d in 0..nodes {
                let dest = NodeId(d);
                match m.host_group(dest) {
                    None => assert!(m.hosted_shards(dest).is_empty(), "node {d}"),
                    Some(g) => {
                        assert!((g as usize) < m.host_groups());
                        for obj in (0..64).map(ObjectId) {
                            assert_eq!(
                                m.host_group_hosts(g, obj),
                                m.hosts_object(dest, obj),
                                "{shards}/{nodes}/{rf} dest {d} obj {obj:?}"
                            );
                        }
                    }
                }
            }
            // Nodes with identical hosted sets share a group; distinct
            // sets get distinct groups.
            for a in 0..nodes {
                for b in 0..nodes {
                    let (ga, gb) = (m.host_group(NodeId(a)), m.host_group(NodeId(b)));
                    if ga.is_some() || gb.is_some() {
                        assert_eq!(
                            ga == gb,
                            m.hosted_shards(NodeId(a)) == m.hosted_shards(NodeId(b)),
                            "nodes {a}/{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rank_indexes_hosted_shards() {
        let m = ShardMap::new(6, 4, 2);
        for n in 0..4 {
            let node = NodeId(n);
            for (r, &s) in m.hosted_shards(node).iter().enumerate() {
                assert_eq!(m.rank(node, s), Some(r as u32));
            }
            for s in 0..6 {
                if !m.hosts(node, s) {
                    assert_eq!(m.rank(node, s), None);
                }
            }
        }
    }
}
