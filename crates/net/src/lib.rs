//! # repl-net — simulated network fabric
//!
//! * [`latency`] — pluggable one-way delay models ([`LatencyModel`]);
//!   the paper's closed forms assume zero delay ([`LatencyModel::ZERO`]),
//!   and the harness uses non-zero models to show delays make the rates
//!   worse, as §3 predicts.
//! * [`network`] — the point-to-point fabric: computes delivery delays
//!   and parks messages addressed to disconnected nodes until reconnect
//!   ("deferred replica updates").
//! * [`schedule`] — mobile connect/disconnect timelines built from the
//!   Table 2 parameters `Time_Between_Disconnects` and
//!   `Disconnected_Time`.
//! * [`faults`] — deterministic fault injection: seeded message chaos
//!   (drop / duplicate / delay-spike), scheduled partitions, and node
//!   crash/restart windows ([`FaultPlan`], [`FaultInjector`]).

#![warn(missing_docs)]

pub mod faults;
pub mod latency;
pub mod network;
pub mod schedule;

pub use faults::{CrashWindow, FaultInjector, FaultPlan, MessageFate, PartitionWindow};
pub use latency::LatencyModel;
pub use network::{Network, SendFate, SendOutcome};
pub use schedule::{ConnectivityEvent, DisconnectSchedule, PeriodModel};
