//! Deterministic fault injection: message chaos, scheduled network
//! partitions, and node crash/restart windows.
//!
//! A [`FaultPlan`] is a declarative, seedable description of everything
//! that will go wrong during a run. The per-message randomness lives in
//! the [`FaultInjector`] built from the plan; two injectors built from
//! equal plans produce bit-identical fault sequences, so a chaos run is
//! exactly as reproducible as a clean one.
//!
//! The plan separates concerns:
//!
//! * **message chaos** (drop / duplicate / delay-spike probabilities)
//!   is sampled per message by the injector inside
//!   [`Network::send`](crate::Network::send);
//! * **partitions** and **crashes** are *scheduled* windows — the
//!   protocol driver reads them out of the plan and turns them into
//!   events on its own deterministic clock.
//!
//! Delay spikes double as reordering faults: a spiked message arrives
//! after messages sent later on the same link, which is exactly the
//! reordering a real network produces (there is no other mechanism by
//! which a point-to-point link reorders).

use repl_sim::{SimDuration, SimRng, SimTime};
use repl_storage::NodeId;

/// A scheduled bipartition of the cluster: from `start` until `heal`,
/// nodes in `side_a` cannot exchange messages with the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// When the partition begins.
    pub start: SimTime,
    /// When it heals (exclusive end of the window).
    pub heal: SimTime,
    /// One side of the bipartition; every other node is on the far
    /// side.
    pub side_a: Vec<NodeId>,
}

/// A scheduled node crash: the node is down from `at` until `restart`,
/// losing all volatile state, then recovers from durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The node that crashes.
    pub node: NodeId,
    /// When it crashes.
    pub at: SimTime,
    /// When it restarts with recovery.
    pub restart: SimTime,
}

/// Everything that will go wrong during one run, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for the per-message fault stream.
    pub seed: u64,
    /// Probability a message is silently lost in flight.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message's latency spikes (which also reorders it
    /// behind later traffic).
    pub delay_p: f64,
    /// Extra one-way latency added to a spiked message.
    pub delay_spike: SimDuration,
    /// How long a sender waits before retransmitting a commit record
    /// it could not confirm shipped (drop recovery).
    pub retransmit: SimDuration,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled crash/restart windows.
    pub crashes: Vec<CrashWindow>,
    /// Scheduled crash/restart windows addressed at *base replicas*
    /// (`crash=baseN:S..E`) rather than client/replica nodes — the
    /// two-tier failover experiments route these at the base group.
    pub base_crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// A plan that injects nothing (probabilities zero, no windows).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_spike: SimDuration::from_millis(500),
            retransmit: SimDuration::from_millis(100),
            partitions: Vec::new(),
            crashes: Vec::new(),
            base_crashes: Vec::new(),
        }
    }

    /// Whether the plan can perturb message delivery at all.
    pub fn has_message_chaos(&self) -> bool {
        self.drop_p > 0.0 || self.dup_p > 0.0 || self.delay_p > 0.0
    }

    /// Parse the harness `--faults SPEC` mini-language. Clauses are
    /// separated by `;`:
    ///
    /// ```text
    /// drop=P               message drop probability
    /// dup=P                message duplication probability
    /// delay=P:SECS         delay-spike probability and spike length
    /// retransmit=SECS      sender retransmit timeout after a drop
    /// part=S..E:0,1/2,3    partition from S to E seconds, side A / side B
    /// crash=N:S..E         node N down from S to E seconds
    /// crash=baseN:S..E     base replica N down from S to E seconds
    /// ```
    ///
    /// The side-B node list of `part` is informational (any node not on
    /// side A is on side B); it may be omitted: `part=10..20:0,1`.
    /// `crash` and `part` clauses may repeat.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::quiet(seed);
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not KEY=VALUE"))?;
            match key.trim() {
                "drop" => plan.drop_p = parse_prob("drop", val)?,
                "dup" => plan.dup_p = parse_prob("dup", val)?,
                "delay" => {
                    let (p, spike) = val
                        .split_once(':')
                        .ok_or_else(|| format!("delay needs P:SECS, got `{val}`"))?;
                    plan.delay_p = parse_prob("delay", p)?;
                    plan.delay_spike = parse_secs("delay spike", spike)?;
                }
                "retransmit" => plan.retransmit = parse_secs("retransmit", val)?,
                "part" => {
                    let (window, sides) = val
                        .split_once(':')
                        .ok_or_else(|| format!("part needs S..E:NODES, got `{val}`"))?;
                    let (start, heal) = parse_window(window)?;
                    let side_a = sides.split('/').next().unwrap_or("");
                    let side_a = parse_nodes(side_a)?;
                    if side_a.is_empty() {
                        return Err(format!("part `{val}` has an empty side A"));
                    }
                    plan.partitions.push(PartitionWindow {
                        start,
                        heal,
                        side_a,
                    });
                }
                "crash" => {
                    let (node, window) = val
                        .split_once(':')
                        .ok_or_else(|| format!("crash needs NODE:S..E, got `{val}`"))?;
                    let node = node.trim();
                    // `baseN` addresses replica N of the base group;
                    // a bare integer addresses a client/replica node.
                    let (target, id) = match node.strip_prefix("base") {
                        Some(idx) => (&mut plan.base_crashes, idx),
                        None => (&mut plan.crashes, node),
                    };
                    let id = id
                        .parse::<u32>()
                        .map_err(|_| format!("crash node `{node}` is not an integer or baseN"))?;
                    let (at, restart) = parse_window(window)?;
                    target.push(CrashWindow {
                        node: NodeId(id),
                        at,
                        restart,
                    });
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Reject crash and partition clauses addressing nodes the run does
    /// not have. `parse` cannot do this — it does not know the cluster
    /// size — so callers validate against their `--nodes` before the
    /// run silently no-ops a misaddressed window. (`base_crashes` are
    /// exempt: they index the base replica group, a separate id space.)
    pub fn validate_nodes(&self, nodes: u32) -> Result<(), String> {
        for c in &self.crashes {
            if c.node.0 >= nodes {
                return Err(format!(
                    "crash clause addresses node {} but the run has only {nodes} nodes (ids 0..{})",
                    c.node.0,
                    nodes.saturating_sub(1)
                ));
            }
        }
        for p in &self.partitions {
            for n in &p.side_a {
                if n.0 >= nodes {
                    return Err(format!(
                        "part clause addresses node {} but the run has only {nodes} nodes (ids 0..{})",
                        n.0,
                        nodes.saturating_sub(1)
                    ));
                }
            }
        }
        Ok(())
    }

    /// Reject `crash=baseN:S..E` clauses addressing base replicas the
    /// run does not have. The base group is a separate id space from
    /// client/replica nodes, so [`FaultPlan::validate_nodes`] cannot
    /// catch these; callers with a replicated base validate against its
    /// group size before a misaddressed window silently no-ops.
    pub fn validate_base_nodes(&self, base_size: u32) -> Result<(), String> {
        for c in &self.base_crashes {
            if c.node.0 >= base_size {
                return Err(format!(
                    "crash clause addresses base replica {} but the base group has only \
                     {base_size} replicas (ids 0..{})",
                    c.node.0,
                    base_size.saturating_sub(1)
                ));
            }
        }
        Ok(())
    }
}

fn parse_prob(what: &str, s: &str) -> Result<f64, String> {
    let p: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("{what} probability `{s}` is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{what} probability {p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_secs(what: &str, s: &str) -> Result<SimDuration, String> {
    let v: f64 = s
        .trim()
        .parse()
        .map_err(|_| format!("{what} `{s}` is not a number of seconds"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{what} {v} must be a non-negative number"));
    }
    Ok(SimDuration::from_secs_f64(v))
}

fn parse_window(s: &str) -> Result<(SimTime, SimTime), String> {
    let (start, end) = s
        .split_once("..")
        .ok_or_else(|| format!("window `{s}` is not S..E"))?;
    let start = parse_secs("window start", start)?;
    let end = parse_secs("window end", end)?;
    if end.0 <= start.0 {
        return Err(format!("window `{s}` must end after it starts"));
    }
    Ok((SimTime::ZERO + start, SimTime::ZERO + end))
}

fn parse_nodes(s: &str) -> Result<Vec<NodeId>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<u32>()
                .map(NodeId)
                .map_err(|_| format!("node id `{t}` is not an integer"))
        })
        .collect()
}

/// What the injector decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Lose the message in flight.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Deliver once, this much later than the sampled latency (which
    /// reorders it behind later traffic on the link).
    Delay(SimDuration),
}

/// The runtime half of a [`FaultPlan`]: owns the per-message RNG
/// stream and judges each send.
#[derive(Debug)]
pub struct FaultInjector {
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    delay_spike: SimDuration,
    rng: SimRng,
}

impl FaultInjector {
    /// Build the injector for `plan`. Only the message-chaos fields
    /// matter here; partitions and crashes are scheduled by the driver.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            drop_p: plan.drop_p,
            dup_p: plan.dup_p,
            delay_p: plan.delay_p,
            delay_spike: plan.delay_spike,
            rng: SimRng::stream(plan.seed, "fault-injector"),
        }
    }

    /// Judge one message. Exactly one RNG draw per configured fault
    /// class, in a fixed order, so the stream is reproducible
    /// regardless of which faults fire.
    pub fn fate(&mut self) -> MessageFate {
        if self.drop_p > 0.0 && self.rng.chance(self.drop_p) {
            return MessageFate::Drop;
        }
        if self.dup_p > 0.0 && self.rng.chance(self.dup_p) {
            return MessageFate::Duplicate;
        }
        if self.delay_p > 0.0 && self.rng.chance(self.delay_p) {
            return MessageFate::Delay(self.delay_spike);
        }
        MessageFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_always_delivers() {
        let mut inj = FaultInjector::new(&FaultPlan::quiet(1));
        for _ in 0..1000 {
            assert_eq!(inj.fate(), MessageFate::Deliver);
        }
    }

    #[test]
    fn fates_are_deterministic_for_equal_plans() {
        let mut plan = FaultPlan::quiet(7);
        plan.drop_p = 0.1;
        plan.dup_p = 0.1;
        plan.delay_p = 0.2;
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for _ in 0..5000 {
            assert_eq!(a.fate(), b.fate());
        }
    }

    #[test]
    fn fate_frequencies_roughly_match_probabilities() {
        let mut plan = FaultPlan::quiet(11);
        plan.drop_p = 0.2;
        plan.dup_p = 0.1;
        let mut inj = FaultInjector::new(&plan);
        let n = 20_000;
        let mut drops = 0;
        let mut dups = 0;
        for _ in 0..n {
            match inj.fate() {
                MessageFate::Drop => drops += 1,
                MessageFate::Duplicate => dups += 1,
                _ => {}
            }
        }
        let drop_rate = f64::from(drops) / f64::from(n);
        // dup is conditional on not dropping: expect 0.8 * 0.1.
        let dup_rate = f64::from(dups) / f64::from(n);
        assert!((drop_rate - 0.2).abs() < 0.02, "drop rate {drop_rate}");
        assert!((dup_rate - 0.08).abs() < 0.02, "dup rate {dup_rate}");
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "drop=0.02; dup=0.01; delay=0.05:0.5; retransmit=0.2; \
             part=10..40:0,1/2,3; crash=2:50..70",
            9,
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert!((plan.drop_p - 0.02).abs() < 1e-12);
        assert!((plan.dup_p - 0.01).abs() < 1e-12);
        assert!((plan.delay_p - 0.05).abs() < 1e-12);
        assert_eq!(plan.delay_spike, SimDuration::from_millis(500));
        assert_eq!(plan.retransmit, SimDuration::from_millis(200));
        assert_eq!(
            plan.partitions,
            vec![PartitionWindow {
                start: SimTime::from_secs(10),
                heal: SimTime::from_secs(40),
                side_a: vec![NodeId(0), NodeId(1)],
            }]
        );
        assert_eq!(
            plan.crashes,
            vec![CrashWindow {
                node: NodeId(2),
                at: SimTime::from_secs(50),
                restart: SimTime::from_secs(70),
            }]
        );
    }

    #[test]
    fn parse_side_b_optional() {
        let plan = FaultPlan::parse("part=1..2:5", 1).unwrap();
        assert_eq!(plan.partitions[0].side_a, vec![NodeId(5)]);
    }

    #[test]
    fn validate_nodes_rejects_out_of_range_ids() {
        let plan = FaultPlan::parse("crash=7:5..9", 1).unwrap();
        assert!(plan.validate_nodes(8).is_ok());
        let err = plan.validate_nodes(4).unwrap_err();
        assert!(err.contains("node 7"), "{err}");
        assert!(err.contains("4 nodes"), "{err}");

        let plan = FaultPlan::parse("part=1..2:0,9", 1).unwrap();
        let err = plan.validate_nodes(4).unwrap_err();
        assert!(err.contains("node 9"), "{err}");

        // Base-replica crash windows index a different group; they are
        // not bounded by the client/replica node count.
        let plan = FaultPlan::parse("crash=base5:1..2", 1).unwrap();
        assert!(plan.validate_nodes(2).is_ok());
    }

    #[test]
    fn validate_base_nodes_rejects_out_of_range_ids() {
        let plan = FaultPlan::parse("crash=base5:1..2", 1).unwrap();
        assert!(plan.validate_base_nodes(6).is_ok());
        let err = plan.validate_base_nodes(3).unwrap_err();
        assert!(err.contains("base replica 5"), "{err}");
        assert!(err.contains("3 replicas"), "{err}");

        // Plain crash windows address the other id space; a plan with
        // only those passes any base-group size.
        let plan = FaultPlan::parse("crash=9:1..2", 1).unwrap();
        assert!(plan.validate_base_nodes(1).is_ok());
    }

    #[test]
    fn parse_base_crash_windows() {
        let plan =
            FaultPlan::parse("crash=base0:5..9; crash=1:2..3; crash=base2:10..12", 1).unwrap();
        assert_eq!(
            plan.base_crashes,
            vec![
                CrashWindow {
                    node: NodeId(0),
                    at: SimTime::from_secs(5),
                    restart: SimTime::from_secs(9),
                },
                CrashWindow {
                    node: NodeId(2),
                    at: SimTime::from_secs(10),
                    restart: SimTime::from_secs(12),
                },
            ]
        );
        // Plain node crashes still land in `crashes`.
        assert_eq!(
            plan.crashes,
            vec![CrashWindow {
                node: NodeId(1),
                at: SimTime::from_secs(2),
                restart: SimTime::from_secs(3),
            }]
        );
        assert!(FaultPlan::parse("crash=basex:1..2", 1).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=2.0", 1).is_err());
        assert!(FaultPlan::parse("drop", 1).is_err());
        assert!(FaultPlan::parse("nope=1", 1).is_err());
        assert!(FaultPlan::parse("part=10..5:0", 1).is_err());
        assert!(FaultPlan::parse("part=1..2:", 1).is_err());
        assert!(FaultPlan::parse("crash=x:1..2", 1).is_err());
        assert!(FaultPlan::parse("delay=0.5", 1).is_err());
    }

    #[test]
    fn parse_empty_spec_is_quiet() {
        let plan = FaultPlan::parse("", 3).unwrap();
        assert_eq!(plan, FaultPlan::quiet(3));
        assert!(!plan.has_message_chaos());
    }
}
