//! Connect/disconnect schedules for mobile nodes.
//!
//! The paper's mobile scenario: "the node accepts and applies
//! transactions for a day. Then, at night it connects and downloads them
//! to the rest of the network." A [`DisconnectSchedule`] turns the
//! Table 2 parameters `Time_Between_Disconnects` and `Disconnected_Time`
//! into an alternating sequence of state-change events.

use repl_sim::{SimDuration, SimRng, SimTime};
use repl_storage::NodeId;

/// One connectivity state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectivityEvent {
    /// When the change happens.
    pub at: SimTime,
    /// Which node changes.
    pub node: NodeId,
    /// `true` = the node (re)connects, `false` = it disconnects.
    pub connected: bool,
}

/// How the period lengths are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodModel {
    /// Deterministic periods — a fixed day/night cycle.
    Fixed,
    /// Exponentially distributed periods with the configured means.
    Exponential,
}

/// Generates the alternating connected/disconnected timeline for one
/// mobile node. The node starts *connected*.
#[derive(Debug)]
pub struct DisconnectSchedule {
    node: NodeId,
    connected_mean: SimDuration,
    disconnected_mean: SimDuration,
    model: PeriodModel,
    rng: SimRng,
    /// Time of the next state change.
    next_at: SimTime,
    /// State the node will be in *after* the next change.
    next_connected: bool,
}

impl DisconnectSchedule {
    /// A schedule for `node`: connected for ~`connected_mean`
    /// (`Time_Between_Disconnects`), then disconnected for
    /// ~`disconnected_mean` (`Disconnected_Time`), repeating.
    pub fn new(
        node: NodeId,
        connected_mean: SimDuration,
        disconnected_mean: SimDuration,
        model: PeriodModel,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::stream_node(seed, "disconnect-", u64::from(node.0));
        let first = Self::draw(&mut rng, connected_mean, model);
        DisconnectSchedule {
            node,
            connected_mean,
            disconnected_mean,
            model,
            rng,
            next_at: SimTime::ZERO + first,
            next_connected: false,
        }
    }

    fn draw(rng: &mut SimRng, mean: SimDuration, model: PeriodModel) -> SimDuration {
        let period = match model {
            PeriodModel::Fixed => mean,
            PeriodModel::Exponential => SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64())),
        };
        // An exponential draw can round to zero microseconds, which
        // would stack two state changes on the same instant; clamp so
        // the event timeline stays strictly ordered.
        SimDuration(period.0.max(1))
    }

    /// The next state change (does not advance the schedule).
    pub fn peek(&self) -> ConnectivityEvent {
        ConnectivityEvent {
            at: self.next_at,
            node: self.node,
            connected: self.next_connected,
        }
    }

    /// Consume and return the next state change, advancing the
    /// schedule.
    pub fn next_event(&mut self) -> ConnectivityEvent {
        let event = self.peek();
        let mean = if self.next_connected {
            // Just reconnected → next period is a connected stretch.
            self.connected_mean
        } else {
            self.disconnected_mean
        };
        let period = Self::draw(&mut self.rng, mean, self.model);
        self.next_at += period;
        self.next_connected = !self.next_connected;
        event
    }

    /// All state changes up to (and including) `horizon`.
    pub fn events_until(&mut self, horizon: SimTime) -> Vec<ConnectivityEvent> {
        let mut out = Vec::new();
        while self.peek().at <= horizon {
            out.push(self.next_event());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(node: u32, up_s: u64, down_s: u64) -> DisconnectSchedule {
        DisconnectSchedule::new(
            NodeId(node),
            SimDuration::from_secs(up_s),
            SimDuration::from_secs(down_s),
            PeriodModel::Fixed,
            42,
        )
    }

    #[test]
    fn fixed_cycle_alternates() {
        let mut s = fixed(1, 10, 5);
        let e1 = s.next_event();
        assert_eq!(e1.at, SimTime::from_secs(10));
        assert!(!e1.connected); // disconnects after the up period
        let e2 = s.next_event();
        assert_eq!(e2.at, SimTime::from_secs(15));
        assert!(e2.connected); // reconnects after the down period
        let e3 = s.next_event();
        assert_eq!(e3.at, SimTime::from_secs(25));
        assert!(!e3.connected);
    }

    #[test]
    fn events_until_horizon() {
        let mut s = fixed(2, 10, 10);
        let events = s.events_until(SimTime::from_secs(60));
        assert_eq!(events.len(), 6);
        assert!(events.windows(2).all(|w| w[0].at < w[1].at));
        assert!(events.windows(2).all(|w| w[0].connected != w[1].connected));
        // Nothing beyond the horizon was consumed prematurely.
        assert_eq!(s.peek().at, SimTime::from_secs(70));
    }

    #[test]
    fn exponential_periods_have_roughly_right_mean() {
        let mut s = DisconnectSchedule::new(
            NodeId(3),
            SimDuration::from_secs(100),
            SimDuration::from_secs(50),
            PeriodModel::Exponential,
            7,
        );
        // Average cycle (up+down) should be ~150 s over many cycles.
        let n_cycles = 2000;
        let mut last = SimTime::ZERO;
        for _ in 0..n_cycles {
            s.next_event();
            last = s.next_event().at;
        }
        let mean_cycle = last.as_secs_f64() / n_cycles as f64;
        assert!((mean_cycle - 150.0).abs() < 10.0, "mean {mean_cycle}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = fixed(1, 7, 3);
        let mut b = fixed(1, 7, 3);
        for _ in 0..10 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn node_id_carried_through() {
        let mut s = fixed(9, 1, 1);
        assert_eq!(s.next_event().node, NodeId(9));
    }
}
