//! Message-delay models. The paper's closed forms set
//! `Message_Delay = 0` ("these delays and extra processing are
//! ignored"); the simulator makes the delay a pluggable policy so the
//! harness can both reproduce the paper's assumption and measure how
//! delays worsen the rates (the paper predicts they do).

use repl_sim::{SimDuration, SimRng};

/// A model for one-way message latency between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long. `Fixed(ZERO)` reproduces
    /// the paper's analytic assumption.
    Fixed(SimDuration),
    /// Uniformly distributed latency in `[min, max]`.
    Uniform {
        /// Smallest possible delay.
        min: SimDuration,
        /// Largest possible delay.
        max: SimDuration,
    },
    /// Exponentially distributed latency with the given mean — heavy
    /// tail, models congested WAN links.
    Exponential {
        /// Mean delay.
        mean: SimDuration,
    },
}

impl LatencyModel {
    /// The paper's assumption: zero delay.
    pub const ZERO: LatencyModel = LatencyModel::Fixed(SimDuration(0));

    /// Sample one message delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform latency with min > max");
                let span = max.0.saturating_sub(min.0);
                if span == 0 {
                    min
                } else {
                    SimDuration(min.0 + rng.gen_range(span + 1))
                }
            }
            LatencyModel::Exponential { mean } => {
                SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64()))
            }
        }
    }

    /// The mean delay of the model, in seconds (for reporting).
    pub fn mean_secs(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(d) => d.as_secs_f64(),
            LatencyModel::Uniform { min, max } => (min.as_secs_f64() + max.as_secs_f64()) / 2.0,
            LatencyModel::Exponential { mean } => mean.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let m = LatencyModel::Fixed(SimDuration::from_millis(5));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn zero_model_is_zero() {
        let mut rng = SimRng::new(1);
        assert_eq!(LatencyModel::ZERO.sample(&mut rng), SimDuration::ZERO);
        assert_eq!(LatencyModel::ZERO.mean_secs(), 0.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration(100),
            max: SimDuration(200),
        };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d.0 >= 100 && d.0 <= 200, "out of range: {d}");
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let m = LatencyModel::Uniform {
            min: SimDuration(7),
            max: SimDuration(7),
        };
        let mut rng = SimRng::new(3);
        assert_eq!(m.sample(&mut rng), SimDuration(7));
    }

    #[test]
    fn exponential_mean_close() {
        let m = LatencyModel::Exponential {
            mean: SimDuration::from_millis(10),
        };
        let mut rng = SimRng::new(4);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.010).abs() < 0.0005, "mean {mean}");
    }

    #[test]
    fn mean_secs_reports_model_mean() {
        let u = LatencyModel::Uniform {
            min: SimDuration::from_millis(0),
            max: SimDuration::from_millis(10),
        };
        assert!((u.mean_secs() - 0.005).abs() < 1e-12);
    }
}
