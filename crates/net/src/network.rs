//! The simulated network fabric: computes per-message delivery delays
//! and parks messages addressed to unreachable nodes until the path
//! comes back (the paper's "when first connected, a mobile node sends
//! and receives deferred replica updates").
//!
//! The network deliberately does **not** own the event queue — it tells
//! the protocol driver *when* a message should arrive and the driver
//! schedules the delivery event. That keeps a single future-event list
//! and a single deterministic clock.
//!
//! Two failure mechanisms layer on top of plain delivery:
//!
//! * a **partition** ([`Network::partition`]) makes cross-side links
//!   unreachable — messages park at the boundary and drain in order
//!   when [`Network::heal_partition`] runs;
//! * a **fault injector** ([`Network::with_faults`]) perturbs
//!   individual messages on live links: drops (counted by
//!   [`Network::messages_dropped`] — never silent), duplicates, and
//!   delay spikes.

use crate::faults::{FaultInjector, MessageFate};
use crate::latency::LatencyModel;
use repl_sim::{SimDuration, SimRng};
use repl_storage::NodeId;

/// What happened to a sent message.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome<M> {
    /// Deliver after this delay: the driver should schedule the
    /// message's arrival event `delay` from now.
    Deliver {
        /// One-way latency to apply.
        delay: SimDuration,
    },
    /// Fault injection duplicated the message: schedule one arrival
    /// per delay.
    Duplicated {
        /// Independent one-way latencies for the two copies.
        delays: [SimDuration; 2],
    },
    /// Fault injection lost the message in flight. Counted by
    /// [`Network::messages_dropped`]; the sender should retransmit.
    Dropped,
    /// The destination is unreachable (disconnected or across a
    /// partition); the network parked the message. It will be returned
    /// by [`Network::reconnect`] or [`Network::heal_partition`].
    Held,
    /// The *sender* is disconnected; the message is refused outright
    /// (protocols queue their own outbound work while offline).
    SenderOffline(M),
}

/// What *would* happen to a send, decided without taking a message —
/// the payload-free twin of [`SendOutcome`]. Hot senders use
/// [`Network::send_fate`] to learn the fate first and only construct
/// (and clone reference-counted payloads into) a message for the fates
/// that keep one.
#[derive(Debug, Clone, PartialEq)]
pub enum SendFate {
    /// Deliver after this delay.
    Deliver {
        /// One-way latency to apply.
        delay: SimDuration,
    },
    /// Fault injection duplicated the message.
    Duplicated {
        /// Independent one-way latencies for the two copies.
        delays: [SimDuration; 2],
    },
    /// Fault injection lost the message in flight.
    Dropped,
    /// The destination is unreachable: the caller must hand the
    /// message over with [`Network::park`] (which [`Network::send`]
    /// does internally).
    Held,
    /// The sender is disconnected; nothing was counted or parked.
    SenderOffline,
}

/// Point-to-point message fabric for `n` nodes.
#[derive(Debug)]
pub struct Network<M> {
    latency: LatencyModel,
    rng: SimRng,
    connected: Vec<bool>,
    /// `Some(sides)` while a bipartition is active: `sides[i]` is the
    /// side node `i` sits on.
    partition: Option<Vec<bool>>,
    /// Parked messages per destination, with the sender recorded so a
    /// drain can judge reachability per message.
    held: Vec<Vec<(NodeId, M)>>,
    /// Reusable staging buffer for drains: reachable messages move
    /// here and are handed to the caller as a draining iterator, so
    /// reconnects and partition heals allocate nothing at steady state.
    drain_scratch: Vec<(NodeId, M)>,
    /// Spare vector swapped into a destination's `held` slot while its
    /// old contents are re-filtered — keeps the still-parked rewrite
    /// allocation-free too.
    park_scratch: Vec<(NodeId, M)>,
    faults: Option<FaultInjector>,
    sent: u64,
    held_count: u64,
    dropped: u64,
    duplicated: u64,
}

impl<M> Network<M> {
    /// A fully connected network of `n` nodes with the given latency
    /// model. The RNG seed controls latency jitter only.
    pub fn new(n: usize, latency: LatencyModel, seed: u64) -> Self {
        Network {
            latency,
            rng: SimRng::stream(seed, "network-latency"),
            connected: vec![true; n],
            partition: None,
            held: (0..n).map(|_| Vec::new()).collect(),
            drain_scratch: Vec::new(),
            park_scratch: Vec::new(),
            faults: None,
            sent: 0,
            held_count: 0,
            dropped: 0,
            duplicated: 0,
        }
    }

    /// Attach a message-fault injector (builder style).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Remove the fault injector (e.g. for a post-horizon convergence
    /// drain, during which no new faults should fire).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.connected.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.connected.is_empty()
    }

    /// Whether `node` is currently connected.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.connected[node.0 as usize]
    }

    /// Total messages accepted for delivery (including held ones).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Total messages that had to be parked for an unreachable
    /// destination.
    pub fn messages_held(&self) -> u64 {
        self.held_count
    }

    /// Total messages lost in flight by fault injection. Loss is never
    /// silent: every drop increments this counter and is reported to
    /// the sender as [`SendOutcome::Dropped`].
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    /// Total messages duplicated by fault injection.
    pub fn messages_duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Whether any bipartition is currently active.
    pub fn has_partition(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether a partition currently separates `a` from `b`.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partition
            .as_ref()
            .is_some_and(|sides| sides[a.0 as usize] != sides[b.0 as usize])
    }

    /// Split the cluster into `side_a` vs everyone else. Cross-side
    /// messages park until [`Network::heal_partition`]. A new call
    /// replaces any active partition (the fabric models one bipartition
    /// at a time, the paper's disconnected-operation scenario).
    pub fn partition(&mut self, side_a: &[NodeId]) {
        let mut sides = vec![false; self.connected.len()];
        for n in side_a {
            sides[n.0 as usize] = true;
        }
        self.partition = Some(sides);
    }

    /// Heal the partition and drain every parked message whose path is
    /// now clear, in arrival order per destination. Yields
    /// `(destination, message)` pairs for the driver to deliver; the
    /// backing buffer is reused across heals.
    pub fn heal_partition(&mut self) -> std::vec::Drain<'_, (NodeId, M)> {
        self.partition = None;
        self.drain_scratch.clear();
        for (d, parked) in self.held.iter_mut().enumerate() {
            let dest = NodeId(d as u32);
            if !self.connected[d] {
                continue; // still offline: keep its mail parked
            }
            // No partition remains, so everything parked for a
            // connected destination is reachable.
            self.drain_scratch
                .extend(parked.drain(..).map(|(_, msg)| (dest, msg)));
        }
        self.drain_scratch.drain(..)
    }

    /// Send `msg` from `from` to `to`.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> SendOutcome<M> {
        match self.send_fate(from, to) {
            SendFate::SenderOffline => SendOutcome::SenderOffline(msg),
            SendFate::Held => {
                self.park(from, to, msg);
                SendOutcome::Held
            }
            SendFate::Deliver { delay } => SendOutcome::Deliver { delay },
            SendFate::Duplicated { delays } => SendOutcome::Duplicated { delays },
            SendFate::Dropped => SendOutcome::Dropped,
        }
    }

    /// Decide a send's fate without a message: same connectivity
    /// checks, counters and randomness draws as [`Network::send`], in
    /// the same order. On [`SendFate::Held`] the caller owes the
    /// network a [`Network::park`] call for the message it kept.
    pub fn send_fate(&mut self, from: NodeId, to: NodeId) -> SendFate {
        if !self.connected[from.0 as usize] {
            return SendFate::SenderOffline;
        }
        self.sent += 1;
        if !self.connected[to.0 as usize] || self.is_partitioned(from, to) {
            return SendFate::Held;
        }
        match self
            .faults
            .as_mut()
            .map_or(MessageFate::Deliver, |f| f.fate())
        {
            MessageFate::Deliver => SendFate::Deliver {
                delay: self.latency.sample(&mut self.rng),
            },
            MessageFate::Drop => {
                self.dropped += 1;
                SendFate::Dropped
            }
            MessageFate::Duplicate => {
                self.duplicated += 1;
                SendFate::Duplicated {
                    delays: [
                        self.latency.sample(&mut self.rng),
                        self.latency.sample(&mut self.rng),
                    ],
                }
            }
            MessageFate::Delay(spike) => SendFate::Deliver {
                delay: self.latency.sample(&mut self.rng) + spike,
            },
        }
    }

    /// Park `msg` for `to` as if it were still in the mail — used by
    /// drivers to return delivered-but-unprocessed messages to the
    /// network when `to` crashes (they redeliver on restart).
    pub fn park(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.held[to.0 as usize].push((from, msg));
        self.held_count += 1;
    }

    /// Mark `node` disconnected. Messages sent to it afterwards are
    /// parked.
    pub fn disconnect(&mut self, node: NodeId) {
        self.connected[node.0 as usize] = false;
    }

    /// Mark `node` connected again and drain everything parked for it
    /// whose path is clear, in arrival order. The driver delivers these
    /// immediately (they were already "in the mail"). Messages from
    /// senders still across an active partition stay parked until
    /// [`Network::heal_partition`]. The backing buffer is reused across
    /// reconnects.
    pub fn reconnect(&mut self, node: NodeId) -> impl ExactSizeIterator<Item = M> + '_ {
        self.connected[node.0 as usize] = true;
        self.drain_reachable(node).map(|(_, msg)| msg)
    }

    /// Take the parked messages for `dest` whose sender is on a
    /// reachable side, preserving order among both the drained and the
    /// remaining messages. The drained messages live in a scratch
    /// buffer reused across calls, and the still-parked rewrite reuses
    /// recycled capacity — no allocation at steady state.
    fn drain_reachable(&mut self, dest: NodeId) -> std::vec::Drain<'_, (NodeId, M)> {
        let d = dest.0 as usize;
        let mut parked =
            std::mem::replace(&mut self.held[d], std::mem::take(&mut self.park_scratch));
        self.drain_scratch.clear();
        for (from, msg) in parked.drain(..) {
            if self.is_partitioned(from, dest) {
                self.held[d].push((from, msg));
            } else {
                self.drain_scratch.push((from, msg));
            }
        }
        self.park_scratch = parked;
        self.drain_scratch.drain(..)
    }

    /// Sample a delivery delay without sending (for broadcast fan-out
    /// where the caller builds per-destination messages itself).
    pub fn sample_delay(&mut self) -> SimDuration {
        self.latency.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    fn net(n: usize) -> Network<&'static str> {
        Network::new(n, LatencyModel::Fixed(SimDuration::from_millis(3)), 7)
    }

    #[test]
    fn connected_delivery_has_latency() {
        let mut n = net(2);
        match n.send(N0, N1, "hello") {
            SendOutcome::Deliver { delay } => assert_eq!(delay, SimDuration::from_millis(3)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.messages_sent(), 1);
    }

    #[test]
    fn disconnected_destination_holds() {
        let mut n = net(2);
        n.disconnect(N1);
        assert_eq!(n.send(N0, N1, "a"), SendOutcome::Held);
        assert_eq!(n.send(N0, N1, "b"), SendOutcome::Held);
        assert_eq!(n.messages_held(), 2);
        let drained: Vec<_> = n.reconnect(N1).collect();
        assert_eq!(drained, vec!["a", "b"]);
        // Drained only once.
        assert_eq!(n.reconnect(N1).len(), 0);
    }

    #[test]
    fn offline_sender_refused() {
        let mut n = net(2);
        n.disconnect(N0);
        assert_eq!(n.send(N0, N1, "x"), SendOutcome::SenderOffline("x"));
        assert_eq!(n.messages_sent(), 0);
    }

    #[test]
    fn connection_state_tracking() {
        let mut n = net(3);
        assert!(n.is_connected(NodeId(2)));
        n.disconnect(NodeId(2));
        assert!(!n.is_connected(NodeId(2)));
        assert_eq!(n.reconnect(NodeId(2)).len(), 0);
        assert!(n.is_connected(NodeId(2)));
    }

    #[test]
    fn zero_latency_model_for_paper_assumption() {
        let mut n: Network<u32> = Network::new(2, LatencyModel::ZERO, 1);
        match n.send(N0, N1, 5) {
            SendOutcome::Deliver { delay } => assert_eq!(delay, SimDuration::ZERO),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reconnect_preserves_cross_sender_order() {
        // Messages from several senders park for one destination; the
        // drain must replay them in exact arrival order.
        let mut n = net(3);
        n.disconnect(N2);
        assert_eq!(n.send(N0, N2, "a0"), SendOutcome::Held);
        assert_eq!(n.send(N1, N2, "b0"), SendOutcome::Held);
        assert_eq!(n.send(N0, N2, "a1"), SendOutcome::Held);
        assert_eq!(n.send(N1, N2, "b1"), SendOutcome::Held);
        assert_eq!(
            n.reconnect(N2).collect::<Vec<_>>(),
            vec!["a0", "b0", "a1", "b1"]
        );
    }

    #[test]
    fn partition_parks_cross_side_traffic_only() {
        let mut n = net(3);
        n.partition(&[N0]);
        assert!(n.is_partitioned(N0, N1));
        assert!(!n.is_partitioned(N1, N2));
        assert_eq!(n.send(N0, N1, "cross"), SendOutcome::Held);
        assert!(matches!(
            n.send(N1, N2, "same-side"),
            SendOutcome::Deliver { .. }
        ));
        let healed: Vec<_> = n.heal_partition().collect();
        assert_eq!(healed, vec![(N1, "cross")]);
        assert!(!n.is_partitioned(N0, N1));
    }

    #[test]
    fn heal_keeps_mail_for_disconnected_nodes_parked() {
        let mut n = net(3);
        n.partition(&[N1]);
        n.disconnect(N1);
        assert_eq!(n.send(N0, N1, "x"), SendOutcome::Held);
        // Heal: N1 is still offline, so its mail stays parked…
        assert_eq!(n.heal_partition().len(), 0);
        // …and arrives when it reconnects.
        assert_eq!(n.reconnect(N1).collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn reconnect_keeps_cross_partition_mail_parked() {
        let mut n = net(3);
        n.disconnect(N1);
        assert_eq!(n.send(N0, N1, "pre"), SendOutcome::Held);
        n.partition(&[N0]);
        // N1 reconnects inside the partition: N0's message is across
        // the cut and must wait for the heal.
        assert_eq!(n.reconnect(N1).len(), 0);
        assert_eq!(n.heal_partition().collect::<Vec<_>>(), vec![(N1, "pre")]);
    }

    #[test]
    fn drops_are_counted_never_silent() {
        let mut plan = FaultPlan::quiet(3);
        plan.drop_p = 1.0;
        let mut n = net(2).with_faults(FaultInjector::new(&plan));
        assert_eq!(n.send(N0, N1, "gone"), SendOutcome::Dropped);
        assert_eq!(n.messages_dropped(), 1);
        n.clear_faults();
        assert!(matches!(n.send(N0, N1, "ok"), SendOutcome::Deliver { .. }));
        assert_eq!(n.messages_dropped(), 1);
    }

    #[test]
    fn duplicates_yield_two_delays() {
        let mut plan = FaultPlan::quiet(3);
        plan.dup_p = 1.0;
        let mut n = net(2).with_faults(FaultInjector::new(&plan));
        match n.send(N0, N1, "twice") {
            SendOutcome::Duplicated { delays } => {
                assert_eq!(delays[0], SimDuration::from_millis(3));
                assert_eq!(delays[1], SimDuration::from_millis(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.messages_duplicated(), 1);
    }

    #[test]
    fn delay_spike_adds_to_latency() {
        let mut plan = FaultPlan::quiet(3);
        plan.delay_p = 1.0;
        plan.delay_spike = SimDuration::from_millis(500);
        let mut n = net(2).with_faults(FaultInjector::new(&plan));
        match n.send(N0, N1, "late") {
            SendOutcome::Deliver { delay } => {
                assert_eq!(delay, SimDuration::from_millis(503));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn park_redelivers_on_reconnect() {
        let mut n = net(2);
        n.disconnect(N1);
        n.park(N0, N1, "requeued");
        assert_eq!(n.reconnect(N1).collect::<Vec<_>>(), vec!["requeued"]);
    }
}
