//! The simulated network fabric: computes per-message delivery delays
//! and parks messages addressed to disconnected nodes until they
//! reconnect (the paper's "when first connected, a mobile node sends and
//! receives deferred replica updates").
//!
//! The network deliberately does **not** own the event queue — it tells
//! the protocol driver *when* a message should arrive and the driver
//! schedules the delivery event. That keeps a single future-event list
//! and a single deterministic clock.

use crate::latency::LatencyModel;
use repl_sim::{SimDuration, SimRng};
use repl_storage::NodeId;

/// What happened to a sent message.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome<M> {
    /// Deliver after this delay: the driver should schedule the
    /// message's arrival event `delay` from now.
    Deliver {
        /// One-way latency to apply.
        delay: SimDuration,
    },
    /// The destination is disconnected; the network parked the message.
    /// It will be returned by [`Network::reconnect`].
    Held,
    /// The *sender* is disconnected; the message is refused outright
    /// (protocols queue their own outbound work while offline).
    SenderOffline(M),
}

/// Point-to-point message fabric for `n` nodes.
#[derive(Debug)]
pub struct Network<M> {
    latency: LatencyModel,
    rng: SimRng,
    connected: Vec<bool>,
    held: Vec<Vec<M>>,
    sent: u64,
    held_count: u64,
}

impl<M> Network<M> {
    /// A fully connected network of `n` nodes with the given latency
    /// model. The RNG seed controls latency jitter only.
    pub fn new(n: usize, latency: LatencyModel, seed: u64) -> Self {
        Network {
            latency,
            rng: SimRng::stream(seed, "network-latency"),
            connected: vec![true; n],
            held: (0..n).map(|_| Vec::new()).collect(),
            sent: 0,
            held_count: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.connected.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.connected.is_empty()
    }

    /// Whether `node` is currently connected.
    pub fn is_connected(&self, node: NodeId) -> bool {
        self.connected[node.0 as usize]
    }

    /// Total messages accepted for delivery (including held ones).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Total messages that had to be parked for a disconnected
    /// destination.
    pub fn messages_held(&self) -> u64 {
        self.held_count
    }

    /// Send `msg` from `from` to `to`.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> SendOutcome<M> {
        if !self.connected[from.0 as usize] {
            return SendOutcome::SenderOffline(msg);
        }
        self.sent += 1;
        if self.connected[to.0 as usize] {
            SendOutcome::Deliver {
                delay: self.latency.sample(&mut self.rng),
            }
        } else {
            self.held[to.0 as usize].push(msg);
            self.held_count += 1;
            SendOutcome::Held
        }
    }

    /// Mark `node` disconnected. Messages sent to it afterwards are
    /// parked.
    pub fn disconnect(&mut self, node: NodeId) {
        self.connected[node.0 as usize] = false;
    }

    /// Mark `node` connected again and drain everything parked for it,
    /// in arrival order. The driver delivers these immediately (they
    /// were already "in the mail").
    pub fn reconnect(&mut self, node: NodeId) -> Vec<M> {
        self.connected[node.0 as usize] = true;
        std::mem::take(&mut self.held[node.0 as usize])
    }

    /// Sample a delivery delay without sending (for broadcast fan-out
    /// where the caller builds per-destination messages itself).
    pub fn sample_delay(&mut self) -> SimDuration {
        self.latency.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn net(n: usize) -> Network<&'static str> {
        Network::new(n, LatencyModel::Fixed(SimDuration::from_millis(3)), 7)
    }

    #[test]
    fn connected_delivery_has_latency() {
        let mut n = net(2);
        match n.send(N0, N1, "hello") {
            SendOutcome::Deliver { delay } => assert_eq!(delay, SimDuration::from_millis(3)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(n.messages_sent(), 1);
    }

    #[test]
    fn disconnected_destination_holds() {
        let mut n = net(2);
        n.disconnect(N1);
        assert_eq!(n.send(N0, N1, "a"), SendOutcome::Held);
        assert_eq!(n.send(N0, N1, "b"), SendOutcome::Held);
        assert_eq!(n.messages_held(), 2);
        let drained = n.reconnect(N1);
        assert_eq!(drained, vec!["a", "b"]);
        // Drained only once.
        assert!(n.reconnect(N1).is_empty());
    }

    #[test]
    fn offline_sender_refused() {
        let mut n = net(2);
        n.disconnect(N0);
        assert_eq!(n.send(N0, N1, "x"), SendOutcome::SenderOffline("x"));
        assert_eq!(n.messages_sent(), 0);
    }

    #[test]
    fn connection_state_tracking() {
        let mut n = net(3);
        assert!(n.is_connected(NodeId(2)));
        n.disconnect(NodeId(2));
        assert!(!n.is_connected(NodeId(2)));
        n.reconnect(NodeId(2));
        assert!(n.is_connected(NodeId(2)));
    }

    #[test]
    fn zero_latency_model_for_paper_assumption() {
        let mut n: Network<u32> = Network::new(2, LatencyModel::ZERO, 1);
        match n.send(N0, N1, 5) {
            SendOutcome::Deliver { delay } => assert_eq!(delay, SimDuration::ZERO),
            other => panic!("unexpected {other:?}"),
        }
    }
}
