//! Property tests for [`DisconnectSchedule`]: whatever the period
//! model, seed, and means, the generated timeline is strictly ordered
//! in time, strictly alternates disconnect/connect starting from the
//! connected state, and `events_until` agrees with draining the same
//! schedule one `next_event` at a time.

use proptest::prelude::*;
use repl_net::{DisconnectSchedule, PeriodModel};
use repl_sim::{SimDuration, SimTime};
use repl_storage::NodeId;

fn arb_model() -> impl Strategy<Value = PeriodModel> {
    prop_oneof![Just(PeriodModel::Fixed), Just(PeriodModel::Exponential)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn events_strictly_ordered_and_alternating(
        node in 0u32..64,
        up_s in 1u64..100,
        down_s in 1u64..100,
        seed in 0u64..1000,
        model in arb_model(),
    ) {
        let mut s = DisconnectSchedule::new(
            NodeId(node),
            SimDuration::from_secs(up_s),
            SimDuration::from_secs(down_s),
            model,
            seed,
        );
        let horizon = SimTime::from_secs(20 * (up_s + down_s));
        let events = s.events_until(horizon);
        for w in events.windows(2) {
            prop_assert!(
                w[0].at < w[1].at,
                "events not strictly ordered: {:?} then {:?}", w[0], w[1]
            );
            prop_assert!(
                w[0].connected != w[1].connected,
                "connectivity did not alternate: {:?} then {:?}", w[0], w[1]
            );
        }
        // The node starts connected, so the first change disconnects.
        if let Some(first) = events.first() {
            prop_assert!(!first.connected, "first event must disconnect");
            prop_assert!(first.at > SimTime::ZERO);
        }
        for e in &events {
            prop_assert!(e.at <= horizon);
            prop_assert_eq!(e.node, NodeId(node));
        }
        // Nothing beyond the horizon was consumed.
        prop_assert!(s.peek().at > horizon);
    }

    #[test]
    fn events_until_matches_repeated_next_event(
        up_s in 1u64..50,
        down_s in 1u64..50,
        seed in 0u64..1000,
        model in arb_model(),
    ) {
        let mk = || DisconnectSchedule::new(
            NodeId(1),
            SimDuration::from_secs(up_s),
            SimDuration::from_secs(down_s),
            model,
            seed,
        );
        let horizon = SimTime::from_secs(10 * (up_s + down_s));
        let batch = mk().events_until(horizon);
        let mut one_by_one = Vec::new();
        let mut s = mk();
        while s.peek().at <= horizon {
            one_by_one.push(s.next_event());
        }
        prop_assert_eq!(batch, one_by_one);
    }

    #[test]
    fn peek_never_advances(
        seed in 0u64..1000,
        steps in 1usize..20,
    ) {
        let mut s = DisconnectSchedule::new(
            NodeId(0),
            SimDuration::from_secs(5),
            SimDuration::from_secs(3),
            PeriodModel::Exponential,
            seed,
        );
        for _ in 0..steps {
            let p1 = s.peek();
            let p2 = s.peek();
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(s.next_event(), p1);
        }
    }
}
