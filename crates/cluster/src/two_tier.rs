//! A threaded two-tier deployment (§7) — the paper's solution running
//! on real OS threads and channels rather than the discrete-event
//! simulator.
//!
//! * [`BaseServer`] — one thread owning the master database. It
//!   executes base transactions under the lazy-master discipline,
//!   applies acceptance criteria, and streams its commit log to
//!   reconnecting clients.
//! * [`MobileNode`] — a disconnected client holding (master, tentative)
//!   dual versions. It executes tentative transactions locally, logs
//!   their input parameters, and re-submits them in commit order on
//!   [`MobileNode::sync`].
//!
//! ```
//! use repl_cluster::two_tier::{BaseServer, MobileNode};
//! use repl_core::{Criterion, Op, Operation, TxnSpec};
//! use repl_storage::{NodeId, ObjectId, Value};
//!
//! // A bank with 4 accounts of $100 each, and one offline customer.
//! let base = BaseServer::spawn(4, 100);
//! let mut mobile = MobileNode::new(NodeId(1), 4, 100);
//! let check = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Debit(30))])
//!     .with_criterion(Criterion::NonNegative);
//! mobile.execute_tentative(check);
//! assert_eq!(mobile.read(ObjectId(0)), &Value::Int(70)); // tentative view
//! let outcome = mobile.sync(&base);
//! assert_eq!(outcome.accepted, 1);
//! assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
//! base.shutdown();
//! ```

use crossbeam::channel::{unbounded, Receiver, Sender};
use repl_core::TxnSpec;
use repl_sim::SimTime;
use repl_storage::{
    CommitRecord, LamportClock, Lsn, NodeId, ObjectId, ObjectStore, TentativeStore, Timestamp,
    TxnId, Value,
};
use repl_telemetry::{AbortReason, Event, EventKind, SyncTraceHandle};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Duration;

/// Globally unique identity of one tentative transaction, assigned at
/// its originating mobile node. The base remembers the outcome of every
/// id it has executed, so a re-submitted transaction (the mobile
/// retried because a crash ate the reply) returns its recorded fate
/// instead of executing twice — sync is exactly-once even over an
/// at-least-once retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DedupId {
    /// The originating mobile node.
    pub node: NodeId,
    /// That node's tentative-transaction sequence number.
    pub seq: u64,
}

/// A tentative transaction awaiting base re-execution: the §7
/// "input parameters" capture plus the tentative outputs the acceptance
/// criterion compares against.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Unique identity for at-most-once base execution.
    pub dedup: DedupId,
    /// The transaction's specification (ops + criterion).
    pub spec: TxnSpec,
    /// The outputs the tentative execution produced.
    pub tentative_results: Vec<(ObjectId, Value)>,
}

/// Outcome of one re-executed tentative transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutcome {
    /// The base execution passed the acceptance criterion; these are
    /// the (durable) base outputs.
    Accepted(Vec<(ObjectId, Value)>),
    /// The acceptance criterion failed; the diagnostic explains why
    /// ("the originating node and person … are informed it failed and
    /// why it failed").
    Rejected {
        /// Human-readable failure diagnostic.
        reason: String,
    },
}

/// Reply to a [`MobileNode::sync`].
#[derive(Debug)]
struct SyncReply {
    outcomes: Vec<TxnOutcome>,
    refresh: Vec<CommitRecord>,
    head: Lsn,
}

enum BaseMsg {
    Execute {
        spec: TxnSpec,
        reply: Sender<TxnOutcome>,
    },
    Sync {
        pendings: Vec<Pending>,
        from: Lsn,
        reply: Sender<SyncReply>,
    },
    Snapshot {
        reply: Sender<ObjectStore>,
    },
    /// Make the next `count` syncs commit durably but crash before the
    /// reply leaves — the classic at-most-once hazard the dedup map
    /// exists for.
    InjectReplyCrashes {
        count: u32,
    },
    /// Crash the base: the thread exits, volatile state (master, clock)
    /// is lost, durable state (commit log, dedup map) survives in the
    /// remnant.
    Crash,
    Shutdown,
}

/// Durable base state handed back by a crash, consumed by a restart.
struct BaseRemnant {
    inbox: Receiver<BaseMsg>,
    log: repl_storage::CommitLog,
    seen: HashMap<DedupId, TxnOutcome>,
    next_txn: u64,
    tracer: SyncTraceHandle,
    tick: u64,
}

struct BaseThread {
    master: ObjectStore,
    clock: LamportClock,
    log: repl_storage::CommitLog,
    /// Durable outcome of every dedup id ever executed. Consulted
    /// before re-executing a resubmitted tentative transaction.
    seen: HashMap<DedupId, TxnOutcome>,
    /// Pending injected reply-crashes (see
    /// [`BaseMsg::InjectReplyCrashes`]).
    drop_replies: u32,
    inbox: Receiver<BaseMsg>,
    next_txn: u64,
    tracer: SyncTraceHandle,
    // The base thread has no simulated clock; events carry a logical
    // tick, one per executed base transaction.
    tick: u64,
}

impl BaseThread {
    fn run(mut self) -> Option<BaseRemnant> {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                BaseMsg::Execute { spec, reply } => {
                    let outcome = self.execute(&spec, None);
                    let _ = reply.send(outcome);
                }
                BaseMsg::Sync {
                    pendings,
                    from,
                    reply,
                } => {
                    let outcomes = pendings
                        .iter()
                        .map(|p| match self.seen.get(&p.dedup) {
                            // Already executed in a previous (possibly
                            // reply-crashed) sync: return the recorded
                            // fate, do not run it again.
                            Some(outcome) => outcome.clone(),
                            None => {
                                let outcome = self.execute(&p.spec, Some(&p.tentative_results));
                                self.seen.insert(p.dedup, outcome.clone());
                                outcome
                            }
                        })
                        .collect();
                    let refresh = self.log.since(from).to_vec();
                    if self.drop_replies > 0 {
                        // Crash after commit, before reply: the work is
                        // durable but the client never hears back.
                        self.drop_replies -= 1;
                        let now = SimTime(self.tick);
                        self.tracer
                            .emit(|| Event::system(now, NodeId(0), EventKind::NodeCrash));
                        drop(reply);
                        continue;
                    }
                    let _ = reply.send(SyncReply {
                        outcomes,
                        refresh,
                        head: self.log.head(),
                    });
                }
                BaseMsg::Snapshot { reply } => {
                    let _ = reply.send(self.master.clone());
                }
                BaseMsg::InjectReplyCrashes { count } => {
                    self.drop_replies += count;
                }
                BaseMsg::Crash => {
                    let now = SimTime(self.tick);
                    self.tracer
                        .emit(|| Event::system(now, NodeId(0), EventKind::NodeCrash));
                    self.tracer.flush();
                    return Some(BaseRemnant {
                        inbox: self.inbox,
                        log: self.log,
                        seen: self.seen,
                        next_txn: self.next_txn,
                        tracer: self.tracer,
                        tick: self.tick,
                    });
                }
                BaseMsg::Shutdown => break,
            }
        }
        self.tracer.flush();
        None
    }

    /// Execute one base transaction: buffer the writes, judge them with
    /// the acceptance criterion, install on success.
    fn execute(
        &mut self,
        spec: &TxnSpec,
        tentative: Option<&Vec<(ObjectId, Value)>>,
    ) -> TxnOutcome {
        self.tick += 1;
        let now = SimTime(self.tick);
        let mut buffered: Vec<(ObjectId, Value)> = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = buffered
                .iter()
                .rev()
                .find(|(o, _)| *o == op.object)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| self.master.get(op.object).value.clone());
            buffered.push((op.object, op.op.apply(&current)));
        }
        let accepted = match tentative {
            Some(t) => spec.criterion.accepts(&buffered, t),
            None => spec.criterion.accepts(&buffered, &buffered),
        };
        if !accepted {
            // The tentative fate (TentativeRejected) is emitted at the
            // originating mobile node, which knows its own identity;
            // the base records only that this incarnation died.
            self.tracer.emit(|| {
                Event::system(
                    now,
                    NodeId(0),
                    EventKind::TxnAbort {
                        reason: AbortReason::Conflict,
                    },
                )
            });
            return TxnOutcome::Rejected {
                reason: format!(
                    "acceptance criterion {:?} failed for outputs {:?}",
                    spec.criterion, buffered
                ),
            };
        }
        self.next_txn += 1;
        let txn = TxnId(self.next_txn);
        self.tracer
            .emit(|| Event::new(now, NodeId(0), txn, EventKind::TxnCommit));
        let mut updates = Vec::with_capacity(buffered.len());
        for (obj, value) in &buffered {
            let old_ts = self.master.get(*obj).ts;
            let new_ts = self.clock.tick();
            self.master.set(*obj, value.clone(), new_ts);
            updates.push(repl_storage::UpdateRecord {
                txn,
                object: *obj,
                old_ts,
                new_ts,
                value: value.clone(),
            });
        }
        self.log.append(txn, updates);
        TxnOutcome::Accepted(buffered)
    }
}

/// Handle to the base-node thread.
pub struct BaseServer {
    sender: Sender<BaseMsg>,
    handle: Option<JoinHandle<Option<BaseRemnant>>>,
    remnant: Option<BaseRemnant>,
    db_size: u64,
    initial_value: i64,
}

impl BaseServer {
    /// Spawn the base server owning a `db_size`-object master database
    /// with every object initialized to `initial_value`.
    pub fn spawn(db_size: u64, initial_value: i64) -> Self {
        BaseServer::spawn_traced(db_size, initial_value, SyncTraceHandle::off())
    }

    /// Like [`BaseServer::spawn`], but the base thread emits telemetry
    /// events through `tracer` as it commits and rejects transactions.
    pub fn spawn_traced(db_size: u64, initial_value: i64, tracer: SyncTraceHandle) -> Self {
        let (tx, rx) = unbounded();
        let mut master = ObjectStore::new(db_size);
        for i in 0..db_size {
            master.set(ObjectId(i), Value::Int(initial_value), Timestamp::ZERO);
        }
        let thread = BaseThread {
            master,
            clock: LamportClock::new(NodeId(0)),
            log: repl_storage::CommitLog::new(),
            seen: HashMap::new(),
            drop_replies: 0,
            inbox: rx,
            next_txn: 0,
            tracer,
            tick: 0,
        };
        let handle = std::thread::Builder::new()
            .name("two-tier-base".to_owned())
            .spawn(move || thread.run())
            .expect("failed to spawn base thread");
        BaseServer {
            sender: tx,
            handle: Some(handle),
            remnant: None,
            db_size,
            initial_value,
        }
    }

    /// Arrange for the next `count` syncs to commit durably but crash
    /// before replying. Clients observe a dead connection and must
    /// retry; the dedup map guarantees the retry does not re-execute.
    pub fn inject_reply_crashes(&self, count: u32) {
        self.sender
            .send(BaseMsg::InjectReplyCrashes { count })
            .expect("base thread gone");
    }

    /// Crash the base server: the thread exits, losing the master
    /// store and clock; the commit log and dedup map survive. Requests
    /// sent while crashed queue up and are served after
    /// [`BaseServer::restart`].
    ///
    /// # Panics
    /// If the base is already crashed.
    pub fn crash(&mut self) {
        assert!(self.remnant.is_none(), "base already crashed");
        self.sender.send(BaseMsg::Crash).expect("base thread gone");
        let handle = self.handle.take().expect("crashed base has no thread");
        let remnant = handle.join().expect("base thread panicked");
        self.remnant = Some(remnant.expect("crash must yield a remnant"));
    }

    /// Restart a crashed base: rebuild the master database by replaying
    /// the durable commit log over the initial state, restore the clock
    /// from the replayed timestamps, and resume on the original inbox.
    /// Returns the number of committed transactions replayed.
    ///
    /// # Panics
    /// If the base is not crashed.
    pub fn restart(&mut self) -> u64 {
        let remnant = self.remnant.take().expect("restarting a live base");
        let mut master = ObjectStore::new(self.db_size);
        for i in 0..self.db_size {
            master.set(ObjectId(i), Value::Int(self.initial_value), Timestamp::ZERO);
        }
        let mut clock = LamportClock::new(NodeId(0));
        let mut replayed = 0;
        for record in remnant.log.since(Lsn(0)) {
            replayed += 1;
            for u in &record.updates {
                clock.observe(u.new_ts);
                master.set(u.object, u.value.clone(), u.new_ts);
            }
        }
        let now = SimTime(remnant.tick);
        remnant.tracer.emit(|| {
            Event::system(
                now,
                NodeId(0),
                EventKind::RecoveryReplay { messages: replayed },
            )
        });
        remnant
            .tracer
            .emit(|| Event::system(now, NodeId(0), EventKind::NodeRestart));
        let thread = BaseThread {
            master,
            clock,
            log: remnant.log,
            seen: remnant.seen,
            drop_replies: 0,
            inbox: remnant.inbox,
            next_txn: remnant.next_txn,
            tracer: remnant.tracer,
            tick: remnant.tick,
        };
        self.handle = Some(
            std::thread::Builder::new()
                .name("two-tier-base".to_owned())
                .spawn(move || thread.run())
                .expect("failed to respawn base thread"),
        );
        replayed
    }

    /// Whether the base is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.remnant.is_some()
    }

    /// Execute a transaction directly at the base (a connected client).
    pub fn execute(&self, spec: TxnSpec) -> TxnOutcome {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Execute { spec, reply: tx })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped reply")
    }

    /// Snapshot the master database.
    pub fn snapshot(&self) -> ObjectStore {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Snapshot { reply: tx })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped snapshot")
    }

    /// One sync round-trip. `None` when the base crashed before the
    /// reply arrived (or is down and did not answer within `timeout`) —
    /// the caller should retry; the dedup ids make the retry safe.
    fn try_sync(&self, pendings: Vec<Pending>, from: Lsn, timeout: Duration) -> Option<SyncReply> {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Sync {
                pendings,
                from,
                reply: tx,
            })
            .expect("base thread gone");
        rx.recv_timeout(timeout).ok()
    }

    /// Shut the base thread down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.sender.send(BaseMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.remnant = None;
    }
}

impl Drop for BaseServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Result summary of one [`MobileNode::sync`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncOutcome {
    /// Tentative transactions the base accepted.
    pub accepted: u64,
    /// Tentative transactions the base rejected (with diagnostics in
    /// [`MobileNode::last_rejections`]).
    pub rejected: u64,
    /// Replica commits applied to the local master versions.
    pub refreshed: u64,
}

/// A mobile (usually disconnected) client node.
pub struct MobileNode {
    id: NodeId,
    store: TentativeStore,
    clock: LamportClock,
    pending: Vec<Pending>,
    watermark: Lsn,
    /// Sequence counter feeding each tentative transaction's
    /// [`DedupId`].
    next_seq: u64,
    last_rejections: Vec<String>,
    tracer: SyncTraceHandle,
    // Logical tick for event timestamps: one per tentative execution
    // or sync, mirroring the base thread's convention.
    tick: u64,
}

impl MobileNode {
    /// A fresh mobile node over a `db_size`-object replica (sync before
    /// first use to pull the real master versions).
    pub fn new(id: NodeId, db_size: u64, initial_value: i64) -> Self {
        let mut store = TentativeStore::new(db_size);
        for i in 0..db_size {
            store
                .master_mut()
                .set(ObjectId(i), Value::Int(initial_value), Timestamp::ZERO);
        }
        MobileNode {
            id,
            store,
            clock: LamportClock::new(id),
            pending: Vec::new(),
            watermark: Lsn(0),
            next_seq: 0,
            last_rejections: Vec::new(),
            tracer: SyncTraceHandle::off(),
            tick: 0,
        }
    }

    /// Attach a tracer; the node emits tentative-commit, sync, and
    /// refresh events through it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: SyncTraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read through the tentative overlay ("if it updated documents …
    /// those tentative updates are all visible at the mobile node").
    pub fn read(&self, obj: ObjectId) -> &Value {
        &self.store.read(obj).value
    }

    /// Number of tentative transactions awaiting re-execution.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Diagnostics from the most recent sync's rejections.
    pub fn last_rejections(&self) -> &[String] {
        &self.last_rejections
    }

    /// Execute a tentative transaction against local tentative
    /// versions and log it for base re-execution.
    pub fn execute_tentative(&mut self, spec: TxnSpec) -> Vec<(ObjectId, Value)> {
        self.tick += 1;
        let now = SimTime(self.tick);
        let mut results = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = self.store.read(op.object).value.clone();
            let new = op.op.apply(&current);
            let ts = self.clock.tick();
            self.store.write_tentative(op.object, new.clone(), ts);
            results.push((op.object, new));
        }
        self.next_seq += 1;
        self.pending.push(Pending {
            dedup: DedupId {
                node: self.id,
                seq: self.next_seq,
            },
            spec,
            tentative_results: results.clone(),
        });
        let id = self.id;
        self.tracer
            .emit(|| Event::system(now, id, EventKind::TentativeCommit));
        results
    }

    /// Reconnect: §7's five steps — discard tentative versions, ship
    /// the tentative transactions in commit order, apply the deferred
    /// replica refresh, learn each transaction's fate.
    ///
    /// # Panics
    /// If the base crashes before replying; use
    /// [`MobileNode::sync_with_retry`] against an unreliable base.
    pub fn sync(&mut self, base: &BaseServer) -> SyncOutcome {
        self.try_sync(base, Duration::from_secs(10))
            .expect("base crashed mid-sync")
    }

    /// Like [`MobileNode::sync`], retrying with exponential backoff
    /// when the base crashes before replying or does not answer.
    /// Re-submission is safe: each tentative transaction carries a
    /// [`DedupId`], so a retry of a sync the base already committed
    /// returns the recorded outcomes instead of executing twice.
    /// Returns `None` if every attempt failed (pending transactions are
    /// retained for a later sync).
    pub fn sync_with_retry(&mut self, base: &BaseServer, max_attempts: u32) -> Option<SyncOutcome> {
        let mut backoff = Duration::from_millis(1);
        for attempt in 0..max_attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(64));
            }
            if let Some(outcome) = self.try_sync(base, Duration::from_millis(100)) {
                return Some(outcome);
            }
        }
        None
    }

    /// One sync attempt. On failure (`None`) the node keeps its
    /// tentative versions and pending queue untouched, so the attempt
    /// can be repeated verbatim.
    fn try_sync(&mut self, base: &BaseServer, timeout: Duration) -> Option<SyncOutcome> {
        self.tick += 1;
        let now = SimTime(self.tick);
        let id = self.id;
        self.tracer
            .emit(|| Event::system(now, id, EventKind::Reconnect));
        self.tracer
            .emit(|| Event::system(now, id, EventKind::MsgSent { to: NodeId(0) }));
        let reply = base.try_sync(self.pending.clone(), self.watermark, timeout)?;
        self.store.discard_tentative();
        self.pending.clear();
        let mut outcome = SyncOutcome::default();
        self.last_rejections.clear();
        for o in reply.outcomes {
            match o {
                TxnOutcome::Accepted(_) => {
                    outcome.accepted += 1;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::TentativeAccepted));
                }
                TxnOutcome::Rejected { reason } => {
                    outcome.rejected += 1;
                    self.last_rejections.push(reason);
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::TentativeRejected));
                    // A rejection is the two-tier scheme's analogue of
                    // a reconciliation: the user must be re-involved.
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::Reconcile));
                }
            }
        }
        for record in reply.refresh {
            outcome.refreshed += 1;
            for u in record.updates {
                self.store
                    .master_mut()
                    .apply_lww(u.object, u.new_ts, u.value);
            }
        }
        if outcome.refreshed > 0 {
            self.tracer
                .emit(|| Event::system(now, id, EventKind::ReplicaApply));
        }
        self.watermark = reply.head;
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_core::{Criterion, Op, Operation};

    fn debit(obj: u64, amount: i64) -> TxnSpec {
        TxnSpec::new(vec![Operation::new(ObjectId(obj), Op::Debit(amount))])
            .with_criterion(Criterion::NonNegative)
    }

    fn credit(obj: u64, amount: i64) -> TxnSpec {
        TxnSpec::new(vec![Operation::new(ObjectId(obj), Op::Add(amount))])
            .with_criterion(Criterion::NonNegative)
    }

    #[test]
    fn direct_base_execution_works() {
        let base = BaseServer::spawn(4, 100);
        match base.execute(debit(0, 30)) {
            TxnOutcome::Accepted(outputs) => {
                assert_eq!(outputs, vec![(ObjectId(0), Value::Int(70))]);
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
        base.shutdown();
    }

    #[test]
    fn base_rejects_overdraft() {
        let base = BaseServer::spawn(2, 50);
        match base.execute(debit(0, 80)) {
            TxnOutcome::Rejected { reason } => {
                assert!(reason.contains("NonNegative"), "{reason}");
            }
            o => panic!("overdraft accepted: {o:?}"),
        }
        // Master unchanged.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(50));
        base.shutdown();
    }

    #[test]
    fn tentative_updates_visible_locally_then_durable_after_sync() {
        let base = BaseServer::spawn(4, 100);
        let mut mobile = MobileNode::new(NodeId(1), 4, 100);
        mobile.execute_tentative(debit(2, 40));
        // Visible locally through the tentative overlay…
        assert_eq!(mobile.read(ObjectId(2)), &Value::Int(60));
        // …but not at the base yet.
        assert_eq!(base.snapshot().get(ObjectId(2)).value, Value::Int(100));
        let outcome = mobile.sync(&base);
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(base.snapshot().get(ObjectId(2)).value, Value::Int(60));
        // The refresh brought the committed value back to the mobile.
        assert_eq!(mobile.read(ObjectId(2)), &Value::Int(60));
        base.shutdown();
    }

    #[test]
    fn checkbook_race_second_spouse_bounces() {
        // The paper's joint account: $1000; you debit $800, your spouse
        // debits $700 — both fine on local state, but the bank only
        // honors the first.
        let base = BaseServer::spawn(1, 1000);
        let mut you = MobileNode::new(NodeId(1), 1, 1000);
        let mut spouse = MobileNode::new(NodeId(2), 1, 1000);
        you.execute_tentative(debit(0, 800));
        spouse.execute_tentative(debit(0, 700));
        assert_eq!(you.sync(&base).accepted, 1);
        let s = spouse.sync(&base);
        assert_eq!(s.accepted, 0);
        assert_eq!(s.rejected, 1);
        assert!(spouse.last_rejections()[0].contains("NonNegative"));
        // The bank's books stayed consistent and non-negative.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(200));
        // The spouse's replica converged to the bank's state.
        assert_eq!(spouse.read(ObjectId(0)), &Value::Int(200));
        base.shutdown();
    }

    #[test]
    fn commutative_transactions_all_accepted() {
        let base = BaseServer::spawn(8, 1_000_000);
        let mut nodes: Vec<MobileNode> = (1..=3)
            .map(|i| MobileNode::new(NodeId(i), 8, 1_000_000))
            .collect();
        for (k, m) in nodes.iter_mut().enumerate() {
            for i in 0..20u64 {
                let spec = if i % 2 == 0 {
                    credit(i % 8, (k as i64 + 1) * 10)
                } else {
                    debit(i % 8, 5)
                };
                m.execute_tentative(spec);
            }
        }
        let mut total_rejected = 0;
        for m in &mut nodes {
            total_rejected += m.sync(&base).rejected;
        }
        assert_eq!(total_rejected, 0, "commutative ops must all clear");
        // Everyone syncs again to pull the others' refreshes; all
        // replicas converge to the master state.
        let want = base.snapshot().digest();
        for m in &mut nodes {
            m.sync(&base);
            assert_eq!(m.store.master().digest(), want);
        }
        base.shutdown();
    }

    #[test]
    fn exact_match_rejected_after_intervening_update() {
        let base = BaseServer::spawn(2, 100);
        let mut mobile = MobileNode::new(NodeId(1), 2, 100);
        let spec = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Add(10))])
            .with_criterion(Criterion::ExactMatch);
        mobile.execute_tentative(spec);
        // Meanwhile a connected user moves the object at the base.
        base.execute(credit(0, 50));
        let s = mobile.sync(&base);
        assert_eq!(s.rejected, 1, "base result 160 != tentative 110");
        base.shutdown();
    }

    #[test]
    fn watermark_only_replays_new_commits() {
        let base = BaseServer::spawn(2, 0);
        let mut mobile = MobileNode::new(NodeId(1), 2, 0);
        base.execute(credit(0, 1));
        let s1 = mobile.sync(&base);
        assert_eq!(s1.refreshed, 1);
        base.execute(credit(0, 1));
        base.execute(credit(1, 1));
        let s2 = mobile.sync(&base);
        assert_eq!(s2.refreshed, 2, "only the two new commits replay");
        base.shutdown();
    }

    #[test]
    fn traced_two_tier_records_tentative_fates() {
        use repl_telemetry::{EventKind, RingBuffer};
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBuffer::new(256)));
        let handle = SyncTraceHandle::shared(&ring);
        let base = BaseServer::spawn_traced(1, 1000, handle.clone());
        let mut you = MobileNode::new(NodeId(1), 1, 1000).with_tracer(handle.clone());
        let mut spouse = MobileNode::new(NodeId(2), 1, 1000).with_tracer(handle);
        you.execute_tentative(debit(0, 800));
        spouse.execute_tentative(debit(0, 700));
        you.sync(&base);
        spouse.sync(&base);
        base.shutdown();
        let ring = ring.lock().unwrap();
        let count = |pred: fn(&EventKind) -> bool| ring.events().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::TentativeCommit)), 2);
        assert_eq!(count(|k| matches!(k, EventKind::TentativeAccepted)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::TentativeRejected)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::Reconcile)), 1);
        // The base committed one durable transaction and aborted the
        // spouse's incarnation.
        assert_eq!(count(|k| matches!(k, EventKind::TxnCommit)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::TxnAbort { .. })), 1);
    }

    #[test]
    fn reply_crash_retry_does_not_double_execute() {
        let base = BaseServer::spawn(1, 100);
        let mut mobile = MobileNode::new(NodeId(1), 1, 100);
        mobile.execute_tentative(debit(0, 30));
        // The next two syncs commit durably but the reply is eaten by a
        // crash; the third attempt gets through.
        base.inject_reply_crashes(2);
        let outcome = mobile
            .sync_with_retry(&base, 5)
            .expect("retry must eventually reach the base");
        assert_eq!(outcome.accepted, 1);
        // Deduplication: the debit ran exactly once despite three
        // submissions of the same pending transaction.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
        assert_eq!(mobile.read(ObjectId(0)), &Value::Int(70));
        base.shutdown();
    }

    #[test]
    fn base_crash_restart_recovers_master_from_log() {
        let mut base = BaseServer::spawn(2, 100);
        base.execute(debit(0, 25));
        base.execute(credit(1, 40));
        let before = base.snapshot().digest();
        base.crash();
        assert!(base.is_crashed());
        let replayed = base.restart();
        assert_eq!(replayed, 2, "both commits replay from the log");
        assert_eq!(base.snapshot().digest(), before, "master diverged");
        base.shutdown();
    }

    #[test]
    fn sync_against_crashed_base_fails_then_recovers() {
        let mut base = BaseServer::spawn(1, 100);
        let mut mobile = MobileNode::new(NodeId(1), 1, 100);
        mobile.execute_tentative(debit(0, 10));
        base.crash();
        // Every attempt times out against the dead base; the pending
        // queue survives for later.
        assert!(mobile.sync_with_retry(&base, 2).is_none());
        assert_eq!(mobile.pending_count(), 1);
        base.restart();
        let outcome = mobile
            .sync_with_retry(&base, 5)
            .expect("restarted base must answer");
        assert_eq!(outcome.accepted, 1);
        // The stale syncs queued while the base was down re-submitted
        // the same dedup id; the debit still ran exactly once.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(90));
        base.shutdown();
    }

    #[test]
    fn duplicate_sync_delivery_is_idempotent() {
        // Satellite: a duplicated sync (same pendings delivered twice —
        // e.g. the message layer duplicated the request) must not apply
        // tentative transactions twice.
        let base = BaseServer::spawn(1, 100);
        let mut mobile = MobileNode::new(NodeId(1), 1, 100);
        mobile.execute_tentative(debit(0, 30));
        let pendings = mobile.pending.clone();
        // Deliver the same sync payload twice, as a duplicating network
        // would.
        let r1 = base.try_sync(pendings.clone(), Lsn(0), Duration::from_secs(10));
        let r2 = base.try_sync(pendings, Lsn(0), Duration::from_secs(10));
        assert!(r1.is_some() && r2.is_some());
        assert_eq!(
            base.snapshot().get(ObjectId(0)).value,
            Value::Int(70),
            "duplicate delivery must not debit twice"
        );
        // Both deliveries report the same recorded outcome.
        let (o1, o2) = (r1.unwrap().outcomes, r2.unwrap().outcomes);
        assert_eq!(o1, o2);
        base.shutdown();
    }

    #[test]
    fn pending_queue_drains_in_commit_order() {
        let base = BaseServer::spawn(1, 10);
        let mut mobile = MobileNode::new(NodeId(1), 1, 10);
        // Sequence matters: debit 10 then credit 5 works in order
        // (10→0→5); reversed it would still work, but a second debit
        // of 6 only clears because the credit ran first.
        mobile.execute_tentative(debit(0, 10));
        mobile.execute_tentative(credit(0, 5));
        mobile.execute_tentative(debit(0, 4));
        assert_eq!(mobile.pending_count(), 3);
        let s = mobile.sync(&base);
        assert_eq!(s.accepted, 3);
        assert_eq!(mobile.pending_count(), 0);
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(1));
        base.shutdown();
    }
}
