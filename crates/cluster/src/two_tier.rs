//! A threaded two-tier deployment (§7) — the paper's solution running
//! on real OS threads and channels rather than the discrete-event
//! simulator.
//!
//! * [`BaseServer`] — one thread owning the master database. It
//!   executes base transactions under the lazy-master discipline,
//!   applies acceptance criteria, and streams its commit log to
//!   reconnecting clients.
//! * [`MobileNode`] — a disconnected client holding (master, tentative)
//!   dual versions. It executes tentative transactions locally, logs
//!   their input parameters, and re-submits them in commit order on
//!   [`MobileNode::sync`].
//!
//! ```
//! use repl_cluster::two_tier::{BaseServer, MobileNode};
//! use repl_core::{Criterion, Op, Operation, TxnSpec};
//! use repl_storage::{NodeId, ObjectId, Value};
//!
//! // A bank with 4 accounts of $100 each, and one offline customer.
//! let base = BaseServer::spawn(4, 100);
//! let mut mobile = MobileNode::new(NodeId(1), 4, 100);
//! let check = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Debit(30))])
//!     .with_criterion(Criterion::NonNegative);
//! mobile.execute_tentative(check);
//! assert_eq!(mobile.read(ObjectId(0)), &Value::Int(70)); // tentative view
//! let outcome = mobile.sync(&base);
//! assert_eq!(outcome.accepted, 1);
//! assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
//! base.shutdown();
//! ```

use crossbeam::channel::{unbounded, Receiver, Sender};
use repl_core::TxnSpec;
use repl_sim::SimTime;
use repl_storage::{
    CommitRecord, LamportClock, Lsn, NodeId, ObjectId, ObjectStore, TentativeStore, Timestamp,
    TxnId, Value,
};
use repl_telemetry::{AbortReason, Event, EventKind, SyncTraceHandle};
use std::thread::JoinHandle;

/// A tentative transaction awaiting base re-execution: the §7
/// "input parameters" capture plus the tentative outputs the acceptance
/// criterion compares against.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The transaction's specification (ops + criterion).
    pub spec: TxnSpec,
    /// The outputs the tentative execution produced.
    pub tentative_results: Vec<(ObjectId, Value)>,
}

/// Outcome of one re-executed tentative transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutcome {
    /// The base execution passed the acceptance criterion; these are
    /// the (durable) base outputs.
    Accepted(Vec<(ObjectId, Value)>),
    /// The acceptance criterion failed; the diagnostic explains why
    /// ("the originating node and person … are informed it failed and
    /// why it failed").
    Rejected {
        /// Human-readable failure diagnostic.
        reason: String,
    },
}

/// Reply to a [`MobileNode::sync`].
#[derive(Debug)]
struct SyncReply {
    outcomes: Vec<TxnOutcome>,
    refresh: Vec<CommitRecord>,
    head: Lsn,
}

enum BaseMsg {
    Execute {
        spec: TxnSpec,
        reply: Sender<TxnOutcome>,
    },
    Sync {
        pendings: Vec<Pending>,
        from: Lsn,
        reply: Sender<SyncReply>,
    },
    Snapshot {
        reply: Sender<ObjectStore>,
    },
    Shutdown,
}

struct BaseThread {
    master: ObjectStore,
    clock: LamportClock,
    log: repl_storage::CommitLog,
    inbox: Receiver<BaseMsg>,
    next_txn: u64,
    tracer: SyncTraceHandle,
    // The base thread has no simulated clock; events carry a logical
    // tick, one per executed base transaction.
    tick: u64,
}

impl BaseThread {
    fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                BaseMsg::Execute { spec, reply } => {
                    let outcome = self.execute(&spec, None);
                    let _ = reply.send(outcome);
                }
                BaseMsg::Sync {
                    pendings,
                    from,
                    reply,
                } => {
                    let outcomes = pendings
                        .iter()
                        .map(|p| self.execute(&p.spec, Some(&p.tentative_results)))
                        .collect();
                    let refresh = self.log.since(from).to_vec();
                    let _ = reply.send(SyncReply {
                        outcomes,
                        refresh,
                        head: self.log.head(),
                    });
                }
                BaseMsg::Snapshot { reply } => {
                    let _ = reply.send(self.master.clone());
                }
                BaseMsg::Shutdown => break,
            }
        }
        self.tracer.flush();
    }

    /// Execute one base transaction: buffer the writes, judge them with
    /// the acceptance criterion, install on success.
    fn execute(
        &mut self,
        spec: &TxnSpec,
        tentative: Option<&Vec<(ObjectId, Value)>>,
    ) -> TxnOutcome {
        self.tick += 1;
        let now = SimTime(self.tick);
        let mut buffered: Vec<(ObjectId, Value)> = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = buffered
                .iter()
                .rev()
                .find(|(o, _)| *o == op.object)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| self.master.get(op.object).value.clone());
            buffered.push((op.object, op.op.apply(&current)));
        }
        let accepted = match tentative {
            Some(t) => spec.criterion.accepts(&buffered, t),
            None => spec.criterion.accepts(&buffered, &buffered),
        };
        if !accepted {
            // The tentative fate (TentativeRejected) is emitted at the
            // originating mobile node, which knows its own identity;
            // the base records only that this incarnation died.
            self.tracer.emit(|| {
                Event::system(
                    now,
                    NodeId(0),
                    EventKind::TxnAbort {
                        reason: AbortReason::Conflict,
                    },
                )
            });
            return TxnOutcome::Rejected {
                reason: format!(
                    "acceptance criterion {:?} failed for outputs {:?}",
                    spec.criterion, buffered
                ),
            };
        }
        self.next_txn += 1;
        let txn = TxnId(self.next_txn);
        self.tracer
            .emit(|| Event::new(now, NodeId(0), txn, EventKind::TxnCommit));
        let mut updates = Vec::with_capacity(buffered.len());
        for (obj, value) in &buffered {
            let old_ts = self.master.get(*obj).ts;
            let new_ts = self.clock.tick();
            self.master.set(*obj, value.clone(), new_ts);
            updates.push(repl_storage::UpdateRecord {
                txn,
                object: *obj,
                old_ts,
                new_ts,
                value: value.clone(),
            });
        }
        self.log.append(txn, updates);
        TxnOutcome::Accepted(buffered)
    }
}

/// Handle to the base-node thread.
pub struct BaseServer {
    sender: Sender<BaseMsg>,
    handle: Option<JoinHandle<()>>,
}

impl BaseServer {
    /// Spawn the base server owning a `db_size`-object master database
    /// with every object initialized to `initial_value`.
    pub fn spawn(db_size: u64, initial_value: i64) -> Self {
        BaseServer::spawn_traced(db_size, initial_value, SyncTraceHandle::off())
    }

    /// Like [`BaseServer::spawn`], but the base thread emits telemetry
    /// events through `tracer` as it commits and rejects transactions.
    pub fn spawn_traced(db_size: u64, initial_value: i64, tracer: SyncTraceHandle) -> Self {
        let (tx, rx) = unbounded();
        let mut master = ObjectStore::new(db_size);
        for i in 0..db_size {
            master.set(ObjectId(i), Value::Int(initial_value), Timestamp::ZERO);
        }
        let thread = BaseThread {
            master,
            clock: LamportClock::new(NodeId(0)),
            log: repl_storage::CommitLog::new(),
            inbox: rx,
            next_txn: 0,
            tracer,
            tick: 0,
        };
        let handle = std::thread::Builder::new()
            .name("two-tier-base".to_owned())
            .spawn(move || thread.run())
            .expect("failed to spawn base thread");
        BaseServer {
            sender: tx,
            handle: Some(handle),
        }
    }

    /// Execute a transaction directly at the base (a connected client).
    pub fn execute(&self, spec: TxnSpec) -> TxnOutcome {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Execute { spec, reply: tx })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped reply")
    }

    /// Snapshot the master database.
    pub fn snapshot(&self) -> ObjectStore {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Snapshot { reply: tx })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped snapshot")
    }

    fn sync(&self, pendings: Vec<Pending>, from: Lsn) -> SyncReply {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Sync {
                pendings,
                from,
                reply: tx,
            })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped sync reply")
    }

    /// Shut the base thread down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.sender.send(BaseMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BaseServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Result summary of one [`MobileNode::sync`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncOutcome {
    /// Tentative transactions the base accepted.
    pub accepted: u64,
    /// Tentative transactions the base rejected (with diagnostics in
    /// [`MobileNode::last_rejections`]).
    pub rejected: u64,
    /// Replica commits applied to the local master versions.
    pub refreshed: u64,
}

/// A mobile (usually disconnected) client node.
pub struct MobileNode {
    id: NodeId,
    store: TentativeStore,
    clock: LamportClock,
    pending: Vec<Pending>,
    watermark: Lsn,
    last_rejections: Vec<String>,
    tracer: SyncTraceHandle,
    // Logical tick for event timestamps: one per tentative execution
    // or sync, mirroring the base thread's convention.
    tick: u64,
}

impl MobileNode {
    /// A fresh mobile node over a `db_size`-object replica (sync before
    /// first use to pull the real master versions).
    pub fn new(id: NodeId, db_size: u64, initial_value: i64) -> Self {
        let mut store = TentativeStore::new(db_size);
        for i in 0..db_size {
            store
                .master_mut()
                .set(ObjectId(i), Value::Int(initial_value), Timestamp::ZERO);
        }
        MobileNode {
            id,
            store,
            clock: LamportClock::new(id),
            pending: Vec::new(),
            watermark: Lsn(0),
            last_rejections: Vec::new(),
            tracer: SyncTraceHandle::off(),
            tick: 0,
        }
    }

    /// Attach a tracer; the node emits tentative-commit, sync, and
    /// refresh events through it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: SyncTraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read through the tentative overlay ("if it updated documents …
    /// those tentative updates are all visible at the mobile node").
    pub fn read(&self, obj: ObjectId) -> &Value {
        &self.store.read(obj).value
    }

    /// Number of tentative transactions awaiting re-execution.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Diagnostics from the most recent sync's rejections.
    pub fn last_rejections(&self) -> &[String] {
        &self.last_rejections
    }

    /// Execute a tentative transaction against local tentative
    /// versions and log it for base re-execution.
    pub fn execute_tentative(&mut self, spec: TxnSpec) -> Vec<(ObjectId, Value)> {
        self.tick += 1;
        let now = SimTime(self.tick);
        let mut results = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = self.store.read(op.object).value.clone();
            let new = op.op.apply(&current);
            let ts = self.clock.tick();
            self.store.write_tentative(op.object, new.clone(), ts);
            results.push((op.object, new));
        }
        self.pending.push(Pending {
            spec,
            tentative_results: results.clone(),
        });
        let id = self.id;
        self.tracer
            .emit(|| Event::system(now, id, EventKind::TentativeCommit));
        results
    }

    /// Reconnect: §7's five steps — discard tentative versions, ship
    /// the tentative transactions in commit order, apply the deferred
    /// replica refresh, learn each transaction's fate.
    pub fn sync(&mut self, base: &BaseServer) -> SyncOutcome {
        self.tick += 1;
        let now = SimTime(self.tick);
        let id = self.id;
        self.store.discard_tentative();
        let pendings = std::mem::take(&mut self.pending);
        self.tracer
            .emit(|| Event::system(now, id, EventKind::Reconnect));
        self.tracer
            .emit(|| Event::system(now, id, EventKind::MsgSent { to: NodeId(0) }));
        let reply = base.sync(pendings, self.watermark);
        let mut outcome = SyncOutcome::default();
        self.last_rejections.clear();
        for o in reply.outcomes {
            match o {
                TxnOutcome::Accepted(_) => {
                    outcome.accepted += 1;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::TentativeAccepted));
                }
                TxnOutcome::Rejected { reason } => {
                    outcome.rejected += 1;
                    self.last_rejections.push(reason);
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::TentativeRejected));
                    // A rejection is the two-tier scheme's analogue of
                    // a reconciliation: the user must be re-involved.
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::Reconcile));
                }
            }
        }
        for record in reply.refresh {
            outcome.refreshed += 1;
            for u in record.updates {
                self.store
                    .master_mut()
                    .apply_lww(u.object, u.new_ts, u.value);
            }
        }
        if outcome.refreshed > 0 {
            self.tracer
                .emit(|| Event::system(now, id, EventKind::ReplicaApply));
        }
        self.watermark = reply.head;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_core::{Criterion, Op, Operation};

    fn debit(obj: u64, amount: i64) -> TxnSpec {
        TxnSpec::new(vec![Operation::new(ObjectId(obj), Op::Debit(amount))])
            .with_criterion(Criterion::NonNegative)
    }

    fn credit(obj: u64, amount: i64) -> TxnSpec {
        TxnSpec::new(vec![Operation::new(ObjectId(obj), Op::Add(amount))])
            .with_criterion(Criterion::NonNegative)
    }

    #[test]
    fn direct_base_execution_works() {
        let base = BaseServer::spawn(4, 100);
        match base.execute(debit(0, 30)) {
            TxnOutcome::Accepted(outputs) => {
                assert_eq!(outputs, vec![(ObjectId(0), Value::Int(70))]);
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
        base.shutdown();
    }

    #[test]
    fn base_rejects_overdraft() {
        let base = BaseServer::spawn(2, 50);
        match base.execute(debit(0, 80)) {
            TxnOutcome::Rejected { reason } => {
                assert!(reason.contains("NonNegative"), "{reason}");
            }
            o => panic!("overdraft accepted: {o:?}"),
        }
        // Master unchanged.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(50));
        base.shutdown();
    }

    #[test]
    fn tentative_updates_visible_locally_then_durable_after_sync() {
        let base = BaseServer::spawn(4, 100);
        let mut mobile = MobileNode::new(NodeId(1), 4, 100);
        mobile.execute_tentative(debit(2, 40));
        // Visible locally through the tentative overlay…
        assert_eq!(mobile.read(ObjectId(2)), &Value::Int(60));
        // …but not at the base yet.
        assert_eq!(base.snapshot().get(ObjectId(2)).value, Value::Int(100));
        let outcome = mobile.sync(&base);
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(base.snapshot().get(ObjectId(2)).value, Value::Int(60));
        // The refresh brought the committed value back to the mobile.
        assert_eq!(mobile.read(ObjectId(2)), &Value::Int(60));
        base.shutdown();
    }

    #[test]
    fn checkbook_race_second_spouse_bounces() {
        // The paper's joint account: $1000; you debit $800, your spouse
        // debits $700 — both fine on local state, but the bank only
        // honors the first.
        let base = BaseServer::spawn(1, 1000);
        let mut you = MobileNode::new(NodeId(1), 1, 1000);
        let mut spouse = MobileNode::new(NodeId(2), 1, 1000);
        you.execute_tentative(debit(0, 800));
        spouse.execute_tentative(debit(0, 700));
        assert_eq!(you.sync(&base).accepted, 1);
        let s = spouse.sync(&base);
        assert_eq!(s.accepted, 0);
        assert_eq!(s.rejected, 1);
        assert!(spouse.last_rejections()[0].contains("NonNegative"));
        // The bank's books stayed consistent and non-negative.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(200));
        // The spouse's replica converged to the bank's state.
        assert_eq!(spouse.read(ObjectId(0)), &Value::Int(200));
        base.shutdown();
    }

    #[test]
    fn commutative_transactions_all_accepted() {
        let base = BaseServer::spawn(8, 1_000_000);
        let mut nodes: Vec<MobileNode> = (1..=3)
            .map(|i| MobileNode::new(NodeId(i), 8, 1_000_000))
            .collect();
        for (k, m) in nodes.iter_mut().enumerate() {
            for i in 0..20u64 {
                let spec = if i % 2 == 0 {
                    credit(i % 8, (k as i64 + 1) * 10)
                } else {
                    debit(i % 8, 5)
                };
                m.execute_tentative(spec);
            }
        }
        let mut total_rejected = 0;
        for m in &mut nodes {
            total_rejected += m.sync(&base).rejected;
        }
        assert_eq!(total_rejected, 0, "commutative ops must all clear");
        // Everyone syncs again to pull the others' refreshes; all
        // replicas converge to the master state.
        let want = base.snapshot().digest();
        for m in &mut nodes {
            m.sync(&base);
            assert_eq!(m.store.master().digest(), want);
        }
        base.shutdown();
    }

    #[test]
    fn exact_match_rejected_after_intervening_update() {
        let base = BaseServer::spawn(2, 100);
        let mut mobile = MobileNode::new(NodeId(1), 2, 100);
        let spec = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Add(10))])
            .with_criterion(Criterion::ExactMatch);
        mobile.execute_tentative(spec);
        // Meanwhile a connected user moves the object at the base.
        base.execute(credit(0, 50));
        let s = mobile.sync(&base);
        assert_eq!(s.rejected, 1, "base result 160 != tentative 110");
        base.shutdown();
    }

    #[test]
    fn watermark_only_replays_new_commits() {
        let base = BaseServer::spawn(2, 0);
        let mut mobile = MobileNode::new(NodeId(1), 2, 0);
        base.execute(credit(0, 1));
        let s1 = mobile.sync(&base);
        assert_eq!(s1.refreshed, 1);
        base.execute(credit(0, 1));
        base.execute(credit(1, 1));
        let s2 = mobile.sync(&base);
        assert_eq!(s2.refreshed, 2, "only the two new commits replay");
        base.shutdown();
    }

    #[test]
    fn traced_two_tier_records_tentative_fates() {
        use repl_telemetry::{EventKind, RingBuffer};
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBuffer::new(256)));
        let handle = SyncTraceHandle::shared(&ring);
        let base = BaseServer::spawn_traced(1, 1000, handle.clone());
        let mut you = MobileNode::new(NodeId(1), 1, 1000).with_tracer(handle.clone());
        let mut spouse = MobileNode::new(NodeId(2), 1, 1000).with_tracer(handle);
        you.execute_tentative(debit(0, 800));
        spouse.execute_tentative(debit(0, 700));
        you.sync(&base);
        spouse.sync(&base);
        base.shutdown();
        let ring = ring.lock().unwrap();
        let count = |pred: fn(&EventKind) -> bool| ring.events().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::TentativeCommit)), 2);
        assert_eq!(count(|k| matches!(k, EventKind::TentativeAccepted)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::TentativeRejected)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::Reconcile)), 1);
        // The base committed one durable transaction and aborted the
        // spouse's incarnation.
        assert_eq!(count(|k| matches!(k, EventKind::TxnCommit)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::TxnAbort { .. })), 1);
    }

    #[test]
    fn pending_queue_drains_in_commit_order() {
        let base = BaseServer::spawn(1, 10);
        let mut mobile = MobileNode::new(NodeId(1), 1, 10);
        // Sequence matters: debit 10 then credit 5 works in order
        // (10→0→5); reversed it would still work, but a second debit
        // of 6 only clears because the credit ran first.
        mobile.execute_tentative(debit(0, 10));
        mobile.execute_tentative(credit(0, 5));
        mobile.execute_tentative(debit(0, 4));
        assert_eq!(mobile.pending_count(), 3);
        let s = mobile.sync(&base);
        assert_eq!(s.accepted, 3);
        assert_eq!(mobile.pending_count(), 0);
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(1));
        base.shutdown();
    }
}
