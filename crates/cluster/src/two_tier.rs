//! A threaded two-tier deployment (§7) — the paper's solution running
//! on real OS threads and channels rather than the discrete-event
//! simulator.
//!
//! * [`BaseServer`] — one thread owning the master database. It
//!   executes base transactions under the lazy-master discipline,
//!   applies acceptance criteria, and streams its commit log to
//!   reconnecting clients.
//! * [`MobileNode`] — a disconnected client holding (master, tentative)
//!   dual versions. It executes tentative transactions locally, logs
//!   their input parameters, and re-submits them in commit order on
//!   [`MobileNode::sync`].
//!
//! ```
//! use repl_cluster::two_tier::{BaseServer, MobileNode};
//! use repl_core::{Criterion, Op, Operation, TxnSpec};
//! use repl_storage::{NodeId, ObjectId, Value};
//!
//! // A bank with 4 accounts of $100 each, and one offline customer.
//! let base = BaseServer::spawn(4, 100);
//! let mut mobile = MobileNode::new(NodeId(1), 4, 100);
//! let check = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Debit(30))])
//!     .with_criterion(Criterion::NonNegative);
//! mobile.execute_tentative(check);
//! assert_eq!(mobile.read(ObjectId(0)), &Value::Int(70)); // tentative view
//! let outcome = mobile.sync(&base);
//! assert_eq!(outcome.accepted, 1);
//! assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
//! base.shutdown();
//! ```

use crate::election::{self, Candidate, ElectionOutcome, Epoch, Tally, VoteReply, VoteRequest};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use repl_core::TxnSpec;
use repl_sim::{SimRng, SimTime};
use repl_storage::{
    CommitRecord, LamportClock, Lsn, NodeId, ObjectId, ObjectStore, TentativeStore, Timestamp,
    TxnId, Value,
};
use repl_telemetry::{AbortReason, Event, EventKind, RunMetrics, SyncTraceHandle};
use std::cell::RefCell;
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::Duration;

/// Globally unique identity of one tentative transaction, assigned at
/// its originating mobile node. The base remembers the outcome of every
/// id it has executed, so a re-submitted transaction (the mobile
/// retried because a crash ate the reply) returns its recorded fate
/// instead of executing twice — sync is exactly-once even over an
/// at-least-once retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DedupId {
    /// The originating mobile node.
    pub node: NodeId,
    /// That node's tentative-transaction sequence number.
    pub seq: u64,
}

/// A tentative transaction awaiting base re-execution: the §7
/// "input parameters" capture plus the tentative outputs the acceptance
/// criterion compares against.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Unique identity for at-most-once base execution.
    pub dedup: DedupId,
    /// The transaction's specification (ops + criterion).
    pub spec: TxnSpec,
    /// The outputs the tentative execution produced.
    pub tentative_results: Vec<(ObjectId, Value)>,
}

/// Outcome of one re-executed tentative transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutcome {
    /// The base execution passed the acceptance criterion; these are
    /// the (durable) base outputs.
    Accepted(Vec<(ObjectId, Value)>),
    /// The acceptance criterion failed; the diagnostic explains why
    /// ("the originating node and person … are informed it failed and
    /// why it failed").
    Rejected {
        /// Human-readable failure diagnostic.
        reason: String,
    },
}

/// Reply to a [`MobileNode::sync`] — the wire-level answer a
/// [`SyncTarget`] returns for one sync round-trip.
#[derive(Debug)]
pub struct SyncReply {
    /// One outcome per submitted [`Pending`], in submission order.
    pub outcomes: Vec<TxnOutcome>,
    /// Commit records newer than the mobile's watermark (the deferred
    /// replica refresh).
    pub refresh: Vec<CommitRecord>,
    /// The base commit-log head after this sync; the mobile's next
    /// watermark.
    pub head: Lsn,
    /// Replication sequence number covering this sync's base commits
    /// (0 when the target is an unreplicated [`BaseServer`] or the
    /// sync committed nothing). [`BaseGroup`] records it as an
    /// acknowledged write for the lost-commit oracle.
    pub repl_seq: u64,
}

/// Anything a [`MobileNode`] can sync against: the single
/// [`BaseServer`] or the replicated [`BaseGroup`].
pub trait SyncTarget {
    /// One sync round-trip. `None` when the base tier did not answer
    /// (crashed, down, or degraded below quorum) — the caller should
    /// retry; [`DedupId`]s make the retry exactly-once.
    fn try_sync(&self, pendings: Vec<Pending>, from: Lsn, timeout: Duration) -> Option<SyncReply>;
}

enum BaseMsg {
    Execute {
        spec: TxnSpec,
        reply: Sender<TxnOutcome>,
    },
    Sync {
        pendings: Vec<Pending>,
        from: Lsn,
        reply: Sender<SyncReply>,
    },
    Snapshot {
        reply: Sender<ObjectStore>,
    },
    /// Make the next `count` syncs commit durably but crash before the
    /// reply leaves — the classic at-most-once hazard the dedup map
    /// exists for.
    InjectReplyCrashes {
        count: u32,
    },
    /// Crash the base: the thread exits, volatile state (master, clock)
    /// is lost, durable state (commit log, dedup map) survives in the
    /// remnant.
    Crash,
    Shutdown,
}

/// Durable base state handed back by a crash, consumed by a restart.
struct BaseRemnant {
    inbox: Receiver<BaseMsg>,
    log: repl_storage::CommitLog,
    seen: HashMap<DedupId, TxnOutcome>,
    next_txn: u64,
    tracer: SyncTraceHandle,
    tick: u64,
}

struct BaseThread {
    master: ObjectStore,
    clock: LamportClock,
    log: repl_storage::CommitLog,
    /// Durable outcome of every dedup id ever executed. Consulted
    /// before re-executing a resubmitted tentative transaction.
    seen: HashMap<DedupId, TxnOutcome>,
    /// Pending injected reply-crashes (see
    /// [`BaseMsg::InjectReplyCrashes`]).
    drop_replies: u32,
    inbox: Receiver<BaseMsg>,
    next_txn: u64,
    tracer: SyncTraceHandle,
    // The base thread has no simulated clock; events carry a logical
    // tick, one per executed base transaction.
    tick: u64,
}

impl BaseThread {
    fn run(mut self) -> Option<BaseRemnant> {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                BaseMsg::Execute { spec, reply } => {
                    let outcome = self.execute(&spec, None);
                    let _ = reply.send(outcome);
                }
                BaseMsg::Sync {
                    pendings,
                    from,
                    reply,
                } => {
                    let outcomes = pendings
                        .iter()
                        .map(|p| match self.seen.get(&p.dedup) {
                            // Already executed in a previous (possibly
                            // reply-crashed) sync: return the recorded
                            // fate, do not run it again.
                            Some(outcome) => outcome.clone(),
                            None => {
                                let outcome = self.execute(&p.spec, Some(&p.tentative_results));
                                self.seen.insert(p.dedup, outcome.clone());
                                outcome
                            }
                        })
                        .collect();
                    let refresh = self.log.since(from).to_vec();
                    if self.drop_replies > 0 {
                        // Crash after commit, before reply: the work is
                        // durable but the client never hears back.
                        self.drop_replies -= 1;
                        let now = SimTime(self.tick);
                        self.tracer
                            .emit(|| Event::system(now, NodeId(0), EventKind::NodeCrash));
                        drop(reply);
                        continue;
                    }
                    let _ = reply.send(SyncReply {
                        outcomes,
                        refresh,
                        head: self.log.head(),
                        repl_seq: 0,
                    });
                }
                BaseMsg::Snapshot { reply } => {
                    let _ = reply.send(self.master.clone());
                }
                BaseMsg::InjectReplyCrashes { count } => {
                    self.drop_replies += count;
                }
                BaseMsg::Crash => {
                    let now = SimTime(self.tick);
                    self.tracer
                        .emit(|| Event::system(now, NodeId(0), EventKind::NodeCrash));
                    self.tracer.flush();
                    return Some(BaseRemnant {
                        inbox: self.inbox,
                        log: self.log,
                        seen: self.seen,
                        next_txn: self.next_txn,
                        tracer: self.tracer,
                        tick: self.tick,
                    });
                }
                BaseMsg::Shutdown => break,
            }
        }
        self.tracer.flush();
        None
    }

    /// Execute one base transaction: buffer the writes, judge them with
    /// the acceptance criterion, install on success.
    fn execute(
        &mut self,
        spec: &TxnSpec,
        tentative: Option<&Vec<(ObjectId, Value)>>,
    ) -> TxnOutcome {
        self.tick += 1;
        run_base_txn(
            NodeId(0),
            &mut self.master,
            &mut self.clock,
            &mut self.log,
            &mut self.next_txn,
            &self.tracer,
            SimTime(self.tick),
            spec,
            tentative,
        )
    }
}

/// Execute one base transaction against a (`master`, `clock`, `log`)
/// triple: buffer the writes, judge them with the acceptance criterion,
/// install on success. Shared by the single [`BaseServer`] thread and
/// every [`BaseGroup`] replica, so a failover cannot change the
/// acceptance semantics.
#[allow(clippy::too_many_arguments)]
fn run_base_txn(
    node: NodeId,
    master: &mut ObjectStore,
    clock: &mut LamportClock,
    log: &mut repl_storage::CommitLog,
    next_txn: &mut u64,
    tracer: &SyncTraceHandle,
    now: SimTime,
    spec: &TxnSpec,
    tentative: Option<&Vec<(ObjectId, Value)>>,
) -> TxnOutcome {
    let mut buffered: Vec<(ObjectId, Value)> = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        let current = buffered
            .iter()
            .rev()
            .find(|(o, _)| *o == op.object)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| master.get(op.object).value.clone());
        buffered.push((op.object, op.op.apply(&current)));
    }
    let accepted = match tentative {
        Some(t) => spec.criterion.accepts(&buffered, t),
        None => spec.criterion.accepts(&buffered, &buffered),
    };
    if !accepted {
        // The tentative fate (TentativeRejected) is emitted at the
        // originating mobile node, which knows its own identity;
        // the base records only that this incarnation died.
        tracer.emit(|| {
            Event::system(
                now,
                node,
                EventKind::TxnAbort {
                    reason: AbortReason::Conflict,
                },
            )
        });
        return TxnOutcome::Rejected {
            reason: format!(
                "acceptance criterion {:?} failed for outputs {:?}",
                spec.criterion, buffered
            ),
        };
    }
    *next_txn += 1;
    let txn = TxnId(*next_txn);
    tracer.emit(|| Event::new(now, node, txn, EventKind::TxnCommit));
    let mut updates = Vec::with_capacity(buffered.len());
    for (obj, value) in &buffered {
        let old_ts = master.get(*obj).ts;
        let new_ts = clock.tick();
        master.set(*obj, value.clone(), new_ts);
        updates.push(repl_storage::UpdateRecord {
            txn,
            object: *obj,
            old_ts,
            new_ts,
            value: value.clone(),
        });
    }
    log.append(txn, updates);
    TxnOutcome::Accepted(buffered)
}

/// Handle to the base-node thread.
pub struct BaseServer {
    sender: Sender<BaseMsg>,
    handle: Option<JoinHandle<Option<BaseRemnant>>>,
    remnant: Option<BaseRemnant>,
    db_size: u64,
    initial_value: i64,
}

impl BaseServer {
    /// Spawn the base server owning a `db_size`-object master database
    /// with every object initialized to `initial_value`.
    pub fn spawn(db_size: u64, initial_value: i64) -> Self {
        BaseServer::spawn_traced(db_size, initial_value, SyncTraceHandle::off())
    }

    /// Like [`BaseServer::spawn`], but the base thread emits telemetry
    /// events through `tracer` as it commits and rejects transactions.
    pub fn spawn_traced(db_size: u64, initial_value: i64, tracer: SyncTraceHandle) -> Self {
        let (tx, rx) = unbounded();
        let mut master = ObjectStore::new(db_size);
        for i in 0..db_size {
            master.set(ObjectId(i), Value::Int(initial_value), Timestamp::ZERO);
        }
        let thread = BaseThread {
            master,
            clock: LamportClock::new(NodeId(0)),
            log: repl_storage::CommitLog::new(),
            seen: HashMap::new(),
            drop_replies: 0,
            inbox: rx,
            next_txn: 0,
            tracer,
            tick: 0,
        };
        let handle = std::thread::Builder::new()
            .name("two-tier-base".to_owned())
            .spawn(move || thread.run())
            .expect("failed to spawn base thread");
        BaseServer {
            sender: tx,
            handle: Some(handle),
            remnant: None,
            db_size,
            initial_value,
        }
    }

    /// Arrange for the next `count` syncs to commit durably but crash
    /// before replying. Clients observe a dead connection and must
    /// retry; the dedup map guarantees the retry does not re-execute.
    pub fn inject_reply_crashes(&self, count: u32) {
        self.sender
            .send(BaseMsg::InjectReplyCrashes { count })
            .expect("base thread gone");
    }

    /// Crash the base server: the thread exits, losing the master
    /// store and clock; the commit log and dedup map survive. Requests
    /// sent while crashed queue up and are served after
    /// [`BaseServer::restart`].
    ///
    /// # Panics
    /// If the base is already crashed.
    pub fn crash(&mut self) {
        assert!(self.try_crash(), "base already crashed");
    }

    /// Non-panicking [`BaseServer::crash`]: returns `false` (a no-op)
    /// when the base is already down, so overlapping fault-plan crash
    /// windows degrade to nothing instead of aborting the run.
    pub fn try_crash(&mut self) -> bool {
        if self.remnant.is_some() || self.handle.is_none() {
            return false;
        }
        self.sender.send(BaseMsg::Crash).expect("base thread gone");
        let handle = self.handle.take().expect("crashed base has no thread");
        let remnant = handle.join().expect("base thread panicked");
        self.remnant = Some(remnant.expect("crash must yield a remnant"));
        true
    }

    /// Restart a crashed base: rebuild the master database by replaying
    /// the durable commit log over the initial state, restore the clock
    /// from the replayed timestamps, and resume on the original inbox.
    /// Returns the number of committed transactions replayed.
    ///
    /// # Panics
    /// If the base is not crashed.
    pub fn restart(&mut self) -> u64 {
        self.try_restart().expect("restarting a live base")
    }

    /// Non-panicking [`BaseServer::restart`]: `None` (a no-op) when the
    /// base is not crashed.
    pub fn try_restart(&mut self) -> Option<u64> {
        let remnant = self.remnant.take()?;
        let mut master = ObjectStore::new(self.db_size);
        for i in 0..self.db_size {
            master.set(ObjectId(i), Value::Int(self.initial_value), Timestamp::ZERO);
        }
        let mut clock = LamportClock::new(NodeId(0));
        let mut replayed = 0;
        for record in remnant.log.since(Lsn(0)) {
            replayed += 1;
            for u in &record.updates {
                clock.observe(u.new_ts);
                master.set(u.object, u.value.clone(), u.new_ts);
            }
        }
        let now = SimTime(remnant.tick);
        remnant.tracer.emit(|| {
            Event::system(
                now,
                NodeId(0),
                EventKind::RecoveryReplay { messages: replayed },
            )
        });
        remnant
            .tracer
            .emit(|| Event::system(now, NodeId(0), EventKind::NodeRestart));
        let thread = BaseThread {
            master,
            clock,
            log: remnant.log,
            seen: remnant.seen,
            drop_replies: 0,
            inbox: remnant.inbox,
            next_txn: remnant.next_txn,
            tracer: remnant.tracer,
            tick: remnant.tick,
        };
        self.handle = Some(
            std::thread::Builder::new()
                .name("two-tier-base".to_owned())
                .spawn(move || thread.run())
                .expect("failed to respawn base thread"),
        );
        Some(replayed)
    }

    /// Whether the base is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.remnant.is_some()
    }

    /// Execute a transaction directly at the base (a connected client).
    pub fn execute(&self, spec: TxnSpec) -> TxnOutcome {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Execute { spec, reply: tx })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped reply")
    }

    /// Snapshot the master database.
    pub fn snapshot(&self) -> ObjectStore {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Snapshot { reply: tx })
            .expect("base thread gone");
        rx.recv().expect("base thread dropped snapshot")
    }

    /// Shut the base thread down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let _ = self.sender.send(BaseMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.remnant = None;
    }
}

impl SyncTarget for BaseServer {
    /// One sync round-trip. `None` when the base crashed before the
    /// reply arrived (or is down and did not answer within `timeout`) —
    /// the caller should retry; the dedup ids make the retry safe.
    fn try_sync(&self, pendings: Vec<Pending>, from: Lsn, timeout: Duration) -> Option<SyncReply> {
        let (tx, rx) = unbounded();
        self.sender
            .send(BaseMsg::Sync {
                pendings,
                from,
                reply: tx,
            })
            .expect("base thread gone");
        rx.recv_timeout(timeout).ok()
    }
}

impl Drop for BaseServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Backoff schedule for [`MobileNode::sync_with_retry`]: exponential
/// doubling from `base` capped at `cap`, with an optional seeded jitter
/// fraction so colliding retries decorrelate while tests stay
/// deterministic (same seed ⇒ same delays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First-retry delay (doubles every attempt).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 - jitter/2, 1 + jitter/2]`. Zero (the
    /// default) draws nothing and reproduces the fixed schedule.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Per-attempt reply timeout.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    /// The historical schedule: 1 ms → 64 ms doubling, no jitter,
    /// 100 ms per-attempt timeout.
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
            jitter: 0.0,
            seed: 0,
            attempt_timeout: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The delay before retry `attempt` (1-based). Draws from `rng`
    /// only when `jitter > 0`, so a zero-jitter policy is RNG-free.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> Duration {
        let doubled = self
            .base
            .saturating_mul(
                1u32.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.cap);
        if self.jitter <= 0.0 {
            return doubled;
        }
        let scale = 1.0 - self.jitter / 2.0 + self.jitter * rng.next_f64();
        doubled.mul_f64(scale.max(0.0))
    }
}

/// Result summary of one [`MobileNode::sync`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncOutcome {
    /// Tentative transactions the base accepted.
    pub accepted: u64,
    /// Tentative transactions the base rejected (with diagnostics in
    /// [`MobileNode::last_rejections`]).
    pub rejected: u64,
    /// Replica commits applied to the local master versions.
    pub refreshed: u64,
}

/// A mobile (usually disconnected) client node.
pub struct MobileNode {
    id: NodeId,
    store: TentativeStore,
    clock: LamportClock,
    pending: Vec<Pending>,
    watermark: Lsn,
    /// Sequence counter feeding each tentative transaction's
    /// [`DedupId`].
    next_seq: u64,
    last_rejections: Vec<String>,
    tracer: SyncTraceHandle,
    retry: RetryPolicy,
    retry_rng: SimRng,
    // Logical tick for event timestamps: one per tentative execution
    // or sync, mirroring the base thread's convention.
    tick: u64,
}

impl MobileNode {
    /// A fresh mobile node over a `db_size`-object replica (sync before
    /// first use to pull the real master versions).
    pub fn new(id: NodeId, db_size: u64, initial_value: i64) -> Self {
        let mut store = TentativeStore::new(db_size);
        for i in 0..db_size {
            store
                .master_mut()
                .set(ObjectId(i), Value::Int(initial_value), Timestamp::ZERO);
        }
        MobileNode {
            id,
            store,
            clock: LamportClock::new(id),
            pending: Vec::new(),
            watermark: Lsn(0),
            next_seq: 0,
            last_rejections: Vec::new(),
            tracer: SyncTraceHandle::off(),
            retry: RetryPolicy::default(),
            retry_rng: SimRng::stream(0, "mobile-retry"),
            tick: 0,
        }
    }

    /// Attach a tracer; the node emits tentative-commit, sync, and
    /// refresh events through it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: SyncTraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Replace the retry backoff schedule (and reseed its jitter
    /// stream; the node id decorrelates nodes sharing one policy).
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_rng = SimRng::stream(policy.seed ^ u64::from(self.id.0), "mobile-retry");
        self.retry = policy;
        self
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read through the tentative overlay ("if it updated documents …
    /// those tentative updates are all visible at the mobile node").
    pub fn read(&self, obj: ObjectId) -> &Value {
        &self.store.read(obj).value
    }

    /// Number of tentative transactions awaiting re-execution.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Diagnostics from the most recent sync's rejections.
    pub fn last_rejections(&self) -> &[String] {
        &self.last_rejections
    }

    /// Execute a tentative transaction against local tentative
    /// versions and log it for base re-execution.
    pub fn execute_tentative(&mut self, spec: TxnSpec) -> Vec<(ObjectId, Value)> {
        self.tick += 1;
        let now = SimTime(self.tick);
        let mut results = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = self.store.read(op.object).value.clone();
            let new = op.op.apply(&current);
            let ts = self.clock.tick();
            self.store.write_tentative(op.object, new.clone(), ts);
            results.push((op.object, new));
        }
        self.next_seq += 1;
        self.pending.push(Pending {
            dedup: DedupId {
                node: self.id,
                seq: self.next_seq,
            },
            spec,
            tentative_results: results.clone(),
        });
        let id = self.id;
        self.tracer
            .emit(|| Event::system(now, id, EventKind::TentativeCommit));
        results
    }

    /// Reconnect: §7's five steps — discard tentative versions, ship
    /// the tentative transactions in commit order, apply the deferred
    /// replica refresh, learn each transaction's fate.
    ///
    /// # Panics
    /// If the base crashes before replying; use
    /// [`MobileNode::sync_with_retry`] against an unreliable base.
    pub fn sync(&mut self, base: &impl SyncTarget) -> SyncOutcome {
        self.try_sync(base, Duration::from_secs(10))
            .expect("base crashed mid-sync")
    }

    /// Like [`MobileNode::sync`], retrying on the node's
    /// [`RetryPolicy`] backoff schedule when the base crashes before
    /// replying or does not answer. Re-submission is safe: each
    /// tentative transaction carries a [`DedupId`], so a retry of a
    /// sync the base already committed returns the recorded outcomes
    /// instead of executing twice — including when a failover put a
    /// *different* replica behind the same [`SyncTarget`] between
    /// attempts. Returns `None` if every attempt failed (pending
    /// transactions are retained for a later sync). Each re-attempt
    /// emits a [`EventKind::SyncRetried`] event.
    pub fn sync_with_retry(
        &mut self,
        base: &impl SyncTarget,
        max_attempts: u32,
    ) -> Option<SyncOutcome> {
        for attempt in 0..max_attempts {
            if attempt > 0 {
                let delay = self.retry.backoff(attempt, &mut self.retry_rng);
                let (id, now) = (self.id, SimTime(self.tick));
                self.tracer
                    .emit(|| Event::system(now, id, EventKind::SyncRetried { attempt }));
                std::thread::sleep(delay);
            }
            if let Some(outcome) = self.try_sync(base, self.retry.attempt_timeout) {
                return Some(outcome);
            }
        }
        None
    }

    /// One sync attempt. On failure (`None`) the node keeps its
    /// tentative versions and pending queue untouched, so the attempt
    /// can be repeated verbatim.
    fn try_sync(&mut self, base: &impl SyncTarget, timeout: Duration) -> Option<SyncOutcome> {
        self.tick += 1;
        let now = SimTime(self.tick);
        let id = self.id;
        self.tracer
            .emit(|| Event::system(now, id, EventKind::Reconnect));
        self.tracer
            .emit(|| Event::system(now, id, EventKind::MsgSent { to: NodeId(0) }));
        let reply = base.try_sync(self.pending.clone(), self.watermark, timeout)?;
        self.store.discard_tentative();
        self.pending.clear();
        let mut outcome = SyncOutcome::default();
        self.last_rejections.clear();
        for o in reply.outcomes {
            match o {
                TxnOutcome::Accepted(_) => {
                    outcome.accepted += 1;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::TentativeAccepted));
                }
                TxnOutcome::Rejected { reason } => {
                    outcome.rejected += 1;
                    self.last_rejections.push(reason);
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::TentativeRejected));
                    // A rejection is the two-tier scheme's analogue of
                    // a reconciliation: the user must be re-involved.
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::Reconcile));
                }
            }
        }
        for record in reply.refresh {
            outcome.refreshed += 1;
            for u in record.updates {
                self.store
                    .master_mut()
                    .apply_lww(u.object, u.new_ts, u.value);
            }
        }
        if outcome.refreshed > 0 {
            self.tracer
                .emit(|| Event::system(now, id, EventKind::ReplicaApply));
        }
        self.watermark = reply.head;
        Some(outcome)
    }
}

// ─────────────────────── replicated base tier ───────────────────────

/// Generous reply deadline for round-trips to a replica the handle
/// believes is live. In-process replicas answer in microseconds; a
/// dead one is detected by its dropped reply sender (disconnect), not
/// by this deadline, so the timeout never decides an outcome in a
/// healthy run.
const LIVE_TIMEOUT: Duration = Duration::from_secs(10);

/// One replication shipment, primary → backups: the commit records one
/// sync (or direct execute) produced, plus the [`DedupId`] outcomes it
/// decided, stamped with the shipping primary's epoch. Backups fence
/// stale epochs and skip records at or below their log head, so
/// redelivery — queued appends replayed after a restart — is harmless.
#[derive(Debug, Clone)]
struct ReplBatch {
    epoch: Epoch,
    records: Vec<CommitRecord>,
    outcomes: Vec<(DedupId, TxnOutcome)>,
}

/// A replica's answer to a status probe: its electable state plus the
/// cumulative fence counter.
#[derive(Debug, Clone, Copy)]
struct ReplicaStatus {
    epoch: Epoch,
    head: u64,
    fenced: u64,
}

enum GroupMsg {
    Sync {
        pendings: Vec<Pending>,
        from: Lsn,
        reply: Sender<SyncReply>,
    },
    Execute {
        spec: TxnSpec,
        /// The outcome plus the replicated-log head after it, so the
        /// handle can record the acknowledged write.
        reply: Sender<(TxnOutcome, u64)>,
    },
    Append {
        batch: ReplBatch,
    },
    Status {
        reply: Sender<ReplicaStatus>,
    },
    RequestVote {
        req: VoteRequest,
        reply: Sender<VoteReply>,
    },
    BecomePrimary {
        epoch: Epoch,
        reply: Sender<u64>,
    },
    /// Anti-entropy log transfer: absorb `records`/`outcomes` under
    /// `epoch`, reply with the log head afterwards.
    CatchUp {
        epoch: Epoch,
        records: Vec<CommitRecord>,
        outcomes: Vec<(DedupId, TxnOutcome)>,
        reply: Sender<u64>,
    },
    FetchLog {
        from: Lsn,
        #[allow(clippy::type_complexity)]
        reply: Sender<(Vec<CommitRecord>, Vec<(DedupId, TxnOutcome)>)>,
    },
    Read {
        obj: ObjectId,
        reply: Sender<Value>,
    },
    Snapshot {
        reply: Sender<ObjectStore>,
    },
    /// Make the next committing sync commit and replicate durably, then
    /// crash before the reply leaves — the failover analogue of
    /// [`BaseMsg::InjectReplyCrashes`].
    InjectCommitCrash,
    Crash,
    Shutdown,
}

/// Durable replica state handed back by a crash, consumed by a restart.
/// The inbox doubles as the durable message queue: appends shipped to a
/// down replica wait here and replay on restart.
struct ReplicaRemnant {
    inbox: Receiver<GroupMsg>,
    log: repl_storage::CommitLog,
    seen: HashMap<DedupId, TxnOutcome>,
    epoch: Epoch,
    next_txn: u64,
    fenced: u64,
    tick: u64,
}

struct ReplicaThread {
    node: NodeId,
    is_primary: bool,
    epoch: Epoch,
    master: ObjectStore,
    clock: LamportClock,
    log: repl_storage::CommitLog,
    seen: HashMap<DedupId, TxnOutcome>,
    fenced: u64,
    /// All replicas' senders, own slot `None`.
    peers: Vec<Option<Sender<GroupMsg>>>,
    inbox: Receiver<GroupMsg>,
    next_txn: u64,
    commit_crashes: u32,
    tracer: SyncTraceHandle,
    tick: u64,
}

impl ReplicaThread {
    fn run(mut self) -> Option<ReplicaRemnant> {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                GroupMsg::Sync {
                    pendings,
                    from,
                    reply,
                } => {
                    if !self.is_primary {
                        // A sync routed before a deposition reached us;
                        // dropping the reply makes the mobile retry
                        // (and the retry is exactly-once by dedup id).
                        drop(reply);
                        continue;
                    }
                    let start = self.log.head();
                    let mut outcomes = Vec::with_capacity(pendings.len());
                    let mut decided = Vec::new();
                    for p in &pendings {
                        match self.seen.get(&p.dedup) {
                            // Executed in a previous reign or a
                            // reply-crashed sync: return the recorded
                            // fate — exactly-once across failover.
                            Some(o) => outcomes.push(o.clone()),
                            None => {
                                let o = self.execute(&p.spec, Some(&p.tentative_results));
                                self.seen.insert(p.dedup, o.clone());
                                decided.push((p.dedup, o.clone()));
                                outcomes.push(o);
                            }
                        }
                    }
                    self.ship(start, decided);
                    let refresh = self.log.since(from).to_vec();
                    let head = self.log.head();
                    if self.commit_crashes > 0 {
                        // Commit and replication are durable; die
                        // before the reply leaves.
                        self.commit_crashes -= 1;
                        let (node, now) = (self.node, SimTime(self.tick));
                        self.tracer
                            .emit(|| Event::system(now, node, EventKind::NodeCrash));
                        self.tracer.flush();
                        drop(reply);
                        return Some(self.into_remnant());
                    }
                    let _ = reply.send(SyncReply {
                        outcomes,
                        refresh,
                        head,
                        repl_seq: head.0,
                    });
                }
                GroupMsg::Execute { spec, reply } => {
                    if !self.is_primary {
                        drop(reply);
                        continue;
                    }
                    let start = self.log.head();
                    let outcome = self.execute(&spec, None);
                    self.ship(start, Vec::new());
                    let _ = reply.send((outcome, self.log.head().0));
                }
                GroupMsg::Append { batch } => {
                    self.absorb(batch);
                }
                GroupMsg::Status { reply } => {
                    let _ = reply.send(ReplicaStatus {
                        epoch: self.epoch,
                        head: self.log.head().0,
                        fenced: self.fenced,
                    });
                }
                GroupMsg::RequestVote { req, reply } => {
                    let granted = election::grant_vote(self.epoch, self.log.head().0, &req);
                    if granted {
                        self.epoch = req.epoch;
                    }
                    let _ = reply.send(VoteReply {
                        from: self.node,
                        granted,
                        epoch: self.epoch,
                    });
                }
                GroupMsg::BecomePrimary { epoch, reply } => {
                    self.epoch = self.epoch.max(epoch);
                    self.is_primary = true;
                    let _ = reply.send(self.log.head().0);
                }
                GroupMsg::CatchUp {
                    epoch,
                    records,
                    outcomes,
                    reply,
                } => {
                    let before = self.log.head().0;
                    self.absorb(ReplBatch {
                        epoch,
                        records,
                        outcomes,
                    });
                    let applied = self.log.head().0 - before;
                    self.tick += 1;
                    let (node, now, e) = (self.node, SimTime(self.tick), self.epoch.0);
                    self.tracer.emit(|| {
                        Event::system(
                            now,
                            node,
                            EventKind::CatchUpComplete {
                                epoch: e,
                                records: applied,
                            },
                        )
                    });
                    let _ = reply.send(self.log.head().0);
                }
                GroupMsg::FetchLog { from, reply } => {
                    let records = self.log.since(from).to_vec();
                    let outcomes = self.seen.iter().map(|(d, o)| (*d, o.clone())).collect();
                    let _ = reply.send((records, outcomes));
                }
                GroupMsg::Read { obj, reply } => {
                    let _ = reply.send(self.master.get(obj).value.clone());
                }
                GroupMsg::Snapshot { reply } => {
                    let _ = reply.send(self.master.clone());
                }
                GroupMsg::InjectCommitCrash => {
                    self.commit_crashes += 1;
                }
                GroupMsg::Crash => {
                    let (node, now) = (self.node, SimTime(self.tick));
                    self.tracer
                        .emit(|| Event::system(now, node, EventKind::NodeCrash));
                    self.tracer.flush();
                    return Some(self.into_remnant());
                }
                GroupMsg::Shutdown => break,
            }
        }
        self.tracer.flush();
        None
    }

    fn execute(
        &mut self,
        spec: &TxnSpec,
        tentative: Option<&Vec<(ObjectId, Value)>>,
    ) -> TxnOutcome {
        self.tick += 1;
        run_base_txn(
            self.node,
            &mut self.master,
            &mut self.clock,
            &mut self.log,
            &mut self.next_txn,
            &self.tracer,
            SimTime(self.tick),
            spec,
            tentative,
        )
    }

    /// Ship everything committed since `start` (plus the dedup
    /// outcomes decided alongside) to every peer. Sends to a crashed
    /// peer queue in its durable inbox and replay on restart.
    fn ship(&mut self, start: Lsn, decided: Vec<(DedupId, TxnOutcome)>) {
        let records = self.log.since(start).to_vec();
        if records.is_empty() && decided.is_empty() {
            return;
        }
        let batch = ReplBatch {
            epoch: self.epoch,
            records,
            outcomes: decided,
        };
        let (node, now, lsn) = (self.node, SimTime(self.tick), self.log.head());
        for (i, peer) in self.peers.iter().enumerate() {
            if let Some(tx) = peer {
                let to = NodeId(i as u32);
                self.tracer
                    .emit(|| Event::system(now, node, EventKind::ReplicaSend { to, lsn }));
                let _ = tx.send(GroupMsg::Append {
                    batch: batch.clone(),
                });
            }
        }
    }

    /// Absorb a replication batch: fence it if its epoch is stale,
    /// otherwise adopt the epoch and apply the records this replica
    /// does not yet hold (log append + master install + clock advance).
    fn absorb(&mut self, batch: ReplBatch) {
        if batch.epoch < self.epoch {
            self.fenced += 1;
            self.tick += 1;
            let (node, now) = (self.node, SimTime(self.tick));
            let (stale, current) = (batch.epoch.0, self.epoch.0);
            self.tracer
                .emit(|| Event::system(now, node, EventKind::EpochFenced { stale, current }));
            return;
        }
        self.epoch = batch.epoch;
        for record in batch.records {
            if record.lsn < self.log.head() {
                continue; // already replicated
            }
            for u in &record.updates {
                self.clock.observe(u.new_ts);
                self.master.apply_lww(u.object, u.new_ts, u.value.clone());
            }
            self.next_txn = self.next_txn.max(record.txn.0);
            self.log.append(record.txn, record.updates);
        }
        for (dedup, outcome) in batch.outcomes {
            self.seen.entry(dedup).or_insert(outcome);
        }
    }

    fn into_remnant(self) -> ReplicaRemnant {
        ReplicaRemnant {
            inbox: self.inbox,
            log: self.log,
            seen: self.seen,
            epoch: self.epoch,
            next_txn: self.next_txn,
            fenced: self.fenced,
            tick: self.tick,
        }
    }
}

struct GroupInner {
    senders: Vec<Sender<GroupMsg>>,
    handles: Vec<Option<JoinHandle<Option<ReplicaRemnant>>>>,
    remnants: Vec<Option<ReplicaRemnant>>,
    /// Index of the current primary, `None` while leaderless.
    primary: Option<usize>,
    /// The group's epoch as the handle last installed it.
    epoch: Epoch,
    /// Driver-advanced logical clock ([`BaseGroup::advance_to`]);
    /// unavailability windows are measured in these ticks, so the
    /// metrics are a function of the schedule, not of wall time.
    now: u64,
    /// Tick at which the current leaderless interval began.
    down_since: Option<u64>,
    /// Every `(epoch, leader)` installation, for the leader-safety
    /// oracle.
    leadership: Vec<(u64, NodeId)>,
    /// Every `(repl_seq, epoch)` acknowledged to a client, for the
    /// lost-commit oracle.
    acked: Vec<(u64, u64)>,
    elections: u64,
    metrics: RunMetrics,
    tracer: SyncTraceHandle,
    db_size: u64,
    initial_value: i64,
}

impl GroupInner {
    fn live(&self, idx: usize) -> bool {
        self.handles[idx].is_some()
    }

    /// Join any replica thread that exited on its own (a commit-crash)
    /// and keep its remnant, demoting it from the primary slot.
    fn reap(&mut self) {
        for i in 0..self.handles.len() {
            if self.handles[i].as_ref().is_some_and(|h| h.is_finished()) {
                self.collect(i);
            }
        }
    }

    /// Join replica `idx` (blocking until its thread exits) and keep
    /// its remnant. Starts the unavailability clock if it was primary.
    fn collect(&mut self, idx: usize) {
        if let Some(h) = self.handles[idx].take() {
            let remnant = h.join().expect("replica thread panicked");
            self.remnants[idx] = Some(remnant.expect("dead replica must yield a remnant"));
            if self.primary == Some(idx) {
                self.primary = None;
                self.down_since.get_or_insert(self.now);
            }
        }
    }

    fn status(&self, idx: usize) -> Option<ReplicaStatus> {
        let (tx, rx) = unbounded();
        self.senders[idx]
            .send(GroupMsg::Status { reply: tx })
            .ok()?;
        rx.recv_timeout(LIVE_TIMEOUT).ok()
    }

    #[allow(clippy::type_complexity)]
    fn fetch_log(
        &self,
        idx: usize,
        from: Lsn,
    ) -> Option<(Vec<CommitRecord>, Vec<(DedupId, TxnOutcome)>)> {
        let (tx, rx) = unbounded();
        self.senders[idx]
            .send(GroupMsg::FetchLog { from, reply: tx })
            .ok()?;
        rx.recv_timeout(LIVE_TIMEOUT).ok()
    }

    /// Return the current primary, electing one first if the old one is
    /// dead. `Err` carries the degraded outcome (no electable quorum).
    fn ensure_primary(&mut self) -> Result<usize, ElectionOutcome> {
        self.reap();
        if let Some(p) = self.primary {
            return Ok(p);
        }
        match self.elect() {
            ElectionOutcome::Elected { .. } => Ok(self.primary.expect("just elected")),
            outcome @ ElectionOutcome::NoQuorum { .. } => Err(outcome),
        }
    }

    /// Run a deterministic election among the live replicas: gather
    /// statuses, nominate with [`pick_candidate`]
    /// (longest-log-then-lowest-id), and hold vote rounds until the
    /// nominee reaches a majority of the full group. On success the
    /// winner is installed, lagging survivors are caught up by
    /// anti-entropy log transfer, and the failover metrics are
    /// recorded.
    ///
    /// [`pick_candidate`]: crate::election::pick_candidate
    fn elect(&mut self) -> ElectionOutcome {
        let n = self.senders.len();
        let need = election::quorum(n);
        let mut survivors: Vec<(usize, Candidate)> = Vec::new();
        for i in 0..n {
            if !self.live(i) {
                continue;
            }
            if let Some(s) = self.status(i) {
                survivors.push((
                    i,
                    Candidate {
                        node: NodeId(i as u32),
                        epoch: s.epoch,
                        head: s.head,
                    },
                ));
            }
        }
        if survivors.len() < need {
            return ElectionOutcome::NoQuorum {
                live: survivors.len(),
                need,
            };
        }
        let cands: Vec<Candidate> = survivors.iter().map(|(_, c)| *c).collect();
        let cand = election::pick_candidate(&cands).expect("survivors checked non-empty");
        let max_seen = cands.iter().map(|c| c.epoch).max().unwrap_or(self.epoch);
        let mut floor = self.epoch.max(max_seen);
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            let proposed = Epoch(floor.0 + 1);
            let req = VoteRequest {
                epoch: proposed,
                candidate: cand.node,
                head: cand.head,
            };
            let mut tally = Tally::new(n);
            for (i, _) in &survivors {
                let (tx, rx) = unbounded();
                if self.senders[*i]
                    .send(GroupMsg::RequestVote { req, reply: tx })
                    .is_err()
                {
                    continue;
                }
                if let Ok(reply) = rx.recv_timeout(LIVE_TIMEOUT) {
                    tally.record(reply);
                }
            }
            if tally.elected() {
                return self.install(cand, proposed, rounds, &survivors);
            }
            floor = floor.max(tally.max_epoch);
            if rounds >= 4 {
                // Cannot happen with the sequential handle (the first
                // round always succeeds), but bound the loop anyway.
                return ElectionOutcome::NoQuorum {
                    live: tally.granted(),
                    need,
                };
            }
        }
    }

    fn install(
        &mut self,
        cand: Candidate,
        epoch: Epoch,
        rounds: u32,
        survivors: &[(usize, Candidate)],
    ) -> ElectionOutcome {
        let leader_idx = cand.node.0 as usize;
        let (tx, rx) = unbounded();
        self.senders[leader_idx]
            .send(GroupMsg::BecomePrimary { epoch, reply: tx })
            .expect("leader channel open");
        let head = rx
            .recv_timeout(LIVE_TIMEOUT)
            .expect("elected leader must answer");
        self.epoch = epoch;
        self.primary = Some(leader_idx);
        self.leadership.push((epoch.0, cand.node));
        self.elections += 1;
        let (now, e, leader) = (SimTime(self.now), epoch.0, cand.node);
        self.tracer
            .emit(|| Event::system(now, leader, EventKind::LeaderElected { epoch: e, leader }));
        // Anti-entropy: bring lagging survivors up to the new leader's
        // log, so a follow-up failover can promote any of them without
        // losing acknowledged commits.
        for (i, c) in survivors {
            if *i == leader_idx || c.head >= head {
                continue;
            }
            if let Some((records, outcomes)) = self.fetch_log(leader_idx, Lsn(c.head)) {
                let (tx, rx) = unbounded();
                if self.senders[*i]
                    .send(GroupMsg::CatchUp {
                        epoch,
                        records,
                        outcomes,
                        reply: tx,
                    })
                    .is_ok()
                {
                    let _ = rx.recv_timeout(LIVE_TIMEOUT);
                }
            }
        }
        let down = self
            .now
            .saturating_sub(self.down_since.take().unwrap_or(self.now));
        self.metrics.record_value("failover_unavailability", down);
        self.metrics
            .record_value("election_rounds", u64::from(rounds));
        ElectionOutcome::Elected {
            leader: cand.node,
            epoch,
            rounds,
        }
    }

    fn shutdown_all(&mut self) {
        for i in 0..self.senders.len() {
            let _ = self.senders[i].send(GroupMsg::Shutdown);
            if let Some(h) = self.handles[i].take() {
                let _ = h.join();
            }
            self.remnants[i] = None;
        }
    }
}

/// The replicated base tier: `n` replica threads, one primary at a
/// time. The primary executes base transactions and ships its commit
/// log to the backups with its epoch attached; backups fence
/// stale-epoch batches. When the primary dies the handle runs a
/// deterministic election ([`crate::election`]) among the survivors —
/// longest replicated log wins, node id breaks ties — and the winner
/// completes anti-entropy catch-up of the laggards before the group
/// accepts writes again. Below an electable quorum the group degrades
/// to [`BaseGroup::stale_read`] and unanswered (queued-for-retry)
/// syncs instead of panicking.
///
/// Mobiles are oblivious to all of this: [`BaseGroup`] implements
/// [`SyncTarget`], and the [`DedupId`] outcomes replicate alongside
/// the commit records, so a sync retried across a failover gets its
/// recorded fate from the *new* primary instead of executing twice.
///
/// ```
/// use repl_cluster::two_tier::{BaseGroup, MobileNode};
/// use repl_core::{Criterion, Op, Operation, TxnSpec};
/// use repl_storage::{NodeId, ObjectId, Value};
///
/// let group = BaseGroup::spawn(3, 4, 100);
/// let mut mobile = MobileNode::new(NodeId(100), 4, 100);
/// mobile.execute_tentative(
///     TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Debit(30))])
///         .with_criterion(Criterion::NonNegative),
/// );
/// group.try_crash(0); // kill the primary
/// let outcome = mobile.sync_with_retry(&group, 8).expect("failover");
/// assert_eq!(outcome.accepted, 1);
/// assert_eq!(group.epoch(), 2); // a new leader took over
/// group.shutdown();
/// ```
pub struct BaseGroup {
    inner: RefCell<GroupInner>,
}

impl BaseGroup {
    /// Spawn a group of `replicas` base replicas over a
    /// `db_size`-object master database initialized to
    /// `initial_value`. Replica 0 starts as the primary of epoch 1.
    ///
    /// # Panics
    /// If `replicas` is zero or a thread cannot be spawned.
    pub fn spawn(replicas: usize, db_size: u64, initial_value: i64) -> Self {
        BaseGroup::spawn_traced(replicas, db_size, initial_value, SyncTraceHandle::off())
    }

    /// Like [`BaseGroup::spawn`], with telemetry: replicas and the
    /// group control plane emit commit, replication, election, fence,
    /// and catch-up events through `tracer`. Replica `i` reports as
    /// `NodeId(i)`; give mobiles ids outside `0..replicas`.
    pub fn spawn_traced(
        replicas: usize,
        db_size: u64,
        initial_value: i64,
        tracer: SyncTraceHandle,
    ) -> Self {
        assert!(replicas > 0, "base group needs at least one replica");
        let channels: Vec<(Sender<GroupMsg>, Receiver<GroupMsg>)> =
            (0..replicas).map(|_| unbounded()).collect();
        let senders: Vec<Sender<GroupMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let mut handles = Vec::with_capacity(replicas);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let mut master = ObjectStore::new(db_size);
            for o in 0..db_size {
                master.set(ObjectId(o), Value::Int(initial_value), Timestamp::ZERO);
            }
            let peers = senders
                .iter()
                .enumerate()
                .map(|(j, s)| (j != i).then(|| s.clone()))
                .collect();
            let thread = ReplicaThread {
                node: NodeId(i as u32),
                is_primary: i == 0,
                epoch: Epoch(1),
                master,
                clock: LamportClock::new(NodeId(i as u32)),
                log: repl_storage::CommitLog::new(),
                seen: HashMap::new(),
                fenced: 0,
                peers,
                inbox: rx,
                next_txn: 0,
                commit_crashes: 0,
                tracer: tracer.clone(),
                tick: 0,
            };
            handles.push(Some(
                std::thread::Builder::new()
                    .name(format!("base-replica-{i}"))
                    .spawn(move || thread.run())
                    .expect("failed to spawn base replica"),
            ));
        }
        tracer.emit(|| {
            Event::system(
                SimTime(0),
                NodeId(0),
                EventKind::LeaderElected {
                    epoch: 1,
                    leader: NodeId(0),
                },
            )
        });
        BaseGroup {
            inner: RefCell::new(GroupInner {
                senders,
                handles,
                remnants: (0..replicas).map(|_| None).collect(),
                primary: Some(0),
                epoch: Epoch(1),
                now: 0,
                down_since: None,
                leadership: vec![(1, NodeId(0))],
                acked: Vec::new(),
                elections: 0,
                metrics: RunMetrics::new(),
                tracer,
                db_size,
                initial_value,
            }),
        }
    }

    /// Advance the group's logical clock to `tick` (monotonic; earlier
    /// values are ignored). Unavailability windows are measured on
    /// this clock, so the driver that schedules crashes also defines
    /// the timescale — metrics come out identical run over run.
    pub fn advance_to(&self, tick: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.now = inner.now.max(tick);
    }

    /// Number of replicas in the group (live or crashed).
    pub fn replicas(&self) -> usize {
        self.inner.borrow().senders.len()
    }

    /// Crash replica `idx` (see [`BaseGroup::try_crash`]).
    ///
    /// # Panics
    /// If the replica is already crashed.
    pub fn crash(&self, idx: usize) {
        assert!(self.try_crash(idx), "replica {idx} already crashed");
    }

    /// Crash replica `idx`: its thread exits, losing the master store
    /// and clock; the replicated log, dedup map, epoch, and queued
    /// inbox survive in the remnant. Returns `false` (a no-op) when
    /// the replica is already down, so overlapping fault-plan crash
    /// windows degrade to nothing instead of aborting the run. If the
    /// primary died, the next sync or execute triggers an election.
    pub fn try_crash(&self, idx: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        if inner.remnants[idx].is_some() || inner.handles[idx].is_none() {
            return false;
        }
        inner.senders[idx]
            .send(GroupMsg::Crash)
            .expect("replica channel open");
        inner.collect(idx);
        true
    }

    /// Restart a crashed replica (see [`BaseGroup::try_restart`]).
    ///
    /// # Panics
    /// If the replica is not crashed.
    pub fn restart(&self, idx: usize) -> u64 {
        self.try_restart(idx).expect("restarting a live replica")
    }

    /// Restart a crashed replica: rebuild the master database by
    /// replaying the durable replicated log, rejoin as a *backup* at
    /// the handle's current epoch — queued appends from a deposed
    /// primary replay beneath that epoch and get fenced rather than
    /// resurrecting a stale reign — and complete anti-entropy catch-up
    /// from the current primary, if one exists. Returns the number of
    /// replayed log records, or `None` (a no-op) if the replica is not
    /// crashed. A restarted replica never resumes primaryship by
    /// itself; it must win an election.
    pub fn try_restart(&self, idx: usize) -> Option<u64> {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        let remnant = inner.remnants[idx].take()?;
        let node = NodeId(idx as u32);
        let mut master = ObjectStore::new(inner.db_size);
        for o in 0..inner.db_size {
            master.set(
                ObjectId(o),
                Value::Int(inner.initial_value),
                Timestamp::ZERO,
            );
        }
        let mut clock = LamportClock::new(node);
        let mut replayed = 0;
        for record in remnant.log.since(Lsn(0)) {
            replayed += 1;
            for u in &record.updates {
                clock.observe(u.new_ts);
                master.set(u.object, u.value.clone(), u.new_ts);
            }
        }
        let now = SimTime(remnant.tick);
        inner
            .tracer
            .emit(|| Event::system(now, node, EventKind::RecoveryReplay { messages: replayed }));
        inner
            .tracer
            .emit(|| Event::system(now, node, EventKind::NodeRestart));
        let peers = inner
            .senders
            .iter()
            .enumerate()
            .map(|(j, s)| (j != idx).then(|| s.clone()))
            .collect();
        let thread = ReplicaThread {
            node,
            is_primary: false,
            epoch: inner.epoch.max(remnant.epoch),
            master,
            clock,
            log: remnant.log,
            seen: remnant.seen,
            fenced: remnant.fenced,
            peers,
            inbox: remnant.inbox,
            next_txn: remnant.next_txn,
            commit_crashes: 0,
            tracer: inner.tracer.clone(),
            tick: remnant.tick,
        };
        inner.handles[idx] = Some(
            std::thread::Builder::new()
                .name(format!("base-replica-{idx}"))
                .spawn(move || thread.run())
                .expect("failed to respawn base replica"),
        );
        // Anti-entropy from the current primary. The status probe also
        // acts as a barrier: the rejoiner answers it only after
        // replaying (or fencing) every append queued while it was down.
        if let Some(p) = inner.primary.filter(|p| *p != idx) {
            if let (Some(mine), Some(theirs)) = (inner.status(idx), inner.status(p)) {
                if mine.head < theirs.head {
                    if let Some((records, outcomes)) = inner.fetch_log(p, Lsn(mine.head)) {
                        let epoch = inner.epoch;
                        let (tx, rx) = unbounded();
                        if inner.senders[idx]
                            .send(GroupMsg::CatchUp {
                                epoch,
                                records,
                                outcomes,
                                reply: tx,
                            })
                            .is_ok()
                        {
                            let _ = rx.recv_timeout(LIVE_TIMEOUT);
                        }
                    }
                }
            }
        }
        Some(replayed)
    }

    /// Whether replica `idx` is currently crashed.
    pub fn is_crashed(&self, idx: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        inner.handles[idx].is_none()
    }

    /// Whether enough replicas are live to elect (or keep) a primary.
    pub fn has_quorum(&self) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        let live = (0..inner.senders.len()).filter(|i| inner.live(*i)).count();
        live >= election::quorum(inner.senders.len())
    }

    /// Execute a transaction at the primary (a connected client),
    /// electing one first if necessary. `None` when the group is below
    /// quorum or the primary died mid-request (retry after a restart).
    pub fn execute(&self, spec: TxnSpec) -> Option<TxnOutcome> {
        let mut inner = self.inner.borrow_mut();
        let p = inner.ensure_primary().ok()?;
        let (tx, rx) = unbounded();
        inner.senders[p]
            .send(GroupMsg::Execute { spec, reply: tx })
            .ok()?;
        match rx.recv_timeout(LIVE_TIMEOUT) {
            Ok((outcome, seq)) => {
                if seq > 0 {
                    let e = inner.epoch.0;
                    inner.acked.push((seq, e));
                }
                Some(outcome)
            }
            Err(RecvTimeoutError::Disconnected) => {
                inner.collect(p);
                None
            }
            Err(RecvTimeoutError::Timeout) => None,
        }
    }

    /// Snapshot the primary's master database. `None` when no primary
    /// is electable.
    pub fn snapshot(&self) -> Option<ObjectStore> {
        let mut inner = self.inner.borrow_mut();
        let p = inner.ensure_primary().ok()?;
        let (tx, rx) = unbounded();
        inner.senders[p]
            .send(GroupMsg::Snapshot { reply: tx })
            .ok()?;
        rx.recv_timeout(LIVE_TIMEOUT).ok()
    }

    /// Read `obj` from any live replica — primary first, else the
    /// lowest-numbered live backup. This is the degraded-mode path: it
    /// works below quorum (possibly stale) and returns `None` only
    /// when every replica is down.
    pub fn stale_read(&self, obj: ObjectId) -> Option<Value> {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        let n = inner.senders.len();
        let order = inner.primary.into_iter().chain(0..n);
        for idx in order {
            if !inner.live(idx) {
                continue;
            }
            let (tx, rx) = unbounded();
            if inner.senders[idx]
                .send(GroupMsg::Read { obj, reply: tx })
                .is_err()
            {
                continue;
            }
            if let Ok(v) = rx.recv_timeout(LIVE_TIMEOUT) {
                return Some(v);
            }
        }
        None
    }

    /// Make the primary's next committing sync commit and replicate,
    /// then crash before replying — the mid-`try_sync` failover
    /// scenario. Returns `false` below quorum.
    pub fn inject_commit_crash(&self) -> bool {
        let mut inner = self.inner.borrow_mut();
        let Ok(p) = inner.ensure_primary() else {
            return false;
        };
        inner.senders[p].send(GroupMsg::InjectCommitCrash).is_ok()
    }

    /// The group's current epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch.0
    }

    /// The current primary, if one is installed (stale until the next
    /// request discovers a crash).
    pub fn primary(&self) -> Option<NodeId> {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        inner.primary.map(|i| NodeId(i as u32))
    }

    /// Completed elections (leadership changes after the initial
    /// primary).
    pub fn elections(&self) -> u64 {
        self.inner.borrow().elections
    }

    /// Every `(epoch, leader)` installation so far, in order.
    pub fn leadership(&self) -> Vec<(u64, NodeId)> {
        self.inner.borrow().leadership.clone()
    }

    /// Acknowledged writes so far, as `(repl_seq, epoch)` pairs.
    pub fn acked(&self) -> Vec<(u64, u64)> {
        self.inner.borrow().acked.clone()
    }

    /// Total stale-epoch messages fenced across all replicas (live and
    /// crashed).
    pub fn fenced(&self) -> u64 {
        let mut inner = self.inner.borrow_mut();
        inner.reap();
        let n = inner.senders.len();
        let mut total = 0;
        for i in 0..n {
            if let Some(r) = &inner.remnants[i] {
                total += r.fenced;
            } else if inner.live(i) {
                if let Some(s) = inner.status(i) {
                    total += s.fenced;
                }
            }
        }
        total
    }

    /// The failover metrics collected so far: the
    /// `failover_unavailability` and `election_rounds` histograms (in
    /// driver ticks and vote rounds respectively).
    pub fn metrics(&self) -> RunMetrics {
        self.inner.borrow().metrics.clone()
    }

    /// Run the failover oracles: at-most-one-primary-per-epoch over
    /// the whole leadership history, and no-acknowledged-commit-lost
    /// against the current primary's log. Empty means the run was
    /// clean. Durability is vacuously clean while the group is below
    /// quorum (nothing new was elected, so nothing can have been
    /// lost yet).
    pub fn verify(&self) -> Vec<repl_check::Violation> {
        let mut inner = self.inner.borrow_mut();
        let mut out = Vec::new();
        if let Some(v) = repl_check::check_leader_safety(&inner.leadership) {
            out.push(v);
        }
        if let Ok(p) = inner.ensure_primary() {
            if let Some(s) = inner.status(p) {
                if let Some(v) = repl_check::check_acked_durability(&inner.acked, s.head) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Shut every replica down.
    pub fn shutdown(self) {
        self.inner.borrow_mut().shutdown_all();
    }
}

impl SyncTarget for BaseGroup {
    /// One sync round-trip against the group's primary, electing one
    /// first if the old primary is dead. `None` when the group is
    /// below quorum (degraded: the mobile keeps its tentative queue)
    /// or the primary died mid-sync — the retry is exactly-once by
    /// [`DedupId`], even when a different replica answers it.
    fn try_sync(&self, pendings: Vec<Pending>, from: Lsn, timeout: Duration) -> Option<SyncReply> {
        let mut inner = self.inner.borrow_mut();
        let p = inner.ensure_primary().ok()?;
        let (tx, rx) = unbounded();
        inner.senders[p]
            .send(GroupMsg::Sync {
                pendings,
                from,
                reply: tx,
            })
            .ok()?;
        match rx.recv_timeout(timeout) {
            Ok(reply) => {
                if reply.repl_seq > 0 {
                    let e = inner.epoch.0;
                    inner.acked.push((reply.repl_seq, e));
                }
                Some(reply)
            }
            Err(RecvTimeoutError::Disconnected) => {
                // The primary died mid-sync (commit-crash): its reply
                // sender dropped on thread exit. Collect the corpse so
                // the next attempt elects a successor.
                inner.collect(p);
                None
            }
            Err(RecvTimeoutError::Timeout) => None,
        }
    }
}

impl Drop for BaseGroup {
    fn drop(&mut self) {
        self.inner.borrow_mut().shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_core::{Criterion, Op, Operation};

    fn debit(obj: u64, amount: i64) -> TxnSpec {
        TxnSpec::new(vec![Operation::new(ObjectId(obj), Op::Debit(amount))])
            .with_criterion(Criterion::NonNegative)
    }

    fn credit(obj: u64, amount: i64) -> TxnSpec {
        TxnSpec::new(vec![Operation::new(ObjectId(obj), Op::Add(amount))])
            .with_criterion(Criterion::NonNegative)
    }

    #[test]
    fn direct_base_execution_works() {
        let base = BaseServer::spawn(4, 100);
        match base.execute(debit(0, 30)) {
            TxnOutcome::Accepted(outputs) => {
                assert_eq!(outputs, vec![(ObjectId(0), Value::Int(70))]);
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
        base.shutdown();
    }

    #[test]
    fn base_rejects_overdraft() {
        let base = BaseServer::spawn(2, 50);
        match base.execute(debit(0, 80)) {
            TxnOutcome::Rejected { reason } => {
                assert!(reason.contains("NonNegative"), "{reason}");
            }
            o => panic!("overdraft accepted: {o:?}"),
        }
        // Master unchanged.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(50));
        base.shutdown();
    }

    #[test]
    fn tentative_updates_visible_locally_then_durable_after_sync() {
        let base = BaseServer::spawn(4, 100);
        let mut mobile = MobileNode::new(NodeId(1), 4, 100);
        mobile.execute_tentative(debit(2, 40));
        // Visible locally through the tentative overlay…
        assert_eq!(mobile.read(ObjectId(2)), &Value::Int(60));
        // …but not at the base yet.
        assert_eq!(base.snapshot().get(ObjectId(2)).value, Value::Int(100));
        let outcome = mobile.sync(&base);
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(base.snapshot().get(ObjectId(2)).value, Value::Int(60));
        // The refresh brought the committed value back to the mobile.
        assert_eq!(mobile.read(ObjectId(2)), &Value::Int(60));
        base.shutdown();
    }

    #[test]
    fn checkbook_race_second_spouse_bounces() {
        // The paper's joint account: $1000; you debit $800, your spouse
        // debits $700 — both fine on local state, but the bank only
        // honors the first.
        let base = BaseServer::spawn(1, 1000);
        let mut you = MobileNode::new(NodeId(1), 1, 1000);
        let mut spouse = MobileNode::new(NodeId(2), 1, 1000);
        you.execute_tentative(debit(0, 800));
        spouse.execute_tentative(debit(0, 700));
        assert_eq!(you.sync(&base).accepted, 1);
        let s = spouse.sync(&base);
        assert_eq!(s.accepted, 0);
        assert_eq!(s.rejected, 1);
        assert!(spouse.last_rejections()[0].contains("NonNegative"));
        // The bank's books stayed consistent and non-negative.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(200));
        // The spouse's replica converged to the bank's state.
        assert_eq!(spouse.read(ObjectId(0)), &Value::Int(200));
        base.shutdown();
    }

    #[test]
    fn commutative_transactions_all_accepted() {
        let base = BaseServer::spawn(8, 1_000_000);
        let mut nodes: Vec<MobileNode> = (1..=3)
            .map(|i| MobileNode::new(NodeId(i), 8, 1_000_000))
            .collect();
        for (k, m) in nodes.iter_mut().enumerate() {
            for i in 0..20u64 {
                let spec = if i % 2 == 0 {
                    credit(i % 8, (k as i64 + 1) * 10)
                } else {
                    debit(i % 8, 5)
                };
                m.execute_tentative(spec);
            }
        }
        let mut total_rejected = 0;
        for m in &mut nodes {
            total_rejected += m.sync(&base).rejected;
        }
        assert_eq!(total_rejected, 0, "commutative ops must all clear");
        // Everyone syncs again to pull the others' refreshes; all
        // replicas converge to the master state.
        let want = base.snapshot().digest();
        for m in &mut nodes {
            m.sync(&base);
            assert_eq!(m.store.master().digest(), want);
        }
        base.shutdown();
    }

    #[test]
    fn exact_match_rejected_after_intervening_update() {
        let base = BaseServer::spawn(2, 100);
        let mut mobile = MobileNode::new(NodeId(1), 2, 100);
        let spec = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Add(10))])
            .with_criterion(Criterion::ExactMatch);
        mobile.execute_tentative(spec);
        // Meanwhile a connected user moves the object at the base.
        base.execute(credit(0, 50));
        let s = mobile.sync(&base);
        assert_eq!(s.rejected, 1, "base result 160 != tentative 110");
        base.shutdown();
    }

    #[test]
    fn watermark_only_replays_new_commits() {
        let base = BaseServer::spawn(2, 0);
        let mut mobile = MobileNode::new(NodeId(1), 2, 0);
        base.execute(credit(0, 1));
        let s1 = mobile.sync(&base);
        assert_eq!(s1.refreshed, 1);
        base.execute(credit(0, 1));
        base.execute(credit(1, 1));
        let s2 = mobile.sync(&base);
        assert_eq!(s2.refreshed, 2, "only the two new commits replay");
        base.shutdown();
    }

    #[test]
    fn traced_two_tier_records_tentative_fates() {
        use repl_telemetry::{EventKind, RingBuffer};
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBuffer::new(256)));
        let handle = SyncTraceHandle::shared(&ring);
        let base = BaseServer::spawn_traced(1, 1000, handle.clone());
        let mut you = MobileNode::new(NodeId(1), 1, 1000).with_tracer(handle.clone());
        let mut spouse = MobileNode::new(NodeId(2), 1, 1000).with_tracer(handle);
        you.execute_tentative(debit(0, 800));
        spouse.execute_tentative(debit(0, 700));
        you.sync(&base);
        spouse.sync(&base);
        base.shutdown();
        let ring = ring.lock().unwrap();
        let count = |pred: fn(&EventKind) -> bool| ring.events().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, EventKind::TentativeCommit)), 2);
        assert_eq!(count(|k| matches!(k, EventKind::TentativeAccepted)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::TentativeRejected)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::Reconcile)), 1);
        // The base committed one durable transaction and aborted the
        // spouse's incarnation.
        assert_eq!(count(|k| matches!(k, EventKind::TxnCommit)), 1);
        assert_eq!(count(|k| matches!(k, EventKind::TxnAbort { .. })), 1);
    }

    #[test]
    fn reply_crash_retry_does_not_double_execute() {
        let base = BaseServer::spawn(1, 100);
        let mut mobile = MobileNode::new(NodeId(1), 1, 100);
        mobile.execute_tentative(debit(0, 30));
        // The next two syncs commit durably but the reply is eaten by a
        // crash; the third attempt gets through.
        base.inject_reply_crashes(2);
        let outcome = mobile
            .sync_with_retry(&base, 5)
            .expect("retry must eventually reach the base");
        assert_eq!(outcome.accepted, 1);
        // Deduplication: the debit ran exactly once despite three
        // submissions of the same pending transaction.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(70));
        assert_eq!(mobile.read(ObjectId(0)), &Value::Int(70));
        base.shutdown();
    }

    #[test]
    fn base_crash_restart_recovers_master_from_log() {
        let mut base = BaseServer::spawn(2, 100);
        base.execute(debit(0, 25));
        base.execute(credit(1, 40));
        let before = base.snapshot().digest();
        base.crash();
        assert!(base.is_crashed());
        let replayed = base.restart();
        assert_eq!(replayed, 2, "both commits replay from the log");
        assert_eq!(base.snapshot().digest(), before, "master diverged");
        base.shutdown();
    }

    #[test]
    fn sync_against_crashed_base_fails_then_recovers() {
        let mut base = BaseServer::spawn(1, 100);
        let mut mobile = MobileNode::new(NodeId(1), 1, 100);
        mobile.execute_tentative(debit(0, 10));
        base.crash();
        // Every attempt times out against the dead base; the pending
        // queue survives for later.
        assert!(mobile.sync_with_retry(&base, 2).is_none());
        assert_eq!(mobile.pending_count(), 1);
        base.restart();
        let outcome = mobile
            .sync_with_retry(&base, 5)
            .expect("restarted base must answer");
        assert_eq!(outcome.accepted, 1);
        // The stale syncs queued while the base was down re-submitted
        // the same dedup id; the debit still ran exactly once.
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(90));
        base.shutdown();
    }

    #[test]
    fn duplicate_sync_delivery_is_idempotent() {
        // Satellite: a duplicated sync (same pendings delivered twice —
        // e.g. the message layer duplicated the request) must not apply
        // tentative transactions twice.
        let base = BaseServer::spawn(1, 100);
        let mut mobile = MobileNode::new(NodeId(1), 1, 100);
        mobile.execute_tentative(debit(0, 30));
        let pendings = mobile.pending.clone();
        // Deliver the same sync payload twice, as a duplicating network
        // would.
        let r1 = base.try_sync(pendings.clone(), Lsn(0), Duration::from_secs(10));
        let r2 = base.try_sync(pendings, Lsn(0), Duration::from_secs(10));
        assert!(r1.is_some() && r2.is_some());
        assert_eq!(
            base.snapshot().get(ObjectId(0)).value,
            Value::Int(70),
            "duplicate delivery must not debit twice"
        );
        // Both deliveries report the same recorded outcome.
        let (o1, o2) = (r1.unwrap().outcomes, r2.unwrap().outcomes);
        assert_eq!(o1, o2);
        base.shutdown();
    }

    #[test]
    fn pending_queue_drains_in_commit_order() {
        let base = BaseServer::spawn(1, 10);
        let mut mobile = MobileNode::new(NodeId(1), 1, 10);
        // Sequence matters: debit 10 then credit 5 works in order
        // (10→0→5); reversed it would still work, but a second debit
        // of 6 only clears because the credit ran first.
        mobile.execute_tentative(debit(0, 10));
        mobile.execute_tentative(credit(0, 5));
        mobile.execute_tentative(debit(0, 4));
        assert_eq!(mobile.pending_count(), 3);
        let s = mobile.sync(&base);
        assert_eq!(s.accepted, 3);
        assert_eq!(mobile.pending_count(), 0);
        assert_eq!(base.snapshot().get(ObjectId(0)).value, Value::Int(1));
        base.shutdown();
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let policy = RetryPolicy::default();
        let mut rng = SimRng::stream(0, "test");
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(1));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(2));
        assert_eq!(policy.backoff(4, &mut rng), Duration::from_millis(8));
        assert_eq!(policy.backoff(7, &mut rng), Duration::from_millis(64));
        assert_eq!(policy.backoff(30, &mut rng), Duration::from_millis(64));
    }

    #[test]
    fn retry_policy_jitter_is_seeded_and_bounded() {
        let policy = RetryPolicy {
            jitter: 0.5,
            ..RetryPolicy::default()
        };
        let draw = |seed: u64| {
            let mut rng = SimRng::stream(seed, "test");
            (0..6)
                .map(|a| policy.backoff(a + 1, &mut rng))
                .collect::<Vec<_>>()
        };
        // Deterministic: same seed, same delays.
        assert_eq!(draw(7), draw(7));
        // Bounded: within ±jitter/2 of the fixed schedule.
        for (i, d) in draw(7).iter().enumerate() {
            let fixed = Duration::from_millis(1 << i).min(Duration::from_millis(64));
            assert!(
                *d >= fixed.mul_f64(0.75) && *d <= fixed.mul_f64(1.25),
                "{d:?}"
            );
        }
    }

    #[test]
    fn group_serves_syncs_like_a_single_base() {
        let group = BaseGroup::spawn(3, 4, 100);
        let mut mobile = MobileNode::new(NodeId(100), 4, 100);
        mobile.execute_tentative(debit(0, 30));
        let outcome = mobile.sync(&group);
        assert_eq!(outcome.accepted, 1);
        assert_eq!(
            group.snapshot().unwrap().get(ObjectId(0)).value,
            Value::Int(70)
        );
        assert_eq!(group.epoch(), 1);
        assert_eq!(group.primary(), Some(NodeId(0)));
        assert!(group.verify().is_empty());
        group.shutdown();
    }

    #[test]
    fn primary_crash_elects_most_caught_up_backup() {
        let group = BaseGroup::spawn(3, 4, 100);
        let mut mobile = MobileNode::new(NodeId(100), 4, 100);
        mobile.execute_tentative(debit(0, 30));
        mobile.sync(&group);
        group.advance_to(5);
        group.crash(0);
        group.advance_to(9);
        // Next sync triggers the election; backups hold the full log,
        // so the lowest-id backup (1) wins epoch 2.
        mobile.execute_tentative(debit(0, 20));
        let outcome = mobile.sync_with_retry(&group, 4).expect("failover sync");
        assert_eq!(outcome.accepted, 1);
        assert_eq!(group.primary(), Some(NodeId(1)));
        assert_eq!(group.epoch(), 2);
        assert_eq!(group.elections(), 1);
        // The unavailability window is the 4 ticks between crash and
        // the election-triggering sync.
        let m = group.metrics();
        let h = m.histogram("failover_unavailability").expect("recorded");
        assert_eq!(h.count(), 1);
        // No acknowledged commit lost: the new primary serves the full
        // state.
        assert_eq!(
            group.snapshot().unwrap().get(ObjectId(0)).value,
            Value::Int(50)
        );
        assert!(group.verify().is_empty());
        group.shutdown();
    }

    #[test]
    fn commit_crash_failover_replays_cached_outcome_not_double_debit() {
        let group = BaseGroup::spawn(3, 1, 100);
        let mut mobile = MobileNode::new(NodeId(100), 1, 100);
        mobile.execute_tentative(debit(0, 40));
        // The primary commits and replicates, then dies before the
        // reply leaves. The retry lands on the *new* primary, whose
        // replicated dedup map answers from cache — no double debit.
        assert!(group.inject_commit_crash());
        let outcome = mobile.sync_with_retry(&group, 6).expect("failover");
        assert_eq!(outcome.accepted, 1);
        assert!(group.elections() >= 1);
        assert_eq!(
            group.snapshot().unwrap().get(ObjectId(0)).value,
            Value::Int(60),
            "exactly one debit across the failover"
        );
        assert!(group.verify().is_empty());
        group.shutdown();
    }

    #[test]
    fn below_quorum_degrades_to_stale_reads_and_recovers() {
        let group = BaseGroup::spawn(3, 2, 100);
        let mut mobile = MobileNode::new(NodeId(100), 2, 100);
        mobile.execute_tentative(debit(0, 10));
        mobile.sync(&group);
        group.crash(0);
        group.crash(1);
        // One survivor of three: no electable quorum. Syncs go
        // unanswered (the mobile queues), but stale reads still serve.
        mobile.execute_tentative(debit(0, 5));
        assert!(mobile.sync_with_retry(&group, 2).is_none());
        assert_eq!(mobile.pending_count(), 1, "tentative sync queued");
        assert!(!group.has_quorum());
        assert_eq!(group.stale_read(ObjectId(0)), Some(Value::Int(90)));
        // A replica rejoins: quorum is back, the queued sync drains.
        group.restart(1);
        assert!(group.has_quorum());
        let outcome = mobile.sync_with_retry(&group, 4).expect("recovered");
        assert_eq!(outcome.accepted, 1);
        assert_eq!(
            group.snapshot().unwrap().get(ObjectId(0)).value,
            Value::Int(85)
        );
        assert!(group.verify().is_empty());
        group.shutdown();
    }

    #[test]
    fn overlapping_crash_windows_are_noops() {
        let group = BaseGroup::spawn(3, 1, 10);
        assert!(group.try_crash(2));
        assert!(!group.try_crash(2), "second crash of a dead replica");
        assert!(group.try_restart(2).is_some());
        assert!(group.try_restart(2).is_none(), "second restart is a no-op");
        group.shutdown();
    }

    #[test]
    fn deposed_primary_rejoins_fenced_and_catches_up() {
        let group = BaseGroup::spawn(3, 2, 100);
        let mut mobile = MobileNode::new(NodeId(100), 2, 100);
        mobile.execute_tentative(debit(0, 10));
        mobile.sync(&group);
        group.crash(0);
        // Epoch 2 under a new primary, with commits the old one missed.
        mobile.execute_tentative(debit(0, 20));
        mobile.sync_with_retry(&group, 4).expect("failover");
        assert_eq!(group.epoch(), 2);
        // The deposed primary rejoins as a backup and catches up.
        group.restart(0);
        assert_eq!(group.primary(), Some(NodeId(1)), "restart does not reclaim");
        // Kill the current primary: replica 0 is electable again and
        // must hold the epoch-2 commits it caught up on.
        group.crash(1);
        mobile.execute_tentative(debit(0, 30));
        let outcome = mobile.sync_with_retry(&group, 4).expect("second failover");
        assert_eq!(outcome.accepted, 1);
        assert_eq!(group.primary(), Some(NodeId(0)));
        assert_eq!(
            group.snapshot().unwrap().get(ObjectId(0)).value,
            Value::Int(40),
            "all three debits survive two failovers"
        );
        assert!(group.verify().is_empty());
        group.shutdown();
    }

    #[test]
    fn traced_failover_emits_election_events() {
        use repl_telemetry::RingBuffer;
        use std::sync::{Arc, Mutex};
        let ring = Arc::new(Mutex::new(RingBuffer::new(1024)));
        let tracer = SyncTraceHandle::shared(&ring);
        let group = BaseGroup::spawn_traced(3, 1, 100, tracer.clone());
        let mut mobile = MobileNode::new(NodeId(100), 1, 100).with_tracer(tracer);
        mobile.execute_tentative(debit(0, 10));
        mobile.sync(&group);
        // A commit-crash kills the primary mid-sync: the first attempt
        // dies unanswered (forcing a SyncRetried), the retry elects.
        group.inject_commit_crash();
        mobile.execute_tentative(debit(0, 5));
        mobile.sync_with_retry(&group, 4).expect("failover");
        group.shutdown();
        let ring = ring.lock().unwrap();
        let count = |pred: fn(&EventKind) -> bool| ring.events().filter(|e| pred(&e.kind)).count();
        assert_eq!(
            count(|k| matches!(k, EventKind::LeaderElected { .. })),
            2,
            "initial leader + failover"
        );
        assert!(
            count(|k| matches!(k, EventKind::SyncRetried { .. })) >= 1,
            "the failed attempt against the dead primary must be retried"
        );
    }
}
