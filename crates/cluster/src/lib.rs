//! # repl-cluster — a threaded lazy-group replica cluster
//!
//! The discrete-event engines in `repl-core` measure the paper's rates;
//! this crate shows the same protocol logic running on a *real*
//! message-passing runtime: one OS thread per node, crossbeam channels
//! as the network, and the identical timestamp test from the paper's
//! Figure 4 applied to incoming replica updates.
//!
//! The cluster exposes the update-anywhere API of a lazy-group system:
//! execute a transaction at any node, updates propagate asynchronously,
//! dangerous updates are counted as reconciliations and resolved by
//! time priority so the replicas converge.
//!
//! ```
//! use repl_cluster::Cluster;
//! use repl_core::Op;
//! use repl_storage::{NodeId, ObjectId, Value};
//!
//! let cluster = Cluster::new(3, 16);
//! cluster.execute_one(NodeId(0), ObjectId(1), Op::Set(Value::Int(7)));
//! cluster.quiesce();
//! // All replicas converge to the same state.
//! let digests = cluster.digests();
//! assert!(digests.iter().all(|&d| d == digests[0]));
//! assert_eq!(
//!     cluster.snapshot(NodeId(2)).get(ObjectId(1)).value,
//!     Value::Int(7)
//! );
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod election;
pub mod two_tier;

use crossbeam::channel::{unbounded, Receiver, Sender};
use repl_core::{Op, TxnSpec};
use repl_sim::SimTime;
use repl_storage::{
    ApplyOutcome, LamportClock, NodeId, ObjectId, ObjectStore, Timestamp, TxnId, UpdateRecord,
    Value,
};
use repl_telemetry::{Event, EventKind, MetricsRegistry, RunMetrics, SyncTraceHandle};
use std::thread::JoinHandle;

/// Messages a node thread processes.
enum NodeMsg {
    /// Execute a transaction locally and broadcast its updates.
    Execute {
        spec: TxnSpec,
        reply: Sender<Vec<(ObjectId, Value)>>,
    },
    /// Apply a remote node's committed updates (one lazy transaction).
    Replica { updates: Vec<UpdateRecord> },
    /// Reply when every earlier message has been processed.
    Flush { reply: Sender<NodeStats> },
    /// Reply with a snapshot of the node's mergeable metrics.
    Metrics { reply: Sender<RunMetrics> },
    /// Snapshot the node's full store.
    Snapshot { reply: Sender<ObjectStore> },
    /// Reply with the store's rolling digest — O(1) at the node, and
    /// eight bytes over the channel instead of a full store clone.
    Digest { reply: Sender<u64> },
    /// Crash the node: the thread exits, volatile state is lost, and
    /// the durable remnant is handed back for a later restart.
    Crash,
    /// Terminate the node thread.
    Shutdown,
}

/// Per-node statistics returned by a flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Transactions executed at this node.
    pub executed: u64,
    /// Replica transactions applied.
    pub replica_applied: u64,
    /// Stale replica updates ignored.
    pub stale: u64,
    /// Dangerous updates detected (reconciliations).
    pub reconciliations: u64,
}

/// What survives a node crash: the write-ahead log (every durable
/// write), the inbox (peers keep mailing a dead node — that queue *is*
/// the undelivered propagation backlog recovery replays), and the
/// node's identity. The store, clock, and thread are volatile.
struct NodeRemnant {
    id: NodeId,
    inbox: Receiver<NodeMsg>,
    peers: Vec<Sender<NodeMsg>>,
    wal: Vec<(ObjectId, Value, Timestamp)>,
    stats: NodeStats,
    metrics: RunMetrics,
    tracer: SyncTraceHandle,
    tick: u64,
}

struct NodeThread {
    id: NodeId,
    store: ObjectStore,
    clock: LamportClock,
    inbox: Receiver<NodeMsg>,
    peers: Vec<Sender<NodeMsg>>,
    /// Write-ahead log: one record per durable write, local or replica.
    /// Replaying it in order through last-writer-wins reconstructs the
    /// store exactly (every conflict in this protocol is resolved by
    /// time priority, so the final value of each object is its
    /// newest-timestamped record).
    wal: Vec<(ObjectId, Value, Timestamp)>,
    stats: NodeStats,
    /// Mergeable counters/histograms mirroring `stats` plus the
    /// replica-batch size distribution. Durable across a crash (they
    /// ride the remnant) so restart-and-catch-up runs report totals.
    metrics: RunMetrics,
    tracer: SyncTraceHandle,
    // Threads have no simulated clock; events carry a per-node logical
    // tick, one per processed message.
    tick: u64,
}

impl NodeThread {
    fn run(mut self) -> Option<NodeRemnant> {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                NodeMsg::Execute { spec, reply } => {
                    let results = self.execute(&spec);
                    let _ = reply.send(results);
                }
                NodeMsg::Replica { updates } => self.apply_replica(updates),
                NodeMsg::Flush { reply } => {
                    let _ = reply.send(self.stats);
                }
                NodeMsg::Metrics { reply } => {
                    let _ = reply.send(self.metrics.clone());
                }
                NodeMsg::Snapshot { reply } => {
                    let _ = reply.send(self.store.clone());
                }
                NodeMsg::Digest { reply } => {
                    let _ = reply.send(self.store.digest());
                }
                NodeMsg::Crash => {
                    let now = SimTime(self.tick + 1);
                    let id = self.id;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::NodeCrash));
                    self.tracer.flush();
                    return Some(NodeRemnant {
                        id: self.id,
                        inbox: self.inbox,
                        peers: self.peers,
                        wal: self.wal,
                        stats: self.stats,
                        metrics: self.metrics,
                        tracer: self.tracer,
                        tick: self.tick,
                    });
                }
                NodeMsg::Shutdown => break,
            }
        }
        self.tracer.flush();
        None
    }

    fn execute(&mut self, spec: &TxnSpec) -> Vec<(ObjectId, Value)> {
        self.stats.executed += 1;
        self.metrics.incr("executed", 1);
        self.metrics.record_value("txn_ops", spec.ops.len() as u64);
        self.tick += 1;
        let now = SimTime(self.tick);
        // Stamp events with a node-local transaction id; the threaded
        // runtime has no global id allocator.
        let txn = TxnId(self.stats.executed);
        let id = self.id;
        self.tracer
            .emit(|| Event::new(now, id, txn, EventKind::TxnBegin));
        let mut updates = Vec::with_capacity(spec.ops.len());
        let mut results = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = self.store.get(op.object).clone();
            let new_value = op.op.apply(&current.value);
            let new_ts = self.clock.tick();
            self.store.set(op.object, new_value.clone(), new_ts);
            self.wal.push((op.object, new_value.clone(), new_ts));
            updates.push(UpdateRecord {
                txn: repl_storage::TxnId(0),
                object: op.object,
                old_ts: current.ts,
                new_ts,
                value: new_value.clone(),
            });
            results.push((op.object, new_value));
        }
        self.tracer
            .emit(|| Event::new(now, id, txn, EventKind::TxnCommit));
        for (i, peer) in self.peers.iter().enumerate() {
            if i == self.id.0 as usize {
                continue;
            }
            let _ = peer.send(NodeMsg::Replica {
                updates: updates.clone(),
            });
            self.tracer.emit(|| {
                Event::new(
                    now,
                    id,
                    txn,
                    EventKind::MsgSent {
                        to: NodeId(i as u32),
                    },
                )
            });
        }
        results
    }

    fn apply_replica(&mut self, updates: Vec<UpdateRecord>) {
        self.tick += 1;
        self.metrics
            .record_value("replica_batch_ops", updates.len() as u64);
        let now = SimTime(self.tick);
        let id = self.id;
        let mut conflicted = false;
        for u in updates {
            self.clock.observe(u.new_ts);
            let object = u.object;
            self.wal.push((u.object, u.value.clone(), u.new_ts));
            match self
                .store
                .apply_versioned(u.object, u.old_ts, u.new_ts, u.value)
            {
                ApplyOutcome::Applied => {}
                ApplyOutcome::Duplicate => {
                    self.stats.stale += 1;
                    self.metrics.incr("stale_updates", 1);
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::StaleSkip));
                }
                // Dangerous updates are resolved by time priority
                // inside the store; both directions count as
                // reconciliations.
                ApplyOutcome::ConflictApplied | ApplyOutcome::ConflictIgnored => {
                    conflicted = true;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::DangerousUpdate { object }));
                }
            }
        }
        self.stats.replica_applied += 1;
        self.metrics.incr("replica_applied", 1);
        self.tracer
            .emit(|| Event::system(now, id, EventKind::ReplicaApply));
        if conflicted {
            self.stats.reconciliations += 1;
            self.metrics.incr("reconciliations", 1);
            self.tracer
                .emit(|| Event::system(now, id, EventKind::Reconcile));
        }
    }
}

/// A running cluster of lazy-group replica nodes.
pub struct Cluster {
    senders: Vec<Sender<NodeMsg>>,
    handles: Vec<Option<JoinHandle<Option<NodeRemnant>>>>,
    /// Durable remnants of currently crashed nodes, indexed by node.
    remnants: Vec<Option<NodeRemnant>>,
    db_size: u64,
}

impl Cluster {
    /// Spawn `nodes` replica threads, each holding a full copy of a
    /// `db_size`-object database.
    ///
    /// # Panics
    /// If `nodes` is zero or a thread cannot be spawned.
    pub fn new(nodes: u32, db_size: u64) -> Self {
        Cluster::new_traced(nodes, db_size, SyncTraceHandle::off())
    }

    /// Like [`Cluster::new`], but every node thread shares `tracer` and
    /// emits telemetry events as it executes and applies updates.
    ///
    /// # Panics
    /// If `nodes` is zero or a thread cannot be spawned.
    pub fn new_traced(nodes: u32, db_size: u64, tracer: SyncTraceHandle) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        let channels: Vec<(Sender<NodeMsg>, Receiver<NodeMsg>)> =
            (0..nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NodeMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let mut handles = Vec::with_capacity(nodes as usize);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let node = NodeThread {
                id: NodeId(i as u32),
                store: ObjectStore::new(db_size),
                clock: LamportClock::new(NodeId(i as u32)),
                inbox: rx,
                peers: senders.clone(),
                wal: Vec::new(),
                stats: NodeStats::default(),
                metrics: RunMetrics::new(),
                tracer: tracer.clone(),
                tick: 0,
            };
            handles.push(Some(
                std::thread::Builder::new()
                    .name(format!("repl-node-{i}"))
                    .spawn(move || node.run())
                    .expect("failed to spawn node thread"),
            ));
        }
        Cluster {
            senders,
            handles,
            remnants: (0..nodes).map(|_| None).collect(),
            db_size,
        }
    }

    /// Crash `node`: its thread exits, dropping the volatile store and
    /// clock; the durable write-ahead log survives. Peers keep mailing
    /// the dead node — their replica updates queue up as the
    /// undelivered propagation backlog that [`Cluster::restart`]
    /// replays. Blocking calls ([`Cluster::execute`],
    /// [`Cluster::quiesce`], [`Cluster::snapshot`]) aimed at a crashed
    /// node stall until it restarts.
    ///
    /// # Panics
    /// If `node` is already crashed.
    pub fn crash(&mut self, node: NodeId) {
        assert!(self.try_crash(node), "node {node} already crashed");
    }

    /// Non-panicking [`Cluster::crash`]: returns `false` (a no-op)
    /// when the node is already down, so overlapping fault-plan crash
    /// windows degrade to nothing instead of aborting the run.
    pub fn try_crash(&mut self, node: NodeId) -> bool {
        let i = node.0 as usize;
        if self.remnants[i].is_some() || self.handles[i].is_none() {
            return false;
        }
        self.senders[i]
            .send(NodeMsg::Crash)
            .expect("node thread gone");
        let handle = self.handles[i].take().expect("crashed node has no thread");
        let remnant = handle.join().expect("node thread panicked");
        self.remnants[i] = Some(remnant.expect("crash must yield a remnant"));
        true
    }

    /// Restart a crashed node: rebuild the store by replaying the
    /// write-ahead log in order (last-writer-wins, which is exactly the
    /// protocol's conflict rule), restore the clock from the replayed
    /// timestamps, and resume on the original inbox — everything peers
    /// sent while the node was down gets applied first. Returns the
    /// number of log records replayed.
    ///
    /// # Panics
    /// If `node` is not crashed.
    pub fn restart(&mut self, node: NodeId) -> u64 {
        self.try_restart(node).expect("restarting a live node")
    }

    /// Non-panicking [`Cluster::restart`]: `None` (a no-op) when the
    /// node is not crashed.
    pub fn try_restart(&mut self, node: NodeId) -> Option<u64> {
        let i = node.0 as usize;
        let remnant = self.remnants[i].take()?;
        let mut store = ObjectStore::new(self.db_size);
        let mut clock = LamportClock::new(remnant.id);
        for (obj, value, ts) in &remnant.wal {
            clock.observe(*ts);
            store.apply_lww(*obj, *ts, value.clone());
        }
        let replayed = remnant.wal.len() as u64;
        let now = SimTime(remnant.tick + 1);
        remnant
            .tracer
            .emit(|| Event::system(now, node, EventKind::RecoveryReplay { messages: replayed }));
        remnant
            .tracer
            .emit(|| Event::system(now, node, EventKind::NodeRestart));
        let thread = NodeThread {
            id: remnant.id,
            store,
            clock,
            inbox: remnant.inbox,
            peers: remnant.peers,
            wal: remnant.wal,
            stats: remnant.stats,
            metrics: remnant.metrics,
            tracer: remnant.tracer,
            tick: remnant.tick,
        };
        self.handles[i] = Some(
            std::thread::Builder::new()
                .name(format!("repl-node-{i}"))
                .spawn(move || thread.run())
                .expect("failed to respawn node thread"),
        );
        Some(replayed)
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.remnants[node.0 as usize].is_some()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the cluster has no nodes (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Execute `spec` at `node`, blocking until the local commit
    /// returns its written values. Replica propagation continues in the
    /// background.
    pub fn execute(&self, node: NodeId, spec: TxnSpec) -> Vec<(ObjectId, Value)> {
        let (tx, rx) = unbounded();
        self.senders[node.0 as usize]
            .send(NodeMsg::Execute { spec, reply: tx })
            .expect("node thread gone");
        rx.recv().expect("node thread dropped reply")
    }

    /// Fire-and-forget execution: enqueue `spec` at `node` without
    /// waiting for the local commit. Used to generate genuinely
    /// concurrent update races across nodes (a blocking
    /// [`Cluster::execute`] from one client serializes everything).
    pub fn execute_async(&self, node: NodeId, spec: TxnSpec) {
        let (tx, _rx) = unbounded();
        self.senders[node.0 as usize]
            .send(NodeMsg::Execute { spec, reply: tx })
            .expect("node thread gone");
    }

    /// Convenience: execute a single-operation transaction.
    pub fn execute_one(&self, node: NodeId, object: ObjectId, op: Op) -> Value {
        let spec = TxnSpec::new(vec![repl_core::Operation::new(object, op)]);
        self.execute(node, spec)
            .pop()
            .expect("single-op transaction returns one value")
            .1
    }

    /// Wait until every node has processed everything enqueued before
    /// this call, twice over — after the second round all replica
    /// updates triggered by earlier executes have been applied. Returns
    /// per-node statistics from the final round.
    pub fn quiesce(&self) -> Vec<NodeStats> {
        let mut stats = Vec::new();
        for round in 0..2 {
            stats.clear();
            for sender in &self.senders {
                let (tx, rx) = unbounded();
                sender
                    .send(NodeMsg::Flush { reply: tx })
                    .expect("node thread gone");
                let s = rx.recv().expect("node thread dropped flush");
                if round == 1 {
                    stats.push(s);
                }
            }
        }
        stats
    }

    /// Collect every live node's mergeable metrics into one registry,
    /// keyed `node{i}` in node order (deterministic regardless of how
    /// the threads interleaved). Crashed nodes are skipped — their
    /// metrics ride the durable remnant and reappear after restart.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        for (i, sender) in self.senders.iter().enumerate() {
            if self.is_crashed(NodeId(i as u32)) {
                continue;
            }
            let (tx, rx) = unbounded();
            sender
                .send(NodeMsg::Metrics { reply: tx })
                .expect("node thread gone");
            let m = rx.recv().expect("node thread dropped metrics");
            registry.absorb(&format!("node{i}"), &m);
        }
        registry
    }

    /// Snapshot one node's store.
    pub fn snapshot(&self, node: NodeId) -> ObjectStore {
        let (tx, rx) = unbounded();
        self.senders[node.0 as usize]
            .send(NodeMsg::Snapshot { reply: tx })
            .expect("node thread gone");
        rx.recv().expect("node thread dropped snapshot")
    }

    /// Digests of all replicas — equal values mean convergence.
    ///
    /// Each node answers from its incrementally-maintained rolling
    /// digest, so this costs one small message round-trip per node
    /// rather than a store clone plus a full scan.
    pub fn digests(&self) -> Vec<u64> {
        self.senders
            .iter()
            .map(|sender| {
                let (tx, rx) = unbounded();
                sender
                    .send(NodeMsg::Digest { reply: tx })
                    .expect("node thread gone");
                rx.recv().expect("node thread dropped digest")
            })
            .collect()
    }

    /// Run the convergence oracle over every live node's store.
    /// `None` means the replicas converged; otherwise the violation
    /// names the lowest diverging object and each node's version of it
    /// — a digest mismatch with a counterexample attached. Crashed
    /// nodes are skipped (a snapshot aimed at one would stall until
    /// restart).
    pub fn divergence(&self) -> Option<repl_check::Violation> {
        let stores: Vec<(NodeId, ObjectStore)> = (0..self.senders.len() as u32)
            .map(NodeId)
            .filter(|&n| !self.is_crashed(n))
            .map(|n| (n, self.snapshot(n)))
            .collect();
        repl_check::check_store_convergence(&stores)
    }

    /// Shut the cluster down, joining every node thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for s in &self.senders {
            let _ = s.send(NodeMsg::Shutdown);
        }
        for h in self.handles.drain(..).flatten() {
            let _ = h.join();
        }
        // Crashed nodes have no thread; dropping their remnants closes
        // their inboxes.
        self.remnants.clear();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_core::Operation;

    #[test]
    fn single_node_execute_returns_values() {
        let c = Cluster::new(1, 10);
        let v = c.execute_one(NodeId(0), ObjectId(3), Op::Add(7));
        assert_eq!(v, Value::Int(7));
        let v = c.execute_one(NodeId(0), ObjectId(3), Op::Add(5));
        assert_eq!(v, Value::Int(12));
        c.shutdown();
    }

    #[test]
    fn updates_propagate_to_all_replicas() {
        let c = Cluster::new(3, 10);
        c.execute_one(NodeId(0), ObjectId(1), Op::Set(Value::Int(42)));
        c.quiesce();
        for i in 0..3 {
            let snap = c.snapshot(NodeId(i));
            assert_eq!(snap.get(ObjectId(1)).value, Value::Int(42), "node {i}");
        }
        c.shutdown();
    }

    #[test]
    fn replicas_converge_under_concurrent_writes() {
        let c = Cluster::new(4, 50);
        for round in 0..25 {
            for node in 0..4u32 {
                let spec = TxnSpec::new(vec![
                    Operation::new(ObjectId(round % 50), Op::Set(Value::Int(i64::from(node)))),
                    Operation::new(ObjectId((round + 1) % 50), Op::Add(1)),
                ]);
                c.execute(NodeId(node), spec);
            }
        }
        c.quiesce();
        let digests = c.digests();
        assert!(
            digests.iter().all(|&d| d == digests[0]),
            "replicas diverged: {digests:?}"
        );
        // The oracle agrees, and would have named the diverging object.
        assert_eq!(c.divergence(), None);
        c.shutdown();
    }

    #[test]
    fn conflicting_updates_are_counted() {
        let c = Cluster::new(2, 1);
        // Fire-and-forget from both sides so the writes genuinely race
        // (a blocking client would serialize node 0's replica update
        // ahead of node 1's own write).
        for i in 0..100 {
            let s0 = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Set(Value::Int(i)))]);
            let s1 = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Set(Value::Int(-i)))]);
            c.execute_async(NodeId(0), s0);
            c.execute_async(NodeId(1), s1);
        }
        let stats = c.quiesce();
        let reconciliations: u64 = stats.iter().map(|s| s.reconciliations).sum();
        let stale: u64 = stats.iter().map(|s| s.stale).sum();
        assert!(
            reconciliations + stale > 0,
            "concurrent blind writes must race: {stats:?}"
        );
        let digests = c.digests();
        assert_eq!(digests[0], digests[1]);
        c.shutdown();
    }

    #[test]
    fn stats_track_executions() {
        let c = Cluster::new(2, 10);
        for _ in 0..5 {
            c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        }
        let stats = c.quiesce();
        assert_eq!(stats[0].executed, 5);
        assert_eq!(stats[1].executed, 0);
        assert_eq!(stats[1].replica_applied, 5);
        c.shutdown();
    }

    #[test]
    fn metrics_mirror_stats_and_survive_crash() {
        let mut c = Cluster::new(2, 10);
        for _ in 0..5 {
            c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        }
        c.quiesce();
        let reg = c.metrics();
        let n0 = reg.runs.get("node0").expect("node0 metrics");
        let n1 = reg.runs.get("node1").expect("node1 metrics");
        assert_eq!(n0.counter("executed"), 5);
        assert_eq!(n1.counter("replica_applied"), 5);
        let batches = n1.histogram("replica_batch_ops").expect("batch histogram");
        assert_eq!(batches.count(), 5);
        assert_eq!(batches.max(), 1);
        // Metrics ride the durable remnant across a crash/restart.
        c.crash(NodeId(0));
        assert!(!c.metrics().runs.contains_key("node0"));
        c.restart(NodeId(0));
        c.quiesce();
        let reg = c.metrics();
        assert_eq!(
            reg.runs
                .get("node0")
                .expect("restarted")
                .counter("executed"),
            5
        );
        c.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let c = Cluster::new(2, 4);
        c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        drop(c); // must not hang or panic
    }

    #[test]
    fn traced_cluster_records_commit_and_replica_events() {
        use repl_telemetry::RingBuffer;
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBuffer::new(256)));
        let c = Cluster::new_traced(3, 8, SyncTraceHandle::shared(&ring));
        for _ in 0..4 {
            c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        }
        c.quiesce();
        c.shutdown();
        let ring = ring.lock().unwrap();
        let commits = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::TxnCommit))
            .count();
        let sends = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::MsgSent { .. }))
            .count();
        let applies = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::ReplicaApply))
            .count();
        assert_eq!(commits, 4);
        assert_eq!(sends, 8, "each commit fans out to both peers");
        assert_eq!(applies, 8, "both peers apply every commit");
    }

    #[test]
    fn crash_and_restart_recovers_own_writes() {
        let mut c = Cluster::new(2, 8);
        c.execute_one(NodeId(0), ObjectId(3), Op::Set(Value::Int(9)));
        c.quiesce();
        c.crash(NodeId(0));
        assert!(c.is_crashed(NodeId(0)));
        let replayed = c.restart(NodeId(0));
        assert!(replayed >= 1, "the write must be in the WAL");
        assert_eq!(c.snapshot(NodeId(0)).get(ObjectId(3)).value, Value::Int(9));
        c.shutdown();
    }

    #[test]
    fn crashed_node_catches_up_from_queued_backlog() {
        let mut c = Cluster::new(3, 16);
        c.crash(NodeId(2));
        // Peers keep committing while node 2 is down; their replica
        // updates queue at its inbox.
        for i in 0..10 {
            c.execute_one(NodeId(0), ObjectId(i % 16), Op::Add(1));
            c.execute_one(NodeId(1), ObjectId((i + 1) % 16), Op::Add(2));
        }
        c.restart(NodeId(2));
        c.quiesce();
        let digests = c.digests();
        assert!(
            digests.iter().all(|&d| d == digests[0]),
            "recovered node diverged: {digests:?}"
        );
        if let Some(v) = c.divergence() {
            panic!("convergence oracle disagrees with digests: {v}");
        }
        c.shutdown();
    }

    #[test]
    fn repeated_crashes_stay_lossless() {
        let mut c = Cluster::new(2, 4);
        for round in 0..5 {
            c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
            c.quiesce();
            c.crash(NodeId(1));
            c.execute_one(NodeId(0), ObjectId(1), Op::Add(round));
            c.restart(NodeId(1));
            c.quiesce();
        }
        let digests = c.digests();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(c.snapshot(NodeId(1)).get(ObjectId(0)).value, Value::Int(5));
        c.shutdown();
    }

    #[test]
    fn lazy_group_increments_can_lose_updates() {
        let c = Cluster::new(3, 1);
        for node in 0..3u32 {
            for _ in 0..10 {
                c.execute_one(NodeId(node), ObjectId(0), Op::Add(1));
            }
        }
        c.quiesce();
        // Lazy-group replication ships *values*, not deltas — racing
        // increments overwrite each other (the paper's lost-update
        // problem). The replicas converge, but the total may be below
        // the true 30.
        let digests = c.digests();
        assert!(digests.iter().all(|&d| d == digests[0]));
        let total = c
            .snapshot(NodeId(0))
            .get(ObjectId(0))
            .value
            .as_int()
            .unwrap();
        assert!(total <= 30, "cannot exceed the true total");
        assert!(total >= 10, "own increments are locally sequential");
    }
}
