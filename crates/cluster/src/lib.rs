//! # repl-cluster — a threaded lazy-group replica cluster
//!
//! The discrete-event engines in `repl-core` measure the paper's rates;
//! this crate shows the same protocol logic running on a *real*
//! message-passing runtime: one OS thread per node, crossbeam channels
//! as the network, and the identical timestamp test from the paper's
//! Figure 4 applied to incoming replica updates.
//!
//! The cluster exposes the update-anywhere API of a lazy-group system:
//! execute a transaction at any node, updates propagate asynchronously,
//! dangerous updates are counted as reconciliations and resolved by
//! time priority so the replicas converge.
//!
//! ```
//! use repl_cluster::Cluster;
//! use repl_core::Op;
//! use repl_storage::{NodeId, ObjectId, Value};
//!
//! let cluster = Cluster::new(3, 16);
//! cluster.execute_one(NodeId(0), ObjectId(1), Op::Set(Value::Int(7)));
//! cluster.quiesce();
//! // All replicas converge to the same state.
//! let digests = cluster.digests();
//! assert!(digests.iter().all(|&d| d == digests[0]));
//! assert_eq!(
//!     cluster.snapshot(NodeId(2)).get(ObjectId(1)).value,
//!     Value::Int(7)
//! );
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod two_tier;

use crossbeam::channel::{unbounded, Receiver, Sender};
use repl_core::{Op, TxnSpec};
use repl_sim::SimTime;
use repl_storage::{
    ApplyOutcome, LamportClock, NodeId, ObjectId, ObjectStore, TxnId, UpdateRecord, Value,
};
use repl_telemetry::{Event, EventKind, SyncTraceHandle};
use std::thread::JoinHandle;

/// Messages a node thread processes.
enum NodeMsg {
    /// Execute a transaction locally and broadcast its updates.
    Execute {
        spec: TxnSpec,
        reply: Sender<Vec<(ObjectId, Value)>>,
    },
    /// Apply a remote node's committed updates (one lazy transaction).
    Replica { updates: Vec<UpdateRecord> },
    /// Reply when every earlier message has been processed.
    Flush { reply: Sender<NodeStats> },
    /// Snapshot the node's full store.
    Snapshot { reply: Sender<ObjectStore> },
    /// Terminate the node thread.
    Shutdown,
}

/// Per-node statistics returned by a flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Transactions executed at this node.
    pub executed: u64,
    /// Replica transactions applied.
    pub replica_applied: u64,
    /// Stale replica updates ignored.
    pub stale: u64,
    /// Dangerous updates detected (reconciliations).
    pub reconciliations: u64,
}

struct NodeThread {
    id: NodeId,
    store: ObjectStore,
    clock: LamportClock,
    inbox: Receiver<NodeMsg>,
    peers: Vec<Sender<NodeMsg>>,
    stats: NodeStats,
    tracer: SyncTraceHandle,
    // Threads have no simulated clock; events carry a per-node logical
    // tick, one per processed message.
    tick: u64,
}

impl NodeThread {
    fn run(mut self) {
        while let Ok(msg) = self.inbox.recv() {
            match msg {
                NodeMsg::Execute { spec, reply } => {
                    let results = self.execute(&spec);
                    let _ = reply.send(results);
                }
                NodeMsg::Replica { updates } => self.apply_replica(updates),
                NodeMsg::Flush { reply } => {
                    let _ = reply.send(self.stats);
                }
                NodeMsg::Snapshot { reply } => {
                    let _ = reply.send(self.store.clone());
                }
                NodeMsg::Shutdown => break,
            }
        }
        self.tracer.flush();
    }

    fn execute(&mut self, spec: &TxnSpec) -> Vec<(ObjectId, Value)> {
        self.stats.executed += 1;
        self.tick += 1;
        let now = SimTime(self.tick);
        // Stamp events with a node-local transaction id; the threaded
        // runtime has no global id allocator.
        let txn = TxnId(self.stats.executed);
        let id = self.id;
        self.tracer
            .emit(|| Event::new(now, id, txn, EventKind::TxnBegin));
        let mut updates = Vec::with_capacity(spec.ops.len());
        let mut results = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = self.store.get(op.object).clone();
            let new_value = op.op.apply(&current.value);
            let new_ts = self.clock.tick();
            self.store.set(op.object, new_value.clone(), new_ts);
            updates.push(UpdateRecord {
                txn: repl_storage::TxnId(0),
                object: op.object,
                old_ts: current.ts,
                new_ts,
                value: new_value.clone(),
            });
            results.push((op.object, new_value));
        }
        self.tracer
            .emit(|| Event::new(now, id, txn, EventKind::TxnCommit));
        for (i, peer) in self.peers.iter().enumerate() {
            if i == self.id.0 as usize {
                continue;
            }
            let _ = peer.send(NodeMsg::Replica {
                updates: updates.clone(),
            });
            self.tracer.emit(|| {
                Event::new(
                    now,
                    id,
                    txn,
                    EventKind::MsgSent {
                        to: NodeId(i as u32),
                    },
                )
            });
        }
        results
    }

    fn apply_replica(&mut self, updates: Vec<UpdateRecord>) {
        self.tick += 1;
        let now = SimTime(self.tick);
        let id = self.id;
        let mut conflicted = false;
        for u in updates {
            self.clock.observe(u.new_ts);
            let object = u.object;
            match self
                .store
                .apply_versioned(u.object, u.old_ts, u.new_ts, u.value)
            {
                ApplyOutcome::Applied => {}
                ApplyOutcome::Duplicate => {
                    self.stats.stale += 1;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::StaleSkip));
                }
                // Dangerous updates are resolved by time priority
                // inside the store; both directions count as
                // reconciliations.
                ApplyOutcome::ConflictApplied | ApplyOutcome::ConflictIgnored => {
                    conflicted = true;
                    self.tracer
                        .emit(|| Event::system(now, id, EventKind::DangerousUpdate { object }));
                }
            }
        }
        self.stats.replica_applied += 1;
        self.tracer
            .emit(|| Event::system(now, id, EventKind::ReplicaApply));
        if conflicted {
            self.stats.reconciliations += 1;
            self.tracer
                .emit(|| Event::system(now, id, EventKind::Reconcile));
        }
    }
}

/// A running cluster of lazy-group replica nodes.
pub struct Cluster {
    senders: Vec<Sender<NodeMsg>>,
    handles: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Spawn `nodes` replica threads, each holding a full copy of a
    /// `db_size`-object database.
    ///
    /// # Panics
    /// If `nodes` is zero or a thread cannot be spawned.
    pub fn new(nodes: u32, db_size: u64) -> Self {
        Cluster::new_traced(nodes, db_size, SyncTraceHandle::off())
    }

    /// Like [`Cluster::new`], but every node thread shares `tracer` and
    /// emits telemetry events as it executes and applies updates.
    ///
    /// # Panics
    /// If `nodes` is zero or a thread cannot be spawned.
    pub fn new_traced(nodes: u32, db_size: u64, tracer: SyncTraceHandle) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        let channels: Vec<(Sender<NodeMsg>, Receiver<NodeMsg>)> =
            (0..nodes).map(|_| unbounded()).collect();
        let senders: Vec<Sender<NodeMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let mut handles = Vec::with_capacity(nodes as usize);
        for (i, (_, rx)) in channels.into_iter().enumerate() {
            let node = NodeThread {
                id: NodeId(i as u32),
                store: ObjectStore::new(db_size),
                clock: LamportClock::new(NodeId(i as u32)),
                inbox: rx,
                peers: senders.clone(),
                stats: NodeStats::default(),
                tracer: tracer.clone(),
                tick: 0,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("repl-node-{i}"))
                    .spawn(move || node.run())
                    .expect("failed to spawn node thread"),
            );
        }
        Cluster { senders, handles }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the cluster has no nodes (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Execute `spec` at `node`, blocking until the local commit
    /// returns its written values. Replica propagation continues in the
    /// background.
    pub fn execute(&self, node: NodeId, spec: TxnSpec) -> Vec<(ObjectId, Value)> {
        let (tx, rx) = unbounded();
        self.senders[node.0 as usize]
            .send(NodeMsg::Execute { spec, reply: tx })
            .expect("node thread gone");
        rx.recv().expect("node thread dropped reply")
    }

    /// Fire-and-forget execution: enqueue `spec` at `node` without
    /// waiting for the local commit. Used to generate genuinely
    /// concurrent update races across nodes (a blocking
    /// [`Cluster::execute`] from one client serializes everything).
    pub fn execute_async(&self, node: NodeId, spec: TxnSpec) {
        let (tx, _rx) = unbounded();
        self.senders[node.0 as usize]
            .send(NodeMsg::Execute { spec, reply: tx })
            .expect("node thread gone");
    }

    /// Convenience: execute a single-operation transaction.
    pub fn execute_one(&self, node: NodeId, object: ObjectId, op: Op) -> Value {
        let spec = TxnSpec::new(vec![repl_core::Operation::new(object, op)]);
        self.execute(node, spec)
            .pop()
            .expect("single-op transaction returns one value")
            .1
    }

    /// Wait until every node has processed everything enqueued before
    /// this call, twice over — after the second round all replica
    /// updates triggered by earlier executes have been applied. Returns
    /// per-node statistics from the final round.
    pub fn quiesce(&self) -> Vec<NodeStats> {
        let mut stats = Vec::new();
        for round in 0..2 {
            stats.clear();
            for sender in &self.senders {
                let (tx, rx) = unbounded();
                sender
                    .send(NodeMsg::Flush { reply: tx })
                    .expect("node thread gone");
                let s = rx.recv().expect("node thread dropped flush");
                if round == 1 {
                    stats.push(s);
                }
            }
        }
        stats
    }

    /// Snapshot one node's store.
    pub fn snapshot(&self, node: NodeId) -> ObjectStore {
        let (tx, rx) = unbounded();
        self.senders[node.0 as usize]
            .send(NodeMsg::Snapshot { reply: tx })
            .expect("node thread gone");
        rx.recv().expect("node thread dropped snapshot")
    }

    /// Digests of all replicas — equal values mean convergence.
    pub fn digests(&self) -> Vec<u64> {
        (0..self.senders.len())
            .map(|i| self.snapshot(NodeId(i as u32)).digest())
            .collect()
    }

    /// Shut the cluster down, joining every node thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for s in &self.senders {
            let _ = s.send(NodeMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_core::Operation;

    #[test]
    fn single_node_execute_returns_values() {
        let c = Cluster::new(1, 10);
        let v = c.execute_one(NodeId(0), ObjectId(3), Op::Add(7));
        assert_eq!(v, Value::Int(7));
        let v = c.execute_one(NodeId(0), ObjectId(3), Op::Add(5));
        assert_eq!(v, Value::Int(12));
        c.shutdown();
    }

    #[test]
    fn updates_propagate_to_all_replicas() {
        let c = Cluster::new(3, 10);
        c.execute_one(NodeId(0), ObjectId(1), Op::Set(Value::Int(42)));
        c.quiesce();
        for i in 0..3 {
            let snap = c.snapshot(NodeId(i));
            assert_eq!(snap.get(ObjectId(1)).value, Value::Int(42), "node {i}");
        }
        c.shutdown();
    }

    #[test]
    fn replicas_converge_under_concurrent_writes() {
        let c = Cluster::new(4, 50);
        for round in 0..25 {
            for node in 0..4u32 {
                let spec = TxnSpec::new(vec![
                    Operation::new(ObjectId(round % 50), Op::Set(Value::Int(i64::from(node)))),
                    Operation::new(ObjectId((round + 1) % 50), Op::Add(1)),
                ]);
                c.execute(NodeId(node), spec);
            }
        }
        c.quiesce();
        let digests = c.digests();
        assert!(
            digests.iter().all(|&d| d == digests[0]),
            "replicas diverged: {digests:?}"
        );
        c.shutdown();
    }

    #[test]
    fn conflicting_updates_are_counted() {
        let c = Cluster::new(2, 1);
        // Fire-and-forget from both sides so the writes genuinely race
        // (a blocking client would serialize node 0's replica update
        // ahead of node 1's own write).
        for i in 0..100 {
            let s0 = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Set(Value::Int(i)))]);
            let s1 = TxnSpec::new(vec![Operation::new(ObjectId(0), Op::Set(Value::Int(-i)))]);
            c.execute_async(NodeId(0), s0);
            c.execute_async(NodeId(1), s1);
        }
        let stats = c.quiesce();
        let reconciliations: u64 = stats.iter().map(|s| s.reconciliations).sum();
        let stale: u64 = stats.iter().map(|s| s.stale).sum();
        assert!(
            reconciliations + stale > 0,
            "concurrent blind writes must race: {stats:?}"
        );
        let digests = c.digests();
        assert_eq!(digests[0], digests[1]);
        c.shutdown();
    }

    #[test]
    fn stats_track_executions() {
        let c = Cluster::new(2, 10);
        for _ in 0..5 {
            c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        }
        let stats = c.quiesce();
        assert_eq!(stats[0].executed, 5);
        assert_eq!(stats[1].executed, 0);
        assert_eq!(stats[1].replica_applied, 5);
        c.shutdown();
    }

    #[test]
    fn drop_joins_threads() {
        let c = Cluster::new(2, 4);
        c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        drop(c); // must not hang or panic
    }

    #[test]
    fn traced_cluster_records_commit_and_replica_events() {
        use repl_telemetry::RingBuffer;
        use std::sync::{Arc, Mutex};

        let ring = Arc::new(Mutex::new(RingBuffer::new(256)));
        let c = Cluster::new_traced(3, 8, SyncTraceHandle::shared(&ring));
        for _ in 0..4 {
            c.execute_one(NodeId(0), ObjectId(0), Op::Add(1));
        }
        c.quiesce();
        c.shutdown();
        let ring = ring.lock().unwrap();
        let commits = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::TxnCommit))
            .count();
        let sends = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::MsgSent { .. }))
            .count();
        let applies = ring
            .events()
            .filter(|e| matches!(e.kind, EventKind::ReplicaApply))
            .count();
        assert_eq!(commits, 4);
        assert_eq!(sends, 8, "each commit fans out to both peers");
        assert_eq!(applies, 8, "both peers apply every commit");
    }

    #[test]
    fn lazy_group_increments_can_lose_updates() {
        let c = Cluster::new(3, 1);
        for node in 0..3u32 {
            for _ in 0..10 {
                c.execute_one(NodeId(node), ObjectId(0), Op::Add(1));
            }
        }
        c.quiesce();
        // Lazy-group replication ships *values*, not deltas — racing
        // increments overwrite each other (the paper's lost-update
        // problem). The replicas converge, but the total may be below
        // the true 30.
        let digests = c.digests();
        assert!(digests.iter().all(|&d| d == digests[0]));
        let total = c
            .snapshot(NodeId(0))
            .get(ObjectId(0))
            .value
            .as_int()
            .unwrap();
        assert!(total <= 30, "cannot exceed the true total");
        assert!(total >= 10, "own increments are locally sequential");
    }
}
