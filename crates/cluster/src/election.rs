//! Deterministic leader election for the replicated base tier — a
//! small Raft-style vote round specialized to the two-tier runtime.
//!
//! The base group's control plane (the [`BaseGroup`] handle) plays the
//! role of the election network: it gathers each survivor's
//! [`Candidate`] status, nominates the winner with [`pick_candidate`]
//! (highest replicated LSN wins, lowest node id breaks ties — the most
//! caught-up replica loses no acknowledged commits), and runs a vote
//! round. The *decisions* stay in the replicas: each one judges a
//! [`VoteRequest`] with [`grant_vote`] against its own epoch and log
//! head, and a [`Tally`] over the replies decides whether the round
//! reached the majority of the **full** group size (crashed replicas
//! count against the quorum, never for it).
//!
//! Everything here is pure and seedless, so an election's outcome is a
//! function of the survivors' states alone — the same crash schedule
//! elects the same leaders in every run.
//!
//! [`BaseGroup`]: crate::two_tier::BaseGroup

use repl_storage::NodeId;
use std::fmt;

/// An epoch (term) number. Epochs are strictly increasing across
/// elections; every replicated message carries its epoch, and replicas
/// fence anything stamped with a stale one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One survivor's electable state: its current epoch and how far its
/// replicated log reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The replica.
    pub node: NodeId,
    /// Its current epoch.
    pub epoch: Epoch,
    /// Its replicated-log head (the last sequence number it holds).
    pub head: u64,
}

/// Votes needed to elect a leader in a group of `group_size` replicas:
/// a strict majority of the *full* membership, so two disjoint sets of
/// survivors can never both elect (at-most-one-primary-per-epoch).
pub fn quorum(group_size: usize) -> usize {
    group_size / 2 + 1
}

/// Nominate the survivor with the longest replicated log; node id
/// breaks ties. Deterministic: the same survivor set always nominates
/// the same candidate. `None` when there are no survivors.
pub fn pick_candidate(survivors: &[Candidate]) -> Option<Candidate> {
    survivors
        .iter()
        .copied()
        .max_by(|a, b| a.head.cmp(&b.head).then(b.node.0.cmp(&a.node.0)))
}

/// A request for a vote in `epoch` on behalf of `candidate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteRequest {
    /// The proposed (new) epoch.
    pub epoch: Epoch,
    /// The nominated replica.
    pub candidate: NodeId,
    /// The candidate's replicated-log head.
    pub head: u64,
}

/// A replica's answer to a [`VoteRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteReply {
    /// The voter.
    pub from: NodeId,
    /// Whether the vote was granted.
    pub granted: bool,
    /// The voter's epoch *after* judging the request (advanced to the
    /// request's epoch when granting; unchanged when the request was
    /// stale). A denial carrying a higher epoch forces a new round.
    pub epoch: Epoch,
}

/// The vote rule a replica applies (Raft §5.2/§5.4.1 collapsed to this
/// runtime's needs): grant iff the proposed epoch is *newer* than
/// anything the replica has seen and the candidate's log is at least as
/// long as its own — a leader that would lose acknowledged commits can
/// never win.
pub fn grant_vote(my_epoch: Epoch, my_head: u64, req: &VoteRequest) -> bool {
    req.epoch > my_epoch && req.head >= my_head
}

/// Counts [`VoteReply`]s toward the quorum of a fixed group size.
#[derive(Debug, Clone)]
pub struct Tally {
    group_size: usize,
    granted: Vec<NodeId>,
    /// The highest epoch seen in any reply (grant or denial); a failed
    /// round retries above this.
    pub max_epoch: Epoch,
}

impl Tally {
    /// An empty tally for a group of `group_size` replicas.
    pub fn new(group_size: usize) -> Self {
        Tally {
            group_size,
            granted: Vec::new(),
            max_epoch: Epoch(0),
        }
    }

    /// Record one reply. Duplicate grants from the same voter count
    /// once.
    pub fn record(&mut self, reply: VoteReply) {
        self.max_epoch = self.max_epoch.max(reply.epoch);
        if reply.granted && !self.granted.contains(&reply.from) {
            self.granted.push(reply.from);
        }
    }

    /// Grants so far.
    pub fn granted(&self) -> usize {
        self.granted.len()
    }

    /// Whether the grants reach the majority of the full group.
    pub fn elected(&self) -> bool {
        self.granted.len() >= quorum(self.group_size)
    }
}

/// How an election attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionOutcome {
    /// `leader` won `epoch` after `rounds` vote rounds.
    Elected {
        /// The new primary.
        leader: NodeId,
        /// The epoch it leads.
        epoch: Epoch,
        /// Vote rounds it took (1 = first round succeeded).
        rounds: u32,
    },
    /// Too few survivors to reach a majority of the full group; the
    /// tier degrades to stale reads and queued tentative syncs.
    NoQuorum {
        /// Live replicas.
        live: usize,
        /// Votes a majority requires.
        need: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(node: u32, epoch: u64, head: u64) -> Candidate {
        Candidate {
            node: NodeId(node),
            epoch: Epoch(epoch),
            head,
        }
    }

    #[test]
    fn quorum_is_a_strict_majority() {
        assert_eq!(quorum(1), 1);
        assert_eq!(quorum(2), 2);
        assert_eq!(quorum(3), 2);
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(5), 3);
    }

    #[test]
    fn highest_head_wins_node_id_breaks_ties() {
        let c = pick_candidate(&[cand(0, 1, 5), cand(1, 1, 9), cand(2, 1, 9)]).unwrap();
        assert_eq!(c.node, NodeId(1), "lowest id among the longest logs");
        assert_eq!(pick_candidate(&[]), None);
        // A lone survivor nominates itself.
        assert_eq!(pick_candidate(&[cand(2, 3, 0)]).unwrap().node, NodeId(2));
    }

    #[test]
    fn votes_require_newer_epoch_and_no_log_regression() {
        let req = VoteRequest {
            epoch: Epoch(3),
            candidate: NodeId(1),
            head: 7,
        };
        assert!(grant_vote(Epoch(2), 7, &req));
        assert!(grant_vote(Epoch(2), 5, &req));
        // Same or newer epoch at the voter: deny.
        assert!(!grant_vote(Epoch(3), 5, &req));
        assert!(!grant_vote(Epoch(4), 0, &req));
        // Voter holds commits the candidate lacks: deny.
        assert!(!grant_vote(Epoch(2), 8, &req));
    }

    #[test]
    fn tally_needs_majority_of_full_group() {
        let mut t = Tally::new(3);
        t.record(VoteReply {
            from: NodeId(0),
            granted: true,
            epoch: Epoch(2),
        });
        assert!(!t.elected(), "one grant of three is not a majority");
        // Duplicate grants count once.
        t.record(VoteReply {
            from: NodeId(0),
            granted: true,
            epoch: Epoch(2),
        });
        assert_eq!(t.granted(), 1);
        t.record(VoteReply {
            from: NodeId(2),
            granted: true,
            epoch: Epoch(2),
        });
        assert!(t.elected());
    }

    #[test]
    fn tally_tracks_max_epoch_from_denials() {
        let mut t = Tally::new(3);
        t.record(VoteReply {
            from: NodeId(1),
            granted: false,
            epoch: Epoch(9),
        });
        assert_eq!(t.max_epoch, Epoch(9), "a denial's epoch drives the retry");
        assert!(!t.elected());
    }

    #[test]
    fn same_survivors_elect_the_same_leader() {
        let survivors = [cand(2, 4, 11), cand(1, 4, 11), cand(0, 3, 8)];
        let a = pick_candidate(&survivors).unwrap();
        let b = pick_candidate(&survivors).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.node, NodeId(1));
    }
}
