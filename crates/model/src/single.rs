//! Single-node wait and deadlock analysis — equations (2)–(5).
//!
//! These are the building blocks: the replicated-system equations in
//! [`crate::eager`] and [`crate::lazy`] are obtained by substituting the
//! replicated transaction population into the same conflict argument.

use crate::Params;

/// Equation (2): the probability that a transaction waits at least once
/// during its lifetime on a single node.
///
/// Each of the `Actions` requests hits a lock held by one of the other
/// `Transactions` concurrent transactions (each holding about
/// `Actions / 2` locks) with probability
/// `Transactions × Actions / (2 × DB_Size)`, so
///
/// ```text
/// PW ≈ Transactions × Actions² / (2 × DB_Size)
/// ```
pub fn wait_probability(p: &Params) -> f64 {
    p.transactions_per_node() * p.actions * p.actions / (2.0 * p.db_size)
}

/// Equation (3): the probability that a transaction deadlocks during its
/// lifetime (its *deadlock hazard*),
///
/// ```text
/// PD ≈ PW² / Transactions
///    = TPS × Action_Time × Actions⁵ / (4 × DB_Size²)
/// ```
///
/// A deadlock needs a cycle; length-2 cycles dominate when `PW << 1`.
pub fn deadlock_probability(p: &Params) -> f64 {
    p.tps * p.action_time * p.actions.powi(5) / (4.0 * p.db_size * p.db_size)
}

/// Equation (4): the rate (per second) at which *one* transaction
/// deadlocks — the hazard of equation (3) divided by the transaction
/// lifetime,
///
/// ```text
/// Trans_Deadlock_Rate = TPS × Actions⁴ / (4 × DB_Size²)
/// ```
pub fn transaction_deadlock_rate(p: &Params) -> f64 {
    p.tps * p.actions.powi(4) / (4.0 * p.db_size * p.db_size)
}

/// Equation (5): the deadlock rate of the whole node — equation (4)
/// multiplied by the concurrent transaction count of equation (1),
///
/// ```text
/// Node_Deadlock_Rate = TPS² × Action_Time × Actions⁵ / (4 × DB_Size²)
/// ```
pub fn node_deadlock_rate(p: &Params) -> f64 {
    p.tps * p.tps * p.action_time * p.actions.powi(5) / (4.0 * p.db_size * p.db_size)
}

/// The wait *rate* for a single node (waits per second): `PW` divided by
/// the transaction duration, times the concurrent transaction count.
/// The paper derives the system-wide analogue in equation (10); this is
/// the `Nodes = 1` specialization, used by experiment E1 to check the
/// simulator against the model.
pub fn node_wait_rate(p: &Params) -> f64 {
    wait_probability(p) / p.transaction_duration() * p.transactions_per_node()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Params {
        Params::new(10_000.0, 1.0, 10.0, 4.0, 0.01)
    }

    #[test]
    fn eq2_matches_closed_form() {
        let p = base();
        // Transactions = 10*4*0.01 = 0.4; PW = 0.4*16/(2*10000) = 3.2e-4
        assert!((wait_probability(&p) - 3.2e-4).abs() < 1e-12);
    }

    #[test]
    fn eq3_equals_pw_squared_over_transactions() {
        let p = base();
        let pw = wait_probability(&p);
        let direct = pw * pw / p.transactions_per_node();
        assert!((deadlock_probability(&p) - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn eq4_is_eq3_over_duration() {
        let p = base();
        let expected = deadlock_probability(&p) / p.transaction_duration();
        assert!((transaction_deadlock_rate(&p) - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn eq5_is_eq4_times_transactions() {
        let p = base();
        let expected = transaction_deadlock_rate(&p) * p.transactions_per_node();
        assert!((node_deadlock_rate(&p) - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn deadlocks_scale_with_fifth_power_of_actions() {
        let p1 = base();
        let p2 = base().with_actions(8.0);
        let ratio = node_deadlock_rate(&p2) / node_deadlock_rate(&p1);
        assert!((ratio - 32.0).abs() < 1e-9, "2^5 = 32, got {ratio}");
    }

    #[test]
    fn waits_much_more_frequent_than_deadlocks() {
        // "it takes two waits to make a deadlock" — PD ≈ PW² / T << PW.
        let p = base();
        assert!(deadlock_probability(&p) < wait_probability(&p) / 100.0);
    }
}
