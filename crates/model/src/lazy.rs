//! Lazy-replication analysis — equations (14)–(19).
//!
//! Lazy-group replication converts the waits of an eager system into
//! *reconciliations* (equation 14); disconnected (mobile) operation makes
//! this far worse (equations 15–18); lazy-master replication trades
//! reconciliations back for deadlocks at an `N²` rate (equation 19).

use crate::Params;

/// Equation (14): the system-wide lazy-group reconciliation rate for
/// connected operation. Transactions that would *wait* under eager
/// replication instead require reconciliation, so the rate follows the
/// eager wait-rate curve (equation 10):
///
/// ```text
/// Lazy_Group_Reconciliation_Rate
///   = TPS² × Action_Time × (Actions × Nodes)³ / (2 × DB_Size)
/// ```
pub fn group_reconciliation_rate(p: &Params) -> f64 {
    crate::eager::total_wait_rate(p)
}

/// Equation (15): the number of distinct pending *outbound* object
/// updates a mobile node has accumulated when it reconnects,
///
/// ```text
/// Outbound_Updates ≈ Disconnect_Time × TPS × Actions
/// ```
pub fn outbound_updates(p: &Params) -> f64 {
    p.disconnected_time * p.tps * p.actions
}

/// Equation (16): the pending *inbound* updates from the rest of the
/// network, `(Nodes − 1) ×` the outbound count.
pub fn inbound_updates(p: &Params) -> f64 {
    (p.nodes - 1.0) * outbound_updates(p)
}

/// Equation (17): the chance that a reconnecting mobile node needs
/// reconciliation — the chance its inbound and outbound update sets
/// overlap,
///
/// ```text
/// P(collision) ≈ Inbound × Outbound / DB_Size
///              ≈ Nodes × (Disconnect_Time × TPS × Actions)² / DB_Size
/// ```
///
/// The paper simplifies `Nodes − 1` to `Nodes` in the final form; we keep
/// the exact product so the two agree for large `Nodes`.
pub fn mobile_collision_probability(p: &Params) -> f64 {
    inbound_updates(p) * outbound_updates(p) / p.db_size
}

/// Equation (18): the reconciliation rate for the whole mobile system —
/// every node runs one reconnect cycle per `Disconnect_Time`, so
///
/// ```text
/// Lazy_Group_Reconciliation_Rate
///   ≈ (Disconnect_Time) × (TPS × Actions × Nodes)² / DB_Size
/// ```
///
/// Quadratic in the disconnect window and in `TPS × Actions × Nodes`.
pub fn mobile_reconciliation_rate(p: &Params) -> f64 {
    mobile_collision_probability(p) * p.nodes / p.disconnected_time
}

/// Equation (19): the deadlock rate of a lazy-master system. Master
/// transactions behave like a single-node system running the *aggregate*
/// rate `TPS × Nodes`:
///
/// ```text
/// Lazy_Master_Deadlock_Rate
///   = (TPS × Nodes)² × Action_Time × Actions⁵ / (4 × DB_Size²)
/// ```
///
/// Quadratic in nodes — better than eager's cubic (shorter transactions),
/// but still unstable.
pub fn master_deadlock_rate(p: &Params) -> f64 {
    let total_tps = p.tps * p.nodes;
    total_tps * total_tps * p.action_time * p.actions.powi(5) / (4.0 * p.db_size * p.db_size)
}

/// The two-tier scheme executes its *base* transactions under the
/// lazy-master discipline, so its base-transaction deadlock rate is
/// equation (19). Its reconciliation rate is zero when all transactions
/// commute (§7); otherwise it is driven by the acceptance-criteria
/// failure rate, which is application-specific and measured (not
/// predicted) by the harness.
pub fn two_tier_base_deadlock_rate(p: &Params) -> f64 {
    master_deadlock_rate(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Params {
        Params::new(10_000.0, 4.0, 10.0, 4.0, 0.01).with_disconnected_time(3600.0)
    }

    #[test]
    fn eq14_equals_eager_wait_rate() {
        let p = base();
        assert_eq!(
            group_reconciliation_rate(&p),
            crate::eager::total_wait_rate(&p)
        );
    }

    #[test]
    fn eq14_cubic_in_nodes() {
        let p1 = base();
        let p2 = base().with_nodes(8.0);
        let ratio = group_reconciliation_rate(&p2) / group_reconciliation_rate(&p1);
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq15_16_update_sets() {
        let p = base();
        // 3600 s * 10 tps * 4 actions = 144_000 outbound updates.
        assert!((outbound_updates(&p) - 144_000.0).abs() < 1e-6);
        assert!((inbound_updates(&p) - 3.0 * 144_000.0).abs() < 1e-6);
    }

    #[test]
    fn eq17_collision_probability_formula() {
        let p = base();
        let expected =
            (p.nodes - 1.0) * (p.disconnected_time * p.tps * p.actions).powi(2) / p.db_size;
        let got = mobile_collision_probability(&p);
        assert!((got - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn eq18_quadratic_in_disconnect_time() {
        // rate ∝ Disconnect_Time (the collision probability is quadratic,
        // but cycles happen 1/Disconnect_Time as often).
        let p1 = base().with_disconnected_time(100.0);
        let p2 = base().with_disconnected_time(200.0);
        let ratio = mobile_reconciliation_rate(&p2) / mobile_reconciliation_rate(&p1);
        assert!((ratio - 2.0).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn eq18_quadratic_in_tps() {
        let p1 = base();
        let p2 = base().with_tps(20.0);
        let ratio = mobile_reconciliation_rate(&p2) / mobile_reconciliation_rate(&p1);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq19_quadratic_in_nodes() {
        let p1 = base().with_nodes(1.0);
        let p10 = base().with_nodes(10.0);
        let ratio = master_deadlock_rate(&p10) / master_deadlock_rate(&p1);
        assert!((ratio - 100.0).abs() < 1e-6);
    }

    #[test]
    fn eq19_reduces_to_eq5_at_one_node() {
        let p = base().with_nodes(1.0);
        let lazy = master_deadlock_rate(&p);
        let single = crate::single::node_deadlock_rate(&p);
        assert!((lazy - single).abs() / single < 1e-12);
    }

    #[test]
    fn lazy_master_beats_eager_group_beyond_one_node() {
        for n in 2..=16 {
            let p = base().with_nodes(n as f64);
            assert!(
                master_deadlock_rate(&p) < crate::eager::total_deadlock_rate(&p),
                "lazy-master should deadlock less at {n} nodes"
            );
        }
    }

    #[test]
    fn two_tier_base_rate_is_lazy_master_rate() {
        let p = base().with_nodes(5.0);
        assert_eq!(two_tier_base_deadlock_rate(&p), master_deadlock_rate(&p));
    }
}
