//! Inverse solvers — capacity planning with the paper's model.
//!
//! The equations answer "how bad will it get?"; these functions invert
//! them to answer the questions a deployment engineer actually asks:
//! how large must the database (or how small the transaction) be to
//! keep the failure rate acceptable at a given scale, and how far can a
//! system scale before it crosses a failure budget.

use crate::Params;

/// The `DB_Size` required to keep the *eager* deadlock rate
/// (equation 12) at or below `target_rate`, holding everything else in
/// `p` fixed. Returns `None` for a non-positive target.
///
/// From eq. (12): `rate = K / DB_Size²` ⇒ `DB_Size = sqrt(K / target)`.
pub fn eager_db_size_for_deadlock_rate(p: &Params, target_rate: f64) -> Option<f64> {
    if target_rate <= 0.0 {
        return None;
    }
    let k = p.tps * p.tps * p.action_time * p.actions.powi(5) * p.nodes.powi(3) / 4.0;
    Some((k / target_rate).sqrt())
}

/// The `DB_Size` required to keep the *lazy-master* deadlock rate
/// (equation 19) at or below `target_rate`.
pub fn master_db_size_for_deadlock_rate(p: &Params, target_rate: f64) -> Option<f64> {
    if target_rate <= 0.0 {
        return None;
    }
    let total_tps = p.tps * p.nodes;
    let k = total_tps * total_tps * p.action_time * p.actions.powi(5) / 4.0;
    Some((k / target_rate).sqrt())
}

/// The largest node count whose eager deadlock rate (equation 12) stays
/// at or below `target_rate` with the database held fixed. Returns 0
/// if even one node exceeds the budget.
///
/// From eq. (12): `Nodes = cbrt(target × 4 × DB² / (TPS² × AT × A⁵))`.
pub fn eager_max_nodes_for_deadlock_rate(p: &Params, target_rate: f64) -> u64 {
    if target_rate <= 0.0 {
        return 0;
    }
    let denom = p.tps * p.tps * p.action_time * p.actions.powi(5);
    if denom <= 0.0 {
        return 0;
    }
    let n = (target_rate * 4.0 * p.db_size * p.db_size / denom).cbrt();
    n.floor() as u64
}

/// The largest transaction size (`Actions`) whose eager deadlock rate
/// stays at or below `target_rate` — the fifth-root inversion that
/// quantifies "keep transactions small".
pub fn eager_max_actions_for_deadlock_rate(p: &Params, target_rate: f64) -> u64 {
    if target_rate <= 0.0 {
        return 0;
    }
    let denom = p.tps * p.tps * p.action_time * p.nodes.powi(3);
    if denom <= 0.0 {
        return 0;
    }
    let a = (target_rate * 4.0 * p.db_size * p.db_size / denom).powf(0.2);
    a.floor() as u64
}

/// The longest mobile disconnect window whose lazy-group
/// reconciliation rate (equation 18) stays at or below `target_rate`.
///
/// From eq. (18) (with the exact `(Nodes − 1) × Nodes` factor the
/// implementation keeps): `rate = D × (TPS × Actions)² × (N−1) × N / DB`
/// ⇒ `D = target × DB / ((TPS × Actions)² × (N−1) × N)`.
pub fn mobile_max_disconnect_secs(p: &Params, target_rate: f64) -> f64 {
    if target_rate <= 0.0 {
        return 0.0;
    }
    let k = (p.tps * p.actions).powi(2) * p.nodes * (p.nodes - 1.0) / p.db_size;
    if k <= 0.0 {
        return f64::INFINITY;
    }
    target_rate / k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eager, lazy};

    fn base() -> Params {
        Params::new(2_000.0, 5.0, 20.0, 4.0, 0.01)
    }

    #[test]
    fn db_size_inversion_round_trips() {
        let p = base();
        let rate = eager::total_deadlock_rate(&p);
        let db = eager_db_size_for_deadlock_rate(&p, rate).unwrap();
        assert!((db - p.db_size).abs() / p.db_size < 1e-9);
    }

    #[test]
    fn master_db_size_inversion_round_trips() {
        let p = base();
        let rate = lazy::master_deadlock_rate(&p);
        let db = master_db_size_for_deadlock_rate(&p, rate).unwrap();
        assert!((db - p.db_size).abs() / p.db_size < 1e-9);
    }

    #[test]
    fn max_nodes_is_consistent_with_forward_model() {
        let p = base();
        let target = 0.01;
        let n = eager_max_nodes_for_deadlock_rate(&p, target);
        assert!(n >= 1);
        // At the returned count the budget holds; one more node breaks it.
        assert!(eager::total_deadlock_rate(&p.with_nodes(n as f64)) <= target * (1.0 + 1e-9));
        assert!(eager::total_deadlock_rate(&p.with_nodes((n + 1) as f64)) > target);
    }

    #[test]
    fn max_actions_is_consistent_with_forward_model() {
        let p = base();
        let target = 0.05;
        let a = eager_max_actions_for_deadlock_rate(&p, target);
        assert!(a >= 1);
        assert!(eager::total_deadlock_rate(&p.with_actions(a as f64)) <= target * (1.0 + 1e-9));
        assert!(eager::total_deadlock_rate(&p.with_actions((a + 1) as f64)) > target);
    }

    #[test]
    fn mobile_window_inversion_round_trips() {
        let p = base().with_db_size(20_000.0).with_tps(1.0);
        let d = mobile_max_disconnect_secs(&p, 0.05);
        let check = lazy::mobile_reconciliation_rate(&p.with_disconnected_time(d));
        assert!((check - 0.05).abs() / 0.05 < 0.05, "rate {check}");
    }

    #[test]
    fn tighter_budgets_demand_bigger_databases() {
        let p = base();
        let loose = eager_db_size_for_deadlock_rate(&p, 1.0).unwrap();
        let tight = eager_db_size_for_deadlock_rate(&p, 0.001).unwrap();
        assert!(tight > loose * 10.0);
    }

    #[test]
    fn degenerate_targets() {
        let p = base();
        assert!(eager_db_size_for_deadlock_rate(&p, 0.0).is_none());
        assert_eq!(eager_max_nodes_for_deadlock_rate(&p, -1.0), 0);
        assert_eq!(mobile_max_disconnect_secs(&p, 0.0), 0.0);
    }
}
