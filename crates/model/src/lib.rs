//! # repl-model — the paper's closed-form analytic model
//!
//! This crate implements every equation of Gray, Helland, O'Neil and
//! Shasha, *"The Dangers of Replication and a Solution"* (SIGMOD 1996):
//!
//! | Equations | Module | Topic |
//! |-----------|--------|-------|
//! | (1)–(5)   | [`single`] | single-node waits and deadlocks |
//! | (6)–(13)  | [`eager`]  | eager replication: N³ deadlock growth, scaled-DB variant |
//! | (14)–(19) | [`lazy`]   | lazy group reconciliations, mobile collisions, lazy-master deadlocks |
//!
//! [`sweep`] evaluates any of these quantities across a parameter range
//! and fits growth exponents, so the experiment harness can compare the
//! model against the discrete-event simulator point by point.
//!
//! All functions take the paper's Table 2 parameter set, [`Params`].
//! They are average-case approximations valid in the low-contention
//! regime the paper assumes (`PW ≪ 1`, `DB_Size ≫ Nodes`).
//!
//! # Example: the headline claim
//!
//! ```
//! use repl_model::{eager, Params};
//!
//! let base = Params::new(2_000.0, 1.0, 20.0, 4.0, 0.01);
//! let one = eager::total_deadlock_rate(&base.with_nodes(1.0));
//! let ten = eager::total_deadlock_rate(&base.with_nodes(10.0));
//! // "A ten-fold increase in nodes gives a thousand-fold increase
//! // in deadlocks" — equation (12).
//! assert!((ten / one - 1000.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod eager;
pub mod lazy;
pub mod params;
pub mod planning;
pub mod regime;
pub mod single;
pub mod sweep;

pub use params::{ParamError, Params};
pub use regime::RegimeReport;
pub use sweep::{fit_exponent, sweep, Axis, Point};

/// The replication strategies of the paper's Table 1, plus the two-tier
/// scheme of §7. Shared vocabulary for the protocol crate, workload
/// generators, harness and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// Eager propagation, group ownership: one transaction, N object
    /// owners ("update anywhere", synchronous).
    EagerGroup,
    /// Eager propagation, master ownership: one transaction, one owner.
    EagerMaster,
    /// Lazy propagation, group ownership: N transactions, N owners —
    /// needs timestamp reconciliation.
    LazyGroup,
    /// Lazy propagation, master ownership: N transactions, one owner.
    LazyMaster,
    /// The paper's solution: N+1 transactions, one owner, tentative
    /// local updates and eager base updates.
    TwoTier,
}

impl Scheme {
    /// All five schemes, in the order Table 1 presents them.
    pub const ALL: [Scheme; 5] = [
        Scheme::EagerGroup,
        Scheme::EagerMaster,
        Scheme::LazyGroup,
        Scheme::LazyMaster,
        Scheme::TwoTier,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::EagerGroup => "eager-group",
            Scheme::EagerMaster => "eager-master",
            Scheme::LazyGroup => "lazy-group",
            Scheme::LazyMaster => "lazy-master",
            Scheme::TwoTier => "two-tier",
        }
    }

    /// Table 1, propagation column: how many committed transactions one
    /// user update turns into on an `n`-node system.
    pub fn transactions_per_user_update(self, n: u64) -> u64 {
        match self {
            Scheme::EagerGroup | Scheme::EagerMaster => 1,
            Scheme::LazyGroup | Scheme::LazyMaster => n,
            Scheme::TwoTier => n + 1,
        }
    }

    /// Table 1, ownership column: how many nodes may accept an update
    /// for a given object on an `n`-node system.
    pub fn object_owners(self, n: u64) -> u64 {
        match self {
            Scheme::EagerGroup | Scheme::LazyGroup => n,
            Scheme::EagerMaster | Scheme::LazyMaster | Scheme::TwoTier => 1,
        }
    }

    /// Whether conflicting updates surface as *reconciliations* (true)
    /// or as waits/deadlocks (false).
    pub fn reconciles(self) -> bool {
        matches!(self, Scheme::LazyGroup)
    }

    /// Whether a disconnected (mobile) node can still originate updates.
    pub fn supports_mobility(self) -> bool {
        matches!(self, Scheme::LazyGroup | Scheme::TwoTier)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_transaction_counts() {
        let n = 5;
        assert_eq!(Scheme::EagerGroup.transactions_per_user_update(n), 1);
        assert_eq!(Scheme::EagerMaster.transactions_per_user_update(n), 1);
        assert_eq!(Scheme::LazyGroup.transactions_per_user_update(n), 5);
        assert_eq!(Scheme::LazyMaster.transactions_per_user_update(n), 5);
        assert_eq!(Scheme::TwoTier.transactions_per_user_update(n), 6);
    }

    #[test]
    fn table1_owner_counts() {
        let n = 5;
        assert_eq!(Scheme::EagerGroup.object_owners(n), 5);
        assert_eq!(Scheme::LazyGroup.object_owners(n), 5);
        assert_eq!(Scheme::EagerMaster.object_owners(n), 1);
        assert_eq!(Scheme::LazyMaster.object_owners(n), 1);
        assert_eq!(Scheme::TwoTier.object_owners(n), 1);
    }

    #[test]
    fn only_lazy_group_reconciles() {
        for s in Scheme::ALL {
            assert_eq!(s.reconciles(), s == Scheme::LazyGroup);
        }
    }

    #[test]
    fn mobility_support() {
        assert!(Scheme::TwoTier.supports_mobility());
        assert!(Scheme::LazyGroup.supports_mobility());
        assert!(!Scheme::EagerGroup.supports_mobility());
        assert!(!Scheme::LazyMaster.supports_mobility());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scheme::TwoTier.to_string(), "two-tier");
        assert_eq!(Scheme::ALL.len(), 5);
    }
}
