//! Eager-replication analysis — equations (6)–(13).
//!
//! In the paper's eager model each update transaction applies its writes
//! at every replica *serially inside the same transaction* (footnote 2
//! discusses the parallel-broadcast alternative, modelled here by
//! [`ParallelismModel::Parallel`]).

use crate::Params;

/// Whether replica updates within an eager transaction are applied
/// serially (the paper's primary model) or broadcast in parallel (the
/// footnote-2 variant, which keeps the transaction duration independent
/// of the node count and tames the cubic deadlock growth to quadratic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelismModel {
    /// Replica updates are serialized: the transaction performs
    /// `Actions × Nodes` sequential actions (the paper's main model).
    #[default]
    Serial,
    /// Replica updates happen in parallel: the transaction still
    /// performs `Actions × Nodes` units of system work, but its elapsed
    /// duration stays `Actions × Action_Time`.
    Parallel,
}

/// Equation (6): the size (in actions) of one eager transaction,
/// `Transaction_Size = Actions × Nodes`.
pub fn transaction_size(p: &Params) -> f64 {
    p.actions * p.nodes
}

/// Equation (6): the duration of one eager transaction.
///
/// Serial model: `Actions × Nodes × Action_Time`. Parallel model:
/// `Actions × Action_Time` (replicas updated concurrently).
pub fn transaction_duration(p: &Params, par: ParallelismModel) -> f64 {
    match par {
        ParallelismModel::Serial => p.actions * p.nodes * p.action_time,
        ParallelismModel::Parallel => p.actions * p.action_time,
    }
}

/// Equation (6): the aggregate transaction origination rate,
/// `Total_TPS = TPS × Nodes`.
pub fn total_tps(p: &Params) -> f64 {
    p.tps * p.nodes
}

/// Equation (7): the number of concurrently active transactions in the
/// whole (serial-update) system,
///
/// ```text
/// Total_Transactions = TPS × Actions × Action_Time × Nodes²
/// ```
///
/// (each of the `TPS × Nodes` per-second arrivals lives `Nodes` times
/// longer). Under the parallel model the population only grows linearly.
pub fn total_transactions(p: &Params, par: ParallelismModel) -> f64 {
    match par {
        ParallelismModel::Serial => p.tps * p.actions * p.action_time * p.nodes * p.nodes,
        ParallelismModel::Parallel => p.tps * p.actions * p.action_time * p.nodes,
    }
}

/// Equation (8): the total update work rate of the system in actions per
/// second,
///
/// ```text
/// Action_Rate = Total_TPS × Transaction_Size = TPS × Actions × Nodes²
/// ```
///
/// The same N² rate applies to lazy systems — eager systems have
/// fewer-longer transactions, lazy systems more-shorter ones.
pub fn action_rate(p: &Params) -> f64 {
    p.tps * p.actions * p.nodes * p.nodes
}

/// Equation (9): the probability that one eager transaction waits,
///
/// ```text
/// PW_eager ≈ TPS × Action_Time × Actions³ × Nodes² / (2 × DB_Size)
/// ```
pub fn wait_probability(p: &Params) -> f64 {
    p.tps * p.action_time * p.actions.powi(3) * p.nodes * p.nodes / (2.0 * p.db_size)
}

/// Equation (10): the system-wide eager wait rate,
///
/// ```text
/// Total_Eager_Wait_Rate
///   = TPS² × Action_Time × (Actions × Nodes)³ / (2 × DB_Size)
/// ```
///
/// Cubic in the number of nodes.
pub fn total_wait_rate(p: &Params) -> f64 {
    p.tps * p.tps * p.action_time * (p.actions * p.nodes).powi(3) / (2.0 * p.db_size)
}

/// Equation (11): the probability that one eager transaction deadlocks,
///
/// ```text
/// PD_eager ≈ TPS × Action_Time × Actions⁵ × Nodes² / (4 × DB_Size²)
/// ```
pub fn deadlock_probability(p: &Params) -> f64 {
    p.tps * p.action_time * p.actions.powi(5) * p.nodes * p.nodes / (4.0 * p.db_size * p.db_size)
}

/// Equation (12): the system-wide eager deadlock rate,
///
/// ```text
/// Total_Eager_Deadlock_Rate
///   = TPS² × Action_Time × Actions⁵ × Nodes³ / (4 × DB_Size²)
/// ```
///
/// This is the paper's headline instability: a ten-fold increase in
/// nodes yields a thousand-fold increase in deadlocks.
pub fn total_deadlock_rate(p: &Params) -> f64 {
    p.tps * p.tps * p.action_time * p.actions.powi(5) * p.nodes.powi(3)
        / (4.0 * p.db_size * p.db_size)
}

/// Equation (13): the eager deadlock rate when the database grows
/// proportionally with the node count (`DB_Size → DB_Size × Nodes`),
///
/// ```text
/// Eager_Deadlock_Rate_Scaled_DB
///   = TPS² × Action_Time × Actions⁵ × Nodes / (4 × DB_Size²)
/// ```
///
/// Growth drops from cubic to linear — still unstable, but far better.
pub fn deadlock_rate_scaled_db(p: &Params) -> f64 {
    p.tps * p.tps * p.action_time * p.actions.powi(5) * p.nodes / (4.0 * p.db_size * p.db_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single;

    fn base() -> Params {
        Params::new(10_000.0, 4.0, 10.0, 4.0, 0.01)
    }

    #[test]
    fn eq6_size_and_duration() {
        let p = base();
        assert_eq!(transaction_size(&p), 16.0);
        assert!((transaction_duration(&p, ParallelismModel::Serial) - 0.16).abs() < 1e-12);
        assert!((transaction_duration(&p, ParallelismModel::Parallel) - 0.04).abs() < 1e-12);
        assert_eq!(total_tps(&p), 40.0);
    }

    #[test]
    fn eq7_population_quadratic_serial_linear_parallel() {
        let p = base();
        let serial = total_transactions(&p, ParallelismModel::Serial);
        let parallel = total_transactions(&p, ParallelismModel::Parallel);
        assert!((serial / parallel - p.nodes).abs() < 1e-9);
        // Doubling nodes quadruples the serial population.
        let p2 = base().with_nodes(8.0);
        let ratio = total_transactions(&p2, ParallelismModel::Serial) / serial;
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq8_action_rate_quadratic() {
        let p1 = base();
        let p2 = base().with_nodes(8.0);
        assert!((action_rate(&p2) / action_rate(&p1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eq10_wait_rate_cubic_in_nodes() {
        let p1 = base();
        let p2 = base().with_nodes(8.0);
        assert!((total_wait_rate(&p2) / total_wait_rate(&p1) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq12_ten_fold_nodes_thousand_fold_deadlocks() {
        let p1 = base().with_nodes(1.0);
        let p10 = base().with_nodes(10.0);
        let ratio = total_deadlock_rate(&p10) / total_deadlock_rate(&p1);
        assert!((ratio - 1000.0).abs() < 1e-6, "got {ratio}");
    }

    #[test]
    fn eq12_ten_fold_actions_hundred_thousand_fold_deadlocks() {
        let p1 = base();
        let p10 = base().with_actions(40.0);
        let ratio = total_deadlock_rate(&p10) / total_deadlock_rate(&p1);
        assert!((ratio - 100_000.0).abs() / 100_000.0 < 1e-9, "got {ratio}");
    }

    #[test]
    fn eq12_reduces_to_eq5_at_one_node() {
        let p = base().with_nodes(1.0);
        let eager = total_deadlock_rate(&p);
        let single = single::node_deadlock_rate(&p);
        assert!((eager - single).abs() / single < 1e-9);
    }

    #[test]
    fn eq13_scaled_db_linear() {
        let p1 = base().with_nodes(1.0);
        let p10 = base().with_nodes(10.0);
        let ratio = deadlock_rate_scaled_db(&p10) / deadlock_rate_scaled_db(&p1);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn eq13_is_eq12_with_db_scaled_by_nodes() {
        // Substituting DB_Size × Nodes into eq (12) must reproduce eq (13):
        // Nodes³ / (DB·N)² = Nodes / DB².
        let p = base().with_nodes(6.0);
        let scaled = Params {
            db_size: p.db_size * p.nodes,
            ..p
        };
        let via_eq12 = total_deadlock_rate(&scaled);
        let via_eq13 = deadlock_rate_scaled_db(&p);
        assert!((via_eq12 - via_eq13).abs() / via_eq13 < 1e-9);
    }
}
