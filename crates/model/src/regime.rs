//! Model-validity diagnostics.
//!
//! The paper's closed forms are average-case approximations that hold
//! when contention is light: `PW ≪ 1`, the concurrent transaction
//! population is far below `DB_Size`, and the offered lock demand does
//! not saturate the object space (the "time-dilation" the paper calls a
//! second-order effect and ignores). This module quantifies those
//! assumptions so experiment configurations can be checked before
//! trusting the equations — the harness presets all pass
//! [`RegimeReport::is_valid`].

use crate::{eager, single, Params};

/// Quantified model assumptions for a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeReport {
    /// Single-node wait probability, equation (2). Must be ≪ 1.
    pub pw: f64,
    /// Eager wait probability at the configured node count,
    /// equation (9). Must be ≪ 1 for the replicated equations.
    pub pw_eager: f64,
    /// Concurrent eager transactions (equation 7) over `DB_Size` —
    /// the fraction of the database locked at any instant. Must be ≪ 1.
    pub lock_fraction: f64,
    /// Offered lock-hold demand per object: arrival rate × locks held ×
    /// mean hold time / DB_Size. Above ~0.5 the open system stops being
    /// stable (queues grow without bound) — a saturation the model does
    /// not describe at all.
    pub utilization: f64,
}

/// Thresholds for [`RegimeReport::is_valid`].
const MAX_PW: f64 = 0.5;
const MAX_LOCK_FRACTION: f64 = 0.2;
const MAX_UTILIZATION: f64 = 0.5;

impl RegimeReport {
    /// Evaluate the regime of a configuration under *eager serial*
    /// replication — the most demanding scheme (longest transactions).
    pub fn for_eager(p: &Params) -> Self {
        let population = eager::total_transactions(p, eager::ParallelismModel::Serial);
        // Each transaction holds on average half its locks for half its
        // lifetime ⇒ mean locked objects ≈ population × Actions / 2.
        let lock_fraction = population * p.actions / (2.0 * p.db_size);
        // Lock-hold demand per object: every arriving transaction will
        // hold each of its Actions locks for about half the transaction
        // duration.
        let arrival = p.tps * p.nodes;
        let duration = p.actions * p.nodes * p.action_time;
        let utilization = arrival * p.actions * (duration / 2.0) / p.db_size;
        RegimeReport {
            pw: single::wait_probability(p),
            pw_eager: eager::wait_probability(p),
            lock_fraction,
            utilization,
        }
    }

    /// Evaluate the regime for single-node / lazy-master execution
    /// (transaction duration does not grow with the node count).
    pub fn for_master(p: &Params) -> Self {
        let arrival = p.tps * p.nodes;
        let duration = p.actions * p.action_time;
        let population = arrival * duration;
        RegimeReport {
            pw: single::wait_probability(p),
            pw_eager: single::wait_probability(p),
            lock_fraction: population * p.actions / (2.0 * p.db_size),
            utilization: arrival * p.actions * (duration / 2.0) / p.db_size,
        }
    }

    /// Whether the closed forms can be trusted for this configuration.
    pub fn is_valid(&self) -> bool {
        self.pw_eager < MAX_PW
            && self.lock_fraction < MAX_LOCK_FRACTION
            && self.utilization < MAX_UTILIZATION
    }

    /// Human-readable summary of any violated assumption.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.pw_eager >= MAX_PW {
            v.push(format!(
                "PW_eager = {:.3} (≥ {MAX_PW}): waits are no longer rare",
                self.pw_eager
            ));
        }
        if self.lock_fraction >= MAX_LOCK_FRACTION {
            v.push(format!(
                "lock fraction = {:.3} (≥ {MAX_LOCK_FRACTION}): population comparable to DB_Size",
                self.lock_fraction
            ));
        }
        if self.utilization >= MAX_UTILIZATION {
            v.push(format!(
                "utilization = {:.3} (≥ {MAX_UTILIZATION}): open system near saturation",
                self.utilization
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_is_valid() {
        let p = Params::new(10_000.0, 2.0, 10.0, 4.0, 0.01);
        let r = RegimeReport::for_eager(&p);
        assert!(r.is_valid(), "{r:?}");
        assert!(r.violations().is_empty());
    }

    #[test]
    fn saturated_load_is_flagged() {
        // Tiny database, huge load: every assumption breaks.
        let p = Params::new(20.0, 8.0, 50.0, 6.0, 0.01);
        let r = RegimeReport::for_eager(&p);
        assert!(!r.is_valid());
        assert!(!r.violations().is_empty());
    }

    #[test]
    fn master_regime_is_laxer_than_eager() {
        // Same parameters: eager's longer transactions stress the
        // system more.
        let p = Params::new(1_000.0, 8.0, 10.0, 4.0, 0.01);
        let e = RegimeReport::for_eager(&p);
        let m = RegimeReport::for_master(&p);
        assert!(e.utilization > m.utilization);
        assert!(e.lock_fraction > m.lock_fraction);
    }

    #[test]
    fn harness_presets_are_in_regime() {
        // Guard the experiment configurations used throughout the
        // harness: the model must be applicable where we compare
        // against it.
        let single = Params::new(2_000.0, 1.0, 50.0, 4.0, 0.01);
        assert!(RegimeReport::for_master(&single).is_valid());
        let scaleup10 = Params::new(2_000.0, 10.0, 20.0, 4.0, 0.01);
        assert!(RegimeReport::for_eager(&scaleup10).is_valid());
    }
}
