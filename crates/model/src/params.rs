//! The model's parameter set — Table 2 of the paper.

use serde::{Deserialize, Serialize};

/// Parameters of the analytic replication model (the paper's Table 2).
///
/// Every rate equation in the paper is a function of (a subset of) these
/// values. All times are in seconds; rates are per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// `DB_Size` — number of distinct objects in the database.
    pub db_size: f64,
    /// `Nodes` — number of nodes; each node replicates all objects.
    pub nodes: f64,
    /// `TPS` — transactions per second *originating at each node*.
    pub tps: f64,
    /// `Actions` — number of updates performed by one transaction.
    pub actions: f64,
    /// `Action_Time` — time to perform one action (seconds).
    pub action_time: f64,
    /// `Disconnected_Time` — mean time a mobile node stays disconnected
    /// (seconds). Only used by the mobile equations (15)–(18).
    pub disconnected_time: f64,
    /// `Time_Between_Disconnects` — mean time between network disconnects
    /// of a node. Listed in Table 2; the closed forms in the paper do not
    /// use it directly (the disconnect cycle is driven by
    /// `disconnected_time`), but the simulator's disconnect schedule does.
    pub time_between_disconnects: f64,
}

impl Default for Params {
    /// A small but representative default configuration: a 10 000-object
    /// database, 1-node baseline, 10 TPS of 4-action transactions at
    /// 10 ms per action. These are in the regime the paper reasons about
    /// (`PW << 1`, `DB_Size >> Nodes`).
    fn default() -> Self {
        Self {
            db_size: 10_000.0,
            nodes: 1.0,
            tps: 10.0,
            actions: 4.0,
            action_time: 0.01,
            disconnected_time: 0.0,
            time_between_disconnects: f64::INFINITY,
        }
    }
}

/// An error produced when validating a [`Params`] value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// A field that must be strictly positive was zero or negative.
    NonPositive(&'static str),
    /// A field that must be finite was NaN or infinite.
    NonFinite(&'static str),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::NonPositive(field) => {
                write!(f, "model parameter `{field}` must be > 0")
            }
            ParamError::NonFinite(field) => {
                write!(f, "model parameter `{field}` must be finite")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl Params {
    /// Create parameters with the core five knobs; the mobile knobs start
    /// disabled (always connected).
    pub fn new(db_size: f64, nodes: f64, tps: f64, actions: f64, action_time: f64) -> Self {
        Self {
            db_size,
            nodes,
            tps,
            actions,
            action_time,
            ..Self::default()
        }
    }

    /// Builder-style setter for the number of nodes.
    #[must_use]
    pub fn with_nodes(mut self, nodes: f64) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder-style setter for the per-node transaction rate.
    #[must_use]
    pub fn with_tps(mut self, tps: f64) -> Self {
        self.tps = tps;
        self
    }

    /// Builder-style setter for the transaction size.
    #[must_use]
    pub fn with_actions(mut self, actions: f64) -> Self {
        self.actions = actions;
        self
    }

    /// Builder-style setter for the database size.
    #[must_use]
    pub fn with_db_size(mut self, db_size: f64) -> Self {
        self.db_size = db_size;
        self
    }

    /// Builder-style setter for the mobile disconnect window.
    #[must_use]
    pub fn with_disconnected_time(mut self, t: f64) -> Self {
        self.disconnected_time = t;
        self
    }

    /// Check that all fields are usable by the equations.
    ///
    /// `disconnected_time` may be zero (meaning "never disconnected") and
    /// `time_between_disconnects` may be infinite (same meaning); every
    /// other field must be strictly positive and finite.
    pub fn validate(&self) -> Result<(), ParamError> {
        let positive = [
            (self.db_size, "db_size"),
            (self.nodes, "nodes"),
            (self.tps, "tps"),
            (self.actions, "actions"),
            (self.action_time, "action_time"),
        ];
        for (value, name) in positive {
            if !value.is_finite() {
                return Err(ParamError::NonFinite(name));
            }
            if value <= 0.0 {
                return Err(ParamError::NonPositive(name));
            }
        }
        if self.disconnected_time.is_nan() || self.disconnected_time < 0.0 {
            return Err(ParamError::NonFinite("disconnected_time"));
        }
        if self.time_between_disconnects.is_nan() || self.time_between_disconnects < 0.0 {
            return Err(ParamError::NonFinite("time_between_disconnects"));
        }
        Ok(())
    }

    /// Equation (1): the number of concurrent transactions originating at
    /// one node,
    /// `Transactions = TPS × Actions × Action_Time`.
    pub fn transactions_per_node(&self) -> f64 {
        self.tps * self.actions * self.action_time
    }

    /// Duration of one unreplicated transaction,
    /// `Actions × Action_Time` (used to convert hazards into rates).
    pub fn transaction_duration(&self) -> f64 {
        self.actions * self.action_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        Params::default().validate().unwrap();
    }

    #[test]
    fn equation_1_concurrent_transactions() {
        let p = Params::new(1000.0, 1.0, 50.0, 5.0, 0.02);
        // 50 tps * 5 actions * 0.02 s = 5 concurrent transactions.
        assert!((p.transactions_per_node() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn builders_set_fields() {
        let p = Params::default()
            .with_nodes(7.0)
            .with_tps(3.0)
            .with_actions(9.0)
            .with_db_size(123.0)
            .with_disconnected_time(60.0);
        assert_eq!(p.nodes, 7.0);
        assert_eq!(p.tps, 3.0);
        assert_eq!(p.actions, 9.0);
        assert_eq!(p.db_size, 123.0);
        assert_eq!(p.disconnected_time, 60.0);
    }

    #[test]
    fn zero_db_size_rejected() {
        let p = Params::new(0.0, 1.0, 1.0, 1.0, 1.0);
        assert_eq!(p.validate(), Err(ParamError::NonPositive("db_size")));
    }

    #[test]
    fn nan_rejected() {
        let p = Params {
            tps: f64::NAN,
            ..Params::default()
        };
        assert_eq!(p.validate(), Err(ParamError::NonFinite("tps")));
    }

    #[test]
    fn negative_disconnect_rejected() {
        let p = Params {
            disconnected_time: -1.0,
            ..Params::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn infinite_time_between_disconnects_allowed() {
        // The default "never disconnects" sentinel must validate.
        assert!(Params::default().validate().is_ok());
    }

    #[test]
    fn param_error_display() {
        let e = ParamError::NonPositive("tps");
        assert!(e.to_string().contains("tps"));
        let e = ParamError::NonFinite("nodes");
        assert!(e.to_string().contains("finite"));
    }
}
