//! Parameter sweeps: evaluate any model quantity over a range of one
//! parameter, producing `(x, y)` series the harness and benches print.

use crate::Params;
use serde::{Deserialize, Serialize};

/// Which model parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Vary `Nodes`.
    Nodes,
    /// Vary `Actions` (transaction size).
    Actions,
    /// Vary per-node `TPS`.
    Tps,
    /// Vary `DB_Size`.
    DbSize,
    /// Vary `Disconnected_Time`.
    DisconnectedTime,
}

impl Axis {
    /// Return a copy of `base` with this axis set to `value`.
    pub fn apply(self, base: &Params, value: f64) -> Params {
        let mut p = *base;
        match self {
            Axis::Nodes => p.nodes = value,
            Axis::Actions => p.actions = value,
            Axis::Tps => p.tps = value,
            Axis::DbSize => p.db_size = value,
            Axis::DisconnectedTime => p.disconnected_time = value,
        }
        p
    }

    /// Human-readable name matching the paper's Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Nodes => "Nodes",
            Axis::Actions => "Actions",
            Axis::Tps => "TPS",
            Axis::DbSize => "DB_Size",
            Axis::DisconnectedTime => "Disconnected_Time",
        }
    }
}

/// One `(x, prediction)` point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Value of the swept axis.
    pub x: f64,
    /// Model prediction at that value.
    pub y: f64,
}

/// Evaluate `f` at each axis value, returning the predicted series.
pub fn sweep(base: &Params, axis: Axis, values: &[f64], f: impl Fn(&Params) -> f64) -> Vec<Point> {
    values
        .iter()
        .map(|&x| Point {
            x,
            y: f(&axis.apply(base, x)),
        })
        .collect()
}

/// Fit the growth exponent `k` of `y ≈ c·xᵏ` to a series via least-squares
/// regression in log-log space. Points with non-positive `x` or `y` are
/// skipped (they have no logarithm). Returns `None` if fewer than two
/// usable points remain or the x-values are all identical.
pub fn fit_exponent(points: &[Point]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.x > 0.0 && p.y > 0.0)
        .map(|p| (p.x.ln(), p.y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eager, lazy};

    #[test]
    fn axis_apply_sets_value() {
        let base = Params::default();
        assert_eq!(Axis::Nodes.apply(&base, 9.0).nodes, 9.0);
        assert_eq!(Axis::Actions.apply(&base, 9.0).actions, 9.0);
        assert_eq!(Axis::Tps.apply(&base, 9.0).tps, 9.0);
        assert_eq!(Axis::DbSize.apply(&base, 9.0).db_size, 9.0);
        assert_eq!(
            Axis::DisconnectedTime.apply(&base, 9.0).disconnected_time,
            9.0
        );
    }

    #[test]
    fn sweep_produces_one_point_per_value() {
        let base = Params::default();
        let pts = sweep(&base, Axis::Nodes, &[1.0, 2.0, 4.0], |p| p.nodes * 10.0);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].y, 40.0);
    }

    #[test]
    fn exponent_of_eager_deadlock_rate_is_three() {
        let base = Params::default();
        let values: Vec<f64> = (1..=10).map(|n| n as f64).collect();
        let pts = sweep(&base, Axis::Nodes, &values, eager::total_deadlock_rate);
        let k = fit_exponent(&pts).unwrap();
        assert!((k - 3.0).abs() < 1e-9, "got exponent {k}");
    }

    #[test]
    fn exponent_of_lazy_master_deadlock_rate_is_two() {
        let base = Params::default();
        let values: Vec<f64> = (1..=10).map(|n| n as f64).collect();
        let pts = sweep(&base, Axis::Nodes, &values, lazy::master_deadlock_rate);
        let k = fit_exponent(&pts).unwrap();
        assert!((k - 2.0).abs() < 1e-9, "got exponent {k}");
    }

    #[test]
    fn exponent_of_actions_in_deadlock_rate_is_five() {
        let base = Params::default();
        let values: Vec<f64> = (1..=10).map(|n| n as f64).collect();
        let pts = sweep(&base, Axis::Actions, &values, eager::total_deadlock_rate);
        let k = fit_exponent(&pts).unwrap();
        assert!((k - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate_series() {
        assert!(fit_exponent(&[]).is_none());
        assert!(fit_exponent(&[Point { x: 1.0, y: 1.0 }]).is_none());
        let same_x = [Point { x: 2.0, y: 1.0 }, Point { x: 2.0, y: 5.0 }];
        assert!(fit_exponent(&same_x).is_none());
    }

    #[test]
    fn fit_skips_nonpositive_points() {
        let pts = [
            Point { x: 0.0, y: 1.0 },
            Point { x: 1.0, y: 0.0 },
            Point { x: 2.0, y: 4.0 },
            Point { x: 4.0, y: 16.0 },
        ];
        let k = fit_exponent(&pts).unwrap();
        assert!((k - 2.0).abs() < 1e-9);
    }
}
