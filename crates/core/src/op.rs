//! Update operations.
//!
//! §6 of the paper observes that real replicated systems express updates
//! as *transformations* ("debit the account by $50") rather than value
//! assignments ("change account from $200 to $150"), because
//! transformations can **commute**. The two-tier scheme relies on this:
//! "if all transactions commute, there are no reconciliations".

use repl_storage::{ObjectId, Value};
use serde::{Deserialize, Serialize};

/// A single-object update transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Blind assignment — the classic *record-value* update. Never
    /// commutes with anything (except an identical assignment being
    /// idempotent, which we do not exploit).
    Set(Value),
    /// Add a constant to an integer value — commutative (§6's "adding
    /// and subtracting constants from an integer value").
    Add(i64),
    /// Debit: subtract `amount`. Commutative with other `Add`/`Debit`
    /// as a transformation; whether the *result* is acceptable (e.g.
    /// non-negative balance) is the acceptance criterion's job.
    Debit(i64),
    /// Append a line of text — §6's "timestamped append" (Lotus Notes
    /// note). Appends commute up to ordering; the convergent store
    /// orders them by timestamp, so any arrival order yields the same
    /// state.
    Append(String),
}

impl Op {
    /// Apply the transformation to a current value, yielding the new
    /// value. Type mismatches fall back to treating the old value as
    /// the identity for the operation (`Int` ops start from 0, text ops
    /// from the empty string) — the workload generators never mix types
    /// on one object, but the store must stay total.
    pub fn apply(&self, current: &Value) -> Value {
        match self {
            Op::Set(v) => v.clone(),
            Op::Add(d) => Value::Int(current.as_int().unwrap_or(0).wrapping_add(*d)),
            Op::Debit(d) => Value::Int(current.as_int().unwrap_or(0).wrapping_sub(*d)),
            Op::Append(s) => {
                let mut text = current.as_text().unwrap_or("").to_owned();
                if !text.is_empty() {
                    text.push('\n');
                }
                text.push_str(s);
                Value::Text(text)
            }
        }
    }

    /// Whether this operation commutes with `other` — i.e. applying
    /// them in either order yields the same value on every start state.
    ///
    /// `Add`/`Debit` commute among themselves. `Append`s commute in the
    /// convergent store (which orders by timestamp), but **not** as raw
    /// string concatenation, so they are conservatively non-commutative
    /// here. `Set` commutes with nothing.
    pub fn commutes_with(&self, other: &Op) -> bool {
        matches!(
            (self, other),
            (Op::Add(_) | Op::Debit(_), Op::Add(_) | Op::Debit(_))
        )
    }

    /// Whether the operation is a pure increment/decrement
    /// transformation (safe for two-tier commutative re-execution).
    pub fn is_commutative(&self) -> bool {
        matches!(self, Op::Add(_) | Op::Debit(_))
    }
}

/// One step of a transaction: a transformation applied to an object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// The target object.
    pub object: ObjectId,
    /// The transformation.
    pub op: Op,
}

impl Operation {
    /// Convenience constructor.
    pub fn new(object: ObjectId, op: Op) -> Self {
        Operation { object, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites() {
        let op = Op::Set(Value::Int(9));
        assert_eq!(op.apply(&Value::Int(1)), Value::Int(9));
    }

    #[test]
    fn add_and_debit_arithmetic() {
        assert_eq!(Op::Add(5).apply(&Value::Int(10)), Value::Int(15));
        assert_eq!(Op::Debit(4).apply(&Value::Int(10)), Value::Int(6));
    }

    #[test]
    fn add_on_text_starts_from_zero() {
        assert_eq!(Op::Add(5).apply(&Value::from("x")), Value::Int(5));
    }

    #[test]
    fn append_builds_lines() {
        let v = Op::Append("first".into()).apply(&Value::Text(String::new()));
        let v = Op::Append("second".into()).apply(&v);
        assert_eq!(v, Value::Text("first\nsecond".into()));
    }

    #[test]
    fn append_on_int_starts_empty() {
        let v = Op::Append("a".into()).apply(&Value::Int(3));
        assert_eq!(v, Value::Text("a".into()));
    }

    #[test]
    fn commutativity_table() {
        assert!(Op::Add(1).commutes_with(&Op::Add(2)));
        assert!(Op::Add(1).commutes_with(&Op::Debit(2)));
        assert!(Op::Debit(1).commutes_with(&Op::Debit(2)));
        assert!(!Op::Set(Value::Int(0)).commutes_with(&Op::Add(1)));
        assert!(!Op::Add(1).commutes_with(&Op::Set(Value::Int(0))));
        assert!(!Op::Append("a".into()).commutes_with(&Op::Append("b".into())));
    }

    #[test]
    fn commutative_ops_actually_commute() {
        // Semantic check behind `commutes_with`: order irrelevant.
        let start = Value::Int(100);
        let ab = Op::Debit(30).apply(&Op::Add(7).apply(&start));
        let ba = Op::Add(7).apply(&Op::Debit(30).apply(&start));
        assert_eq!(ab, ba);
    }

    #[test]
    fn set_does_not_commute_semantically() {
        let start = Value::Int(0);
        let ab = Op::Set(Value::Int(5)).apply(&Op::Add(3).apply(&start));
        let ba = Op::Add(3).apply(&Op::Set(Value::Int(5)).apply(&start));
        assert_ne!(ab, ba);
    }

    #[test]
    fn is_commutative_flags() {
        assert!(Op::Add(1).is_commutative());
        assert!(Op::Debit(1).is_commutative());
        assert!(!Op::Set(Value::Int(1)).is_commutative());
        assert!(!Op::Append("x".into()).is_commutative());
    }
}
