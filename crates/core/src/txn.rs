//! Transaction specifications and acceptance criteria.
//!
//! A [`TxnSpec`] is the *input-parameter capture* of a transaction: the
//! transformations it applies, in order. Two-tier replication re-runs
//! exactly this specification at the base ("sends all its tentative
//! transactions and all their input parameters to the base node"), then
//! judges the re-execution with an [`Criterion`].

use crate::op::Operation;
use repl_storage::{ObjectId, Value};
use serde::{Deserialize, Serialize};

/// The acceptance criteria of §7 — "a test the resulting outputs must
/// pass for the slightly different base transaction results to be
/// acceptable". The paper's examples: the bank balance must not go
/// negative; the price quote cannot exceed the tentative quote; the
/// seats must be aisle seats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Criterion {
    /// Accept whatever the base execution produces (pure convergence,
    /// no semantic guard).
    AlwaysAccept,
    /// Every written object's final integer value must be ≥ 0 — the
    /// checking-account rule.
    NonNegative,
    /// Every written object's final integer value must be ≤ this bound
    /// — the "price quote cannot exceed the tentative quote" rule.
    AtMost(i64),
    /// The base execution must produce exactly the same values the
    /// tentative execution produced — the strictest test; the paper
    /// notes it is "probably too pessimistic".
    ExactMatch,
}

impl Criterion {
    /// Judge a base re-execution.
    ///
    /// * `base` — `(object, final value)` pairs the base transaction
    ///   produced;
    /// * `tentative` — the values the tentative execution produced for
    ///   the same objects (same order), used by [`Criterion::ExactMatch`].
    pub fn accepts(&self, base: &[(ObjectId, Value)], tentative: &[(ObjectId, Value)]) -> bool {
        match self {
            Criterion::AlwaysAccept => true,
            Criterion::NonNegative => base.iter().all(|(_, v)| v.as_int().is_none_or(|i| i >= 0)),
            Criterion::AtMost(bound) => base
                .iter()
                .all(|(_, v)| v.as_int().is_none_or(|i| i <= *bound)),
            Criterion::ExactMatch => base == tentative,
        }
    }
}

/// A transaction's full specification: its operations in execution
/// order plus the acceptance criterion used if it is re-executed as a
/// base transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSpec {
    /// The updates, in order. The model's `Actions` is `ops.len()`.
    pub ops: Vec<Operation>,
    /// Acceptance test for two-tier re-execution.
    pub criterion: Criterion,
}

impl TxnSpec {
    /// A spec with the default [`Criterion::AlwaysAccept`].
    pub fn new(ops: Vec<Operation>) -> Self {
        TxnSpec {
            ops,
            criterion: Criterion::AlwaysAccept,
        }
    }

    /// Attach an acceptance criterion.
    #[must_use]
    pub fn with_criterion(mut self, criterion: Criterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// The objects this transaction updates, in access order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.ops.iter().map(|o| o.object)
    }

    /// Number of actions (the model's `Actions`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the spec performs no updates.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether every operation is commutative — §7: "if all
    /// transactions commute, there are no reconciliations".
    pub fn is_commutative(&self) -> bool {
        self.ops.iter().all(|o| o.op.is_commutative())
    }

    /// Whether this spec commutes with another (pairwise operation
    /// check on shared objects; disjoint object sets always commute).
    pub fn commutes_with(&self, other: &TxnSpec) -> bool {
        for a in &self.ops {
            for b in &other.ops {
                if a.object == b.object && !a.op.commutes_with(&b.op) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn set(obj: u64, v: i64) -> Operation {
        Operation::new(ObjectId(obj), Op::Set(Value::Int(v)))
    }
    fn add(obj: u64, v: i64) -> Operation {
        Operation::new(ObjectId(obj), Op::Add(v))
    }

    #[test]
    fn always_accept_accepts() {
        assert!(Criterion::AlwaysAccept.accepts(&[], &[]));
        assert!(Criterion::AlwaysAccept.accepts(
            &[(ObjectId(0), Value::Int(-5))],
            &[(ObjectId(0), Value::Int(1))]
        ));
    }

    #[test]
    fn non_negative_rejects_overdraft() {
        let ok = [(ObjectId(0), Value::Int(0)), (ObjectId(1), Value::Int(7))];
        let bad = [(ObjectId(0), Value::Int(-1))];
        assert!(Criterion::NonNegative.accepts(&ok, &[]));
        assert!(!Criterion::NonNegative.accepts(&bad, &[]));
    }

    #[test]
    fn non_negative_ignores_text() {
        let vals = [(ObjectId(0), Value::from("doc"))];
        assert!(Criterion::NonNegative.accepts(&vals, &[]));
    }

    #[test]
    fn at_most_enforces_price_ceiling() {
        let quote = [(ObjectId(0), Value::Int(120))];
        assert!(!Criterion::AtMost(100).accepts(&quote, &[]));
        assert!(Criterion::AtMost(150).accepts(&quote, &[]));
    }

    #[test]
    fn exact_match_compares_outputs() {
        let a = [(ObjectId(0), Value::Int(5))];
        let b = [(ObjectId(0), Value::Int(6))];
        assert!(Criterion::ExactMatch.accepts(&a, &a));
        assert!(!Criterion::ExactMatch.accepts(&a, &b));
    }

    #[test]
    fn spec_objects_and_len() {
        let spec = TxnSpec::new(vec![add(3, 1), add(7, 2)]);
        assert_eq!(spec.len(), 2);
        assert!(!spec.is_empty());
        assert_eq!(
            spec.objects().collect::<Vec<_>>(),
            vec![ObjectId(3), ObjectId(7)]
        );
    }

    #[test]
    fn commutative_spec_detection() {
        assert!(TxnSpec::new(vec![add(0, 1), add(1, -2)]).is_commutative());
        assert!(!TxnSpec::new(vec![add(0, 1), set(1, 5)]).is_commutative());
    }

    #[test]
    fn specs_commute_on_disjoint_objects() {
        let a = TxnSpec::new(vec![set(0, 1)]);
        let b = TxnSpec::new(vec![set(1, 2)]);
        assert!(a.commutes_with(&b));
    }

    #[test]
    fn specs_conflict_on_shared_noncommutative_object() {
        let a = TxnSpec::new(vec![set(0, 1)]);
        let b = TxnSpec::new(vec![add(0, 2)]);
        assert!(!a.commutes_with(&b));
        let c = TxnSpec::new(vec![add(0, 5)]);
        assert!(b.commutes_with(&c));
    }

    #[test]
    fn criterion_travels_with_spec() {
        let spec = TxnSpec::new(vec![add(0, 1)]).with_criterion(Criterion::NonNegative);
        assert_eq!(spec.criterion, Criterion::NonNegative);
    }
}
