//! # repl-core — the replication protocols
//!
//! This crate implements every replication scheme analyzed in Gray,
//! Helland, O'Neil and Shasha, *"The Dangers of Replication and a
//! Solution"* (SIGMOD 1996), as executable discrete-event simulations:
//!
//! * the four Table 1 quadrants — eager/lazy × group/master — in
//!   [`engine`],
//! * the paper's proposed **two-tier replication** scheme
//!   ([`engine::two_tier`]), with tentative transactions, acceptance
//!   criteria and reconnect synchronization,
//! * the §6 convergence machinery: commutative operation design
//!   ([`op`]), reconciliation rules ([`reconcile`]) and the
//!   Notes/Access-style convergent stores ([`convergent`]),
//! * the §3 availability substrate: Gifford weighted-voting quorums
//!   ([`quorum`]).
//!
//! Each engine reports a [`metrics::Report`] of measured rates that the
//! harness compares against the `repl-model` closed forms.
//!
//! # Example: simulate eager replication at 4 nodes
//!
//! ```
//! use repl_core::{EagerSim, Ownership, ReplicaDiscipline, SimConfig};
//! use repl_model::Params;
//!
//! let params = Params::new(5_000.0, 4.0, 10.0, 4.0, 0.01);
//! let cfg = SimConfig::from_params(&params, 30, 42);
//! let report = EagerSim::new(cfg, ReplicaDiscipline::Serial, Ownership::Group).run();
//! assert!(report.committed > 0);
//! // Runs are deterministic: same seed, same report.
//! let again = EagerSim::new(cfg, ReplicaDiscipline::Serial, Ownership::Group).run();
//! assert_eq!(report, again);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod convergent;
pub mod engine;
pub mod metrics;
pub mod op;
pub mod quorum;
pub mod reconcile;
pub mod serializability;
pub mod txn;

pub use config::{DeadlockPolicy, SimConfig};
pub use engine::{
    CommitProto, ContentionProfile, ContentionSim, CoordState, Coordinator, CrashKind, CrashPoint,
    Decision, EagerSim, LazyGroupSim, LazyMasterSim, Mobility, Ownership, ReplicaDiscipline,
    ResolutionMode, TwoTierConfig, TwoTierSim, TwoTierWorkload,
};
pub use metrics::{
    Metrics, Report, M_ABORTS, M_COMMIT_LATENCY, M_INDOUBT_WAIT, M_LOCK_WAIT, M_PROPAGATION_LAG,
    M_RECONCILIATION_DELAY, M_RETRIES,
};
pub use op::{Op, Operation};
pub use txn::{Criterion, TxnSpec};
