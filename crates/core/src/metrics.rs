//! Measured quantities — the simulator-side counterparts of the model's
//! predicted rates.

use repl_sim::{Counter, Histogram, SimDuration, SimTime, Welford};
use repl_telemetry::RunMetrics;
use serde::{Deserialize, Serialize};

/// Histogram of user-transaction start→commit latency.
pub const M_COMMIT_LATENCY: &str = "commit_latency";
/// Histogram of individual lock-wait durations.
pub const M_LOCK_WAIT: &str = "lock_wait";
/// Histogram of replica propagation lag (send → apply, lazy schemes).
pub const M_PROPAGATION_LAG: &str = "propagation_lag";
/// Histogram of two-tier reconciliation delay (tentative commit → base
/// verdict).
pub const M_RECONCILIATION_DELAY: &str = "reconciliation_delay";
/// Counter of user-transaction aborts (deadlock or timeout).
pub const M_ABORTS: &str = "aborts";
/// Counter of scheduled retries (replica redo, base re-execution).
pub const M_RETRIES: &str = "retries";
/// Histogram of in-doubt blocking time: how long a 2PC participant
/// holds locks between voting yes and learning the decision (the
/// blocking cost of the coordinated commit path).
pub const M_INDOUBT_WAIT: &str = "indoubt_wait";

/// Raw counters collected during a protocol run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// User (root) transactions that committed.
    pub committed: Counter,
    /// User transactions aborted by deadlock.
    pub deadlocks: Counter,
    /// Times any transaction blocked on a lock.
    pub waits: Counter,
    /// Replica updates rejected by the timestamp test and submitted for
    /// reconciliation (lazy-group), or tentative transactions rejected
    /// by their acceptance criteria (two-tier).
    pub reconciliations: Counter,
    /// Replica-update (slave/secondary) transactions committed.
    pub replica_commits: Counter,
    /// Replica-update transactions skipped as stale.
    pub stale_updates: Counter,
    /// Network messages sent.
    pub messages: Counter,
    /// Tentative transactions committed locally at mobile nodes.
    pub tentative_commits: Counter,
    /// Tentative transactions accepted on base re-execution.
    pub tentative_accepted: Counter,
    /// Tentative transactions rejected on base re-execution.
    pub tentative_rejected: Counter,
    /// Total actions (object updates) performed anywhere.
    pub actions: Counter,
    /// Messages lost in flight by fault injection (each triggers a
    /// retransmission).
    pub messages_dropped: Counter,
    /// Messages duplicated by fault injection (the receiver's
    /// timestamp test absorbs the copies).
    pub messages_duplicated: Counter,
    /// Blocked transactions aborted by the lock-wait timeout
    /// ([`crate::DeadlockPolicy::Timeout`]'s resolution events).
    pub lock_timeouts: Counter,
    /// Node crashes injected during the run.
    pub node_crashes: Counter,
    /// Waits-for graph searches performed by the lock managers (zero
    /// under the timeout policy).
    pub cycle_checks: Counter,
    /// User-transaction latency (start → commit), seconds.
    pub latency: Welford,
    /// Latency distribution for percentile reporting.
    pub latency_hist: Histogram,
    /// Lock wait durations, seconds.
    pub wait_time: Welford,
    /// Mergeable named distributions (log-linear histograms, gauges,
    /// counters) carried out through [`Report::dists`] — the parallel
    /// sweep merges them after the fact, in point order.
    pub dists: RunMetrics,
    /// When true, skip all `dists` recording. Only the bench overhead
    /// guard sets this — it is the A side of the "metrics cost <5%"
    /// comparison, never a reporting mode.
    pub lean: bool,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one user-transaction latency sample (mean + percentile
    /// tracking).
    pub fn record_latency(&mut self, d: SimDuration) {
        self.latency.record(d.as_secs_f64());
        self.latency_hist.record(d);
        if !self.lean {
            self.dists.record(M_COMMIT_LATENCY, d);
        }
    }

    /// Record one lock-wait duration sample (mean + distribution).
    pub fn record_wait(&mut self, d: SimDuration) {
        self.wait_time.record(d.as_secs_f64());
        if !self.lean {
            self.dists.record(M_LOCK_WAIT, d);
        }
    }

    /// Record a duration sample into the named distribution
    /// (propagation lag, reconciliation delay, …).
    #[inline]
    pub fn record_dist(&mut self, name: &str, d: SimDuration) {
        if !self.lean {
            self.dists.record(name, d);
        }
    }

    /// Bump a named distribution counter (aborts, retries, …).
    #[inline]
    pub fn incr_dist(&mut self, name: &str) {
        if !self.lean {
            self.dists.incr(name, 1);
        }
    }

    /// Freeze into a [`Report`] over the observation window
    /// `[start, end]`.
    pub fn report(&self, start: SimTime, end: SimTime) -> Report {
        let span = end.since(start).as_secs_f64();
        let rate = |c: &Counter| {
            if span > 0.0 {
                c.count() as f64 / span
            } else {
                0.0
            }
        };
        Report {
            duration_secs: span,
            committed: self.committed.count(),
            deadlocks: self.deadlocks.count(),
            waits: self.waits.count(),
            reconciliations: self.reconciliations.count(),
            replica_commits: self.replica_commits.count(),
            stale_updates: self.stale_updates.count(),
            messages: self.messages.count(),
            tentative_commits: self.tentative_commits.count(),
            tentative_accepted: self.tentative_accepted.count(),
            tentative_rejected: self.tentative_rejected.count(),
            actions: self.actions.count(),
            messages_dropped: self.messages_dropped.count(),
            messages_duplicated: self.messages_duplicated.count(),
            lock_timeouts: self.lock_timeouts.count(),
            node_crashes: self.node_crashes.count(),
            cycle_checks: self.cycle_checks.count(),
            commit_rate: rate(&self.committed),
            deadlock_rate: rate(&self.deadlocks),
            wait_rate: rate(&self.waits),
            reconciliation_rate: rate(&self.reconciliations),
            action_rate: rate(&self.actions),
            mean_latency_secs: self.latency.mean(),
            p50_latency_secs: self.quantile_or_legacy(0.50, self.latency_hist.p50()),
            p95_latency_secs: self.quantile_or_legacy(0.95, self.latency_hist.p95()),
            p99_latency_secs: self.quantile_or_legacy(0.99, self.latency_hist.p99()),
            max_latency_secs: self
                .dists
                .histogram(M_COMMIT_LATENCY)
                .map_or(0.0, |h| h.max_secs()),
            mean_wait_secs: self.wait_time.mean(),
            dists: self.dists.clone(),
        }
    }

    /// Latency quantile from the log-linear distribution when samples
    /// exist there; the coarser factor-of-two legacy histogram
    /// otherwise (lean mode).
    fn quantile_or_legacy(&self, q: f64, legacy: f64) -> f64 {
        match self.dists.histogram(M_COMMIT_LATENCY) {
            Some(h) if h.count() > 0 => h.quantile_secs(q),
            _ => legacy,
        }
    }
}

/// A finished run's measured rates — what the harness prints next to
/// the model's predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Report {
    /// Observation window length, seconds of simulated time.
    pub duration_secs: f64,
    /// Committed user transactions.
    pub committed: u64,
    /// Deadlock aborts.
    pub deadlocks: u64,
    /// Lock waits.
    pub waits: u64,
    /// Reconciliations (timestamp rejections or acceptance failures).
    pub reconciliations: u64,
    /// Committed replica-update transactions.
    pub replica_commits: u64,
    /// Stale replica updates skipped.
    pub stale_updates: u64,
    /// Network messages.
    pub messages: u64,
    /// Tentative commits at mobile nodes.
    pub tentative_commits: u64,
    /// Tentative transactions accepted at the base.
    pub tentative_accepted: u64,
    /// Tentative transactions rejected at the base.
    pub tentative_rejected: u64,
    /// Total object updates performed.
    pub actions: u64,
    /// Messages dropped by fault injection.
    pub messages_dropped: u64,
    /// Messages duplicated by fault injection.
    pub messages_duplicated: u64,
    /// Lock-wait timeout aborts (also counted in `deadlocks`).
    pub lock_timeouts: u64,
    /// Node crashes injected.
    pub node_crashes: u64,
    /// Waits-for graph searches performed.
    pub cycle_checks: u64,
    /// Commits per second.
    pub commit_rate: f64,
    /// Deadlocks per second — compare with equations (5), (12), (13), (19).
    pub deadlock_rate: f64,
    /// Waits per second — compare with equation (10).
    pub wait_rate: f64,
    /// Reconciliations per second — compare with equations (14), (18).
    pub reconciliation_rate: f64,
    /// Object updates per second — compare with equation (8).
    pub action_rate: f64,
    /// Mean user-transaction latency, seconds.
    pub mean_latency_secs: f64,
    /// Median user-transaction latency, seconds (log-bucket resolution).
    pub p50_latency_secs: f64,
    /// 95th-percentile latency, seconds.
    pub p95_latency_secs: f64,
    /// 99th-percentile latency, seconds.
    pub p99_latency_secs: f64,
    /// Largest observed latency, seconds (exact).
    pub max_latency_secs: f64,
    /// Mean lock-wait duration, seconds.
    pub mean_wait_secs: f64,
    /// Every named distribution the run collected: latency/wait/lag
    /// histograms, abort/retry counters, staleness gauges. Plain
    /// mergeable values — the harness folds them into the `--metrics`
    /// registry after the (possibly parallel) sweep returns.
    pub dists: RunMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_sim::SimDuration;

    #[test]
    fn report_computes_rates() {
        let mut m = Metrics::new();
        for _ in 0..20 {
            m.committed.incr();
        }
        m.deadlocks.add(5);
        m.record_latency(SimDuration::from_secs_f64(0.25));
        let r = m.report(SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(r.committed, 20);
        assert!((r.commit_rate - 2.0).abs() < 1e-12);
        assert!((r.deadlock_rate - 0.5).abs() < 1e-12);
        assert!((r.mean_latency_secs - 0.25).abs() < 1e-12);
        // Percentiles land in the right bucket (factor-of-two
        // resolution).
        assert!(r.p50_latency_secs > 0.1 && r.p50_latency_secs < 0.5);
        assert!((r.duration_secs - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let mut m = Metrics::new();
        m.committed.incr();
        let r = m.report(SimTime::from_secs(5), SimTime::from_secs(5));
        assert_eq!(r.commit_rate, 0.0);
        assert_eq!(r.committed, 1);
    }

    #[test]
    fn wait_time_accumulates() {
        let mut m = Metrics::new();
        m.wait_time.record_duration(SimDuration::from_millis(100));
        m.wait_time.record_duration(SimDuration::from_millis(200));
        let r = m.report(SimTime::ZERO, SimTime::from_secs(1));
        assert!((r.mean_wait_secs - 0.15).abs() < 1e-12);
    }
}
