//! Simulation configuration shared by every protocol engine.

use crate::engine::commit::{CommitProto, CrashPoint};
use repl_model::Params;
use repl_net::LatencyModel;
use repl_sim::{AccessPattern, SimDuration, SimTime};
use repl_storage::ShardMap;

/// How the engines resolve deadlocks (paper §2: "locking detects
/// potential anomalies and converts them to waits or deadlocks", and in
/// practice "most systems use timeout" rather than cycle detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlockPolicy {
    /// Exact waits-for cycle detection on every contended request —
    /// the model's idealization, equation (12)'s deadlock rate.
    #[default]
    Detection,
    /// No graph search: blocked transactions abort after waiting
    /// `wait` of simulated time. Resolves real cycles and also kills
    /// innocent long waiters — the real-system trade-off.
    Timeout {
        /// How long a transaction may block before it is presumed
        /// deadlocked and aborted.
        wait: SimDuration,
    },
}

/// Integer-typed run configuration derived from the model's [`Params`].
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of distinct objects (`DB_Size`).
    pub db_size: u64,
    /// Number of nodes.
    pub nodes: u32,
    /// Per-node transaction arrival rate (Poisson), transactions/second.
    pub tps: f64,
    /// Updates per transaction (`Actions`).
    pub actions: usize,
    /// Time per action.
    pub action_time: SimDuration,
    /// One-way network latency model (the paper's closed forms assume
    /// [`LatencyModel::ZERO`]).
    pub latency: LatencyModel,
    /// Simulated time to run.
    pub horizon: SimTime,
    /// Warm-up period excluded from the measured window (lets the
    /// transaction population reach steady state first).
    pub warmup: SimTime,
    /// Root RNG seed; all streams derive from it.
    pub seed: u64,
    /// Object access pattern. The model assumes [`AccessPattern::Uniform`]
    /// ("there are no hotspots"); the Zipf variant is the hotspot
    /// ablation.
    pub access: AccessPattern,
    /// Deadlock resolution policy (honored by the lazy-group engine;
    /// the analytic engines assume [`DeadlockPolicy::Detection`]).
    pub deadlock: DeadlockPolicy,
    /// How many pending replica/refresh updates a propagating node may
    /// coalesce into one scheduled delivery per destination. At 1
    /// (the default) every committed transaction ships as its own
    /// event — the paper's per-transaction fan-out. Larger values chunk
    /// a flush's records into fewer event-queue entries; delivery
    /// *timing* and per-channel order are unchanged, so Report counters
    /// and oracle verdicts are identical at any batch size.
    pub propagation_batch: usize,
    /// Skip all mergeable-distribution recording (`Report::dists` stays
    /// empty, percentile columns fall back to the coarse legacy
    /// histogram). Only the bench overhead guard turns this on, as the
    /// baseline side of its "metrics cost <5%" comparison.
    pub lean_metrics: bool,
    /// Number of keyspace shards (0 = unsharded, the default). With
    /// sharding on, object `o` belongs to shard `o mod shards` and each
    /// shard is replicated at `rf` nodes ([`ShardMap`]).
    pub shards: u32,
    /// Replication factor per shard. 0 means `nodes` (full
    /// replication); `rf >= nodes` also reproduces today's full
    /// replication byte-identically — engines keep their unsharded
    /// paths whenever [`SimConfig::shard_map`] returns `None`.
    pub rf: u32,
    /// Probability (per root transaction) that a sharded workload draws
    /// its objects from the *whole* keyspace instead of the
    /// originating node's hosted subset — a genuine multi-shard
    /// transaction routed through the cross-shard coordinator path.
    pub cross_shard: f64,
    /// Cross-shard atomic-commit protocol for the eager family
    /// (`--commit-proto`). [`CommitProto::OwnerOrder`] is PR 8's
    /// protocol-free baseline; only partial shard layouts consult it.
    pub commit_proto: CommitProto,
    /// Optional targeted crash at a 2PC state transition (the fuzz
    /// campaign's crash-point injection). `None` outside fuzz runs.
    pub crash_point: Option<CrashPoint>,
}

impl SimConfig {
    /// Build a config from model parameters, a run horizon, and a seed.
    /// Fractional `nodes`/`actions` in `params` are rounded.
    pub fn from_params(params: &Params, horizon_secs: u64, seed: u64) -> Self {
        SimConfig {
            db_size: params.db_size.round() as u64,
            nodes: params.nodes.round() as u32,
            tps: params.tps,
            actions: params.actions.round() as usize,
            action_time: SimDuration::from_secs_f64(params.action_time),
            latency: LatencyModel::ZERO,
            horizon: SimTime::from_secs(horizon_secs),
            warmup: SimTime::ZERO,
            seed,
            access: AccessPattern::Uniform,
            deadlock: DeadlockPolicy::Detection,
            propagation_batch: 1,
            lean_metrics: false,
            shards: 0,
            rf: 0,
            cross_shard: 0.0,
            commit_proto: CommitProto::OwnerOrder,
            crash_point: None,
        }
    }

    /// The equivalent analytic parameter set (for model-vs-measured
    /// tables).
    pub fn to_params(&self) -> Params {
        Params::new(
            self.db_size as f64,
            f64::from(self.nodes),
            self.tps,
            self.actions as f64,
            self.action_time.as_secs_f64(),
        )
    }

    /// Builder-style latency override.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style warm-up override.
    #[must_use]
    pub fn with_warmup(mut self, warmup_secs: u64) -> Self {
        self.warmup = SimTime::from_secs(warmup_secs);
        self
    }

    /// Builder-style access-pattern override (hotspot ablation).
    #[must_use]
    pub fn with_access(mut self, access: AccessPattern) -> Self {
        self.access = access;
        self
    }

    /// Builder-style deadlock-policy override (§2's timeout
    /// resolution vs. exact cycle detection).
    #[must_use]
    pub fn with_deadlock(mut self, deadlock: DeadlockPolicy) -> Self {
        self.deadlock = deadlock;
        self
    }

    /// Builder-style propagation batch override. `batch` is clamped to
    /// at least 1 (0 would mean "never ship updates").
    #[must_use]
    pub fn with_propagation_batch(mut self, batch: usize) -> Self {
        self.propagation_batch = batch.max(1);
        self
    }

    /// Builder-style lean-metrics override (bench overhead baseline).
    #[must_use]
    pub fn with_lean_metrics(mut self) -> Self {
        self.lean_metrics = true;
        self
    }

    /// Builder-style sharding override: split the keyspace into
    /// `shards` shards replicated at `rf` nodes each. `shards == 0`
    /// turns sharding off; `rf == 0` (or `rf >= nodes`) means full
    /// replication, which runs the engines' unsharded code paths and is
    /// byte-identical to not sharding at all.
    #[must_use]
    pub fn with_shards(mut self, shards: u32, rf: u32) -> Self {
        self.shards = shards;
        self.rf = if shards == 0 { 0 } else { rf };
        self
    }

    /// Builder-style cross-shard transaction rate (clamped to [0, 1]).
    /// Only meaningful when a partial [`SimConfig::shard_map`] is
    /// active.
    #[must_use]
    pub fn with_cross_shard(mut self, rate: f64) -> Self {
        self.cross_shard = rate.clamp(0.0, 1.0);
        self
    }

    /// Builder-style cross-shard commit protocol override.
    #[must_use]
    pub fn with_commit_proto(mut self, proto: CommitProto) -> Self {
        self.commit_proto = proto;
        self
    }

    /// Builder-style 2PC crash-point injection (fuzz campaign).
    #[must_use]
    pub fn with_crash_point(mut self, point: CrashPoint) -> Self {
        self.crash_point = Some(point);
        self
    }

    /// The effective replication factor (`rf == 0` means `nodes`,
    /// anything larger is clamped to `nodes`).
    pub fn effective_rf(&self) -> u32 {
        if self.rf == 0 {
            self.nodes
        } else {
            self.rf.min(self.nodes)
        }
    }

    /// The shard layout for this run, or `None` when the configuration
    /// amounts to full replication (unsharded, or `rf >= nodes`) — the
    /// engines then keep their original code paths, which is what makes
    /// `--shards K --rf Nodes` byte-identical to an unsharded run.
    pub fn shard_map(&self) -> Option<ShardMap> {
        if self.shards == 0 || self.effective_rf() >= self.nodes {
            return None;
        }
        Some(ShardMap::new(self.shards, self.nodes, self.effective_rf()))
    }

    /// Mean inter-arrival time of one node's Poisson process.
    pub fn mean_interarrival_secs(&self) -> f64 {
        1.0 / self.tps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_params() {
        let p = Params::new(5000.0, 3.0, 7.5, 6.0, 0.02);
        let c = SimConfig::from_params(&p, 100, 1);
        assert_eq!(c.db_size, 5000);
        assert_eq!(c.nodes, 3);
        assert_eq!(c.actions, 6);
        let back = c.to_params();
        assert!((back.tps - 7.5).abs() < 1e-12);
        assert!((back.action_time - 0.02).abs() < 1e-9);
    }

    #[test]
    fn builders() {
        let p = Params::default();
        let c = SimConfig::from_params(&p, 10, 1)
            .with_warmup(2)
            .with_latency(LatencyModel::Fixed(SimDuration::from_millis(5)));
        assert_eq!(c.warmup, SimTime::from_secs(2));
        assert_eq!(c.latency, LatencyModel::Fixed(SimDuration::from_millis(5)));
    }

    #[test]
    fn deadlock_policy_defaults_to_detection() {
        let c = SimConfig::from_params(&Params::default(), 10, 1);
        assert_eq!(c.deadlock, DeadlockPolicy::Detection);
        let c = c.with_deadlock(DeadlockPolicy::Timeout {
            wait: SimDuration::from_secs(1),
        });
        assert!(matches!(c.deadlock, DeadlockPolicy::Timeout { .. }));
    }

    #[test]
    fn propagation_batch_defaults_to_per_txn() {
        let c = SimConfig::from_params(&Params::default(), 10, 1);
        assert_eq!(c.propagation_batch, 1);
        assert_eq!(c.with_propagation_batch(8).propagation_batch, 8);
        // 0 is nonsensical; clamp to the per-txn behaviour.
        assert_eq!(c.with_propagation_batch(0).propagation_batch, 1);
    }

    #[test]
    fn shard_map_none_unless_partial() {
        let p = Params::default().with_nodes(4.0);
        let c = SimConfig::from_params(&p, 10, 1);
        assert!(c.shard_map().is_none(), "unsharded");
        // rf = 0 means full replication: still no map.
        assert!(c.with_shards(8, 0).shard_map().is_none());
        // rf >= nodes is full replication too.
        assert!(c.with_shards(8, 4).shard_map().is_none());
        assert!(c.with_shards(8, 9).shard_map().is_none());
        // A genuinely partial layout yields a map.
        let m = c.with_shards(8, 2).shard_map().expect("partial map");
        assert_eq!(m.shards(), 8);
        assert_eq!(m.rf(), 2);
        assert!(!m.is_full());
    }

    #[test]
    fn cross_shard_rate_clamps() {
        let c = SimConfig::from_params(&Params::default(), 10, 1);
        assert_eq!(c.cross_shard, 0.0);
        assert_eq!(c.with_cross_shard(0.25).cross_shard, 0.25);
        assert_eq!(c.with_cross_shard(7.0).cross_shard, 1.0);
        assert_eq!(c.with_cross_shard(-1.0).cross_shard, 0.0);
    }

    #[test]
    fn commit_proto_defaults_to_owner_order() {
        let c = SimConfig::from_params(&Params::default(), 10, 1);
        assert_eq!(c.commit_proto, CommitProto::OwnerOrder);
        assert!(c.crash_point.is_none());
        let c = c.with_commit_proto(CommitProto::TwoPc);
        assert_eq!(c.commit_proto, CommitProto::TwoPc);
        let cp = CrashPoint {
            kind: crate::engine::commit::CrashKind::CoordPostPrepare,
            nth: 0,
            down_secs: 5,
        };
        assert_eq!(c.with_crash_point(cp).crash_point, Some(cp));
    }

    #[test]
    fn interarrival_inverse_of_tps() {
        let p = Params::default().with_tps(20.0);
        let c = SimConfig::from_params(&p, 10, 1);
        assert!((c.mean_interarrival_secs() - 0.05).abs() < 1e-12);
    }
}
