//! Reconciliation rules for conflicting lazy-group updates.
//!
//! §6: "Oracle 7 provides a choice of twelve reconciliation rules to
//! merge conflicting updates … these rules give priority to certain
//! sites, or time priority, or value priority, or they merge commutative
//! updates." This module implements that rule family, plus the manual
//! queue a conflict falls into when no rule applies — the "program or
//! person [that] must reconcile conflicting transactions" of §1.

use repl_sim::SimTime;
use repl_storage::{NodeId, ObjectId, Timestamp, UpdateRecord, Value, Versioned};
use repl_telemetry::{Event, EventKind, TraceHandle};

/// A detected dangerous update: an incoming replica update whose `old`
/// timestamp does not match the local replica's current version.
#[derive(Debug, Clone, PartialEq)]
pub struct Conflict {
    /// The contested object.
    pub object: ObjectId,
    /// The local committed version.
    pub local: Versioned,
    /// The incoming update that raced it.
    pub incoming: UpdateRecord,
    /// The integer value the origin transaction read before writing,
    /// when the workload ships deltas ("debit by $50") rather than
    /// blind values — required by [`Rule::Additive`].
    pub incoming_old_value: Option<i64>,
}

/// How a rule disposed of a conflict.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolution {
    /// Keep the local version; the incoming update is discarded.
    KeepLocal,
    /// Install this value/timestamp (the incoming update, or a merge).
    Install {
        /// Value to install.
        value: Value,
        /// Timestamp to install (the max of the two inputs, so the
        /// result is never ordered before either).
        ts: Timestamp,
    },
    /// No automatic disposition — escalate to the manual queue.
    Manual,
}

/// An automatic reconciliation rule (the Oracle 7 §6 menu).
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// Newest timestamp wins (time priority). Loses updates — the §6
    /// "lost update problem" — but always converges.
    TimePriority,
    /// Earlier-listed sites beat later-listed ones; listed sites beat
    /// unlisted ones; two unlisted sites fall back to time priority.
    SitePriority(Vec<NodeId>),
    /// Larger integer value wins (value priority); non-integers fall
    /// back to time priority.
    ValuePriority,
    /// Merge commutative updates additively: the incoming update's
    /// *delta* (`new − old`) is applied on top of the local value.
    /// Requires the old-value hint; otherwise escalates to manual.
    Additive,
    /// Always escalate — pure manual reconciliation.
    Manual,
}

impl Rule {
    /// Apply the rule to a conflict.
    pub fn resolve(&self, c: &Conflict) -> Resolution {
        let merged_ts = c.local.ts.max(c.incoming.new_ts);
        match self {
            Rule::TimePriority => {
                if c.incoming.new_ts > c.local.ts {
                    Resolution::Install {
                        value: c.incoming.value.clone(),
                        ts: c.incoming.new_ts,
                    }
                } else {
                    Resolution::KeepLocal
                }
            }
            Rule::SitePriority(order) => {
                let rank = |node: NodeId| order.iter().position(|&n| n == node);
                match (rank(c.local.ts.node), rank(c.incoming.new_ts.node)) {
                    (Some(l), Some(i)) if i < l => Resolution::Install {
                        value: c.incoming.value.clone(),
                        ts: merged_ts,
                    },
                    (Some(_), Some(_)) => Resolution::KeepLocal,
                    (None, Some(_)) => Resolution::Install {
                        value: c.incoming.value.clone(),
                        ts: merged_ts,
                    },
                    (Some(_), None) => Resolution::KeepLocal,
                    (None, None) => Rule::TimePriority.resolve(c),
                }
            }
            Rule::ValuePriority => match (c.local.value.as_int(), c.incoming.value.as_int()) {
                (Some(l), Some(i)) if i > l => Resolution::Install {
                    value: c.incoming.value.clone(),
                    ts: merged_ts,
                },
                (Some(_), Some(_)) => Resolution::KeepLocal,
                _ => Rule::TimePriority.resolve(c),
            },
            Rule::Additive => {
                let (Some(local), Some(new), Some(old)) = (
                    c.local.value.as_int(),
                    c.incoming.value.as_int(),
                    c.incoming_old_value,
                ) else {
                    return Resolution::Manual;
                };
                Resolution::Install {
                    value: Value::Int(local + (new - old)),
                    ts: merged_ts,
                }
            }
            Rule::Manual => Resolution::Manual,
        }
    }
}

/// A commutative update carrying its delta explicitly — what §6 means
/// by "updates expressed as transactional transformations such as
/// 'debit the account by $50'".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaUpdate {
    /// The target object.
    pub object: ObjectId,
    /// The signed delta.
    pub delta: i64,
    /// Timestamp of the update.
    pub ts: Timestamp,
}

impl DeltaUpdate {
    /// Merge into a local version: deltas always apply, in any order —
    /// the state after any permutation of the same delta set is
    /// identical.
    pub fn merge_into(&self, local: &Versioned) -> Versioned {
        Versioned {
            value: Value::Int(local.value.as_int().unwrap_or(0) + self.delta),
            ts: local.ts.max(self.ts),
        }
    }
}

/// Conflicts awaiting a program or person.
#[derive(Debug, Default)]
pub struct ManualQueue {
    entries: Vec<Conflict>,
    tracer: TraceHandle,
    /// Logical operation counter — the queue has no simulated clock, so
    /// trace events are stamped with one tick per push/resolve.
    tick: u64,
}

impl ManualQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a tracer; events carry a logical per-operation tick as
    /// their timestamp.
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Park a conflict for human resolution.
    pub fn push(&mut self, c: Conflict) {
        self.tick += 1;
        self.tracer.emit(|| {
            Event::system(
                SimTime(self.tick),
                c.local.ts.node,
                EventKind::DangerousUpdate { object: c.object },
            )
        });
        self.entries.push(c);
    }

    /// Number of unresolved conflicts — a persistently growing value
    /// here is the onset of the paper's *system delusion*.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty (the database is fully reconciled).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve the oldest conflict by applying a rule after the fact.
    pub fn resolve_next(&mut self, rule: &Rule) -> Option<(Conflict, Resolution)> {
        if self.entries.is_empty() {
            return None;
        }
        let c = self.entries.remove(0);
        let r = rule.resolve(&c);
        self.tick += 1;
        self.tracer
            .emit(|| Event::system(SimTime(self.tick), c.local.ts.node, EventKind::Reconcile));
        Some((c, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_storage::TxnId;

    fn ts(c: u64, n: u32) -> Timestamp {
        Timestamp::new(c, NodeId(n))
    }

    fn conflict(local_v: i64, local_ts: Timestamp, inc_v: i64, inc_ts: Timestamp) -> Conflict {
        Conflict {
            object: ObjectId(0),
            local: Versioned {
                value: Value::Int(local_v),
                ts: local_ts,
            },
            incoming: UpdateRecord {
                txn: TxnId(1),
                object: ObjectId(0),
                old_ts: Timestamp::ZERO,
                new_ts: inc_ts,
                value: Value::Int(inc_v),
            },
            incoming_old_value: None,
        }
    }

    #[test]
    fn time_priority_newest_wins() {
        let c = conflict(1, ts(5, 1), 2, ts(7, 2));
        assert_eq!(
            Rule::TimePriority.resolve(&c),
            Resolution::Install {
                value: Value::Int(2),
                ts: ts(7, 2)
            }
        );
        let c = conflict(1, ts(9, 1), 2, ts(7, 2));
        assert_eq!(Rule::TimePriority.resolve(&c), Resolution::KeepLocal);
    }

    #[test]
    fn site_priority_prefers_listed_order() {
        let rule = Rule::SitePriority(vec![NodeId(3), NodeId(1)]);
        // Incoming from node 3 (rank 0) beats local from node 1 (rank 1).
        let c = conflict(1, ts(9, 1), 2, ts(5, 3));
        assert!(matches!(rule.resolve(&c), Resolution::Install { .. }));
        // Local from node 3 beats incoming from node 1.
        let c = conflict(1, ts(5, 3), 2, ts(9, 1));
        assert_eq!(rule.resolve(&c), Resolution::KeepLocal);
    }

    #[test]
    fn site_priority_listed_beats_unlisted() {
        let rule = Rule::SitePriority(vec![NodeId(2)]);
        let c = conflict(1, ts(9, 7), 2, ts(5, 2)); // local unlisted
        assert!(matches!(rule.resolve(&c), Resolution::Install { .. }));
        let c = conflict(1, ts(5, 2), 2, ts(9, 7)); // incoming unlisted
        assert_eq!(rule.resolve(&c), Resolution::KeepLocal);
    }

    #[test]
    fn site_priority_unlisted_pair_falls_back_to_time() {
        let rule = Rule::SitePriority(vec![NodeId(9)]);
        let c = conflict(1, ts(5, 1), 2, ts(7, 2));
        assert!(matches!(rule.resolve(&c), Resolution::Install { .. }));
    }

    #[test]
    fn value_priority_larger_value_wins() {
        let c = conflict(10, ts(9, 1), 20, ts(5, 2));
        assert!(matches!(
            Rule::ValuePriority.resolve(&c),
            Resolution::Install { .. }
        ));
        let c = conflict(30, ts(5, 1), 20, ts(9, 2));
        assert_eq!(Rule::ValuePriority.resolve(&c), Resolution::KeepLocal);
    }

    #[test]
    fn value_priority_text_falls_back_to_time() {
        let mut c = conflict(0, ts(1, 1), 0, ts(2, 2));
        c.local.value = Value::from("a");
        assert!(matches!(
            Rule::ValuePriority.resolve(&c),
            Resolution::Install { .. }
        ));
    }

    #[test]
    fn additive_merges_deltas() {
        // Local is 70 (someone debited 30 from 100); incoming says
        // "I saw 100 and wrote 150" → delta +50 → merged 120.
        let mut c = conflict(70, ts(5, 1), 150, ts(6, 2));
        c.incoming_old_value = Some(100);
        assert_eq!(
            Rule::Additive.resolve(&c),
            Resolution::Install {
                value: Value::Int(120),
                ts: ts(6, 2)
            }
        );
    }

    #[test]
    fn additive_without_hint_goes_manual() {
        let c = conflict(10, ts(5, 1), 20, ts(7, 2));
        assert_eq!(Rule::Additive.resolve(&c), Resolution::Manual);
    }

    #[test]
    fn delta_updates_merge_in_any_order() {
        let start = Versioned {
            value: Value::Int(100),
            ts: ts(1, 1),
        };
        let a = DeltaUpdate {
            object: ObjectId(0),
            delta: -30,
            ts: ts(2, 2),
        };
        let b = DeltaUpdate {
            object: ObjectId(0),
            delta: 50,
            ts: ts(2, 3),
        };
        let ab = b.merge_into(&a.merge_into(&start));
        let ba = a.merge_into(&b.merge_into(&start));
        assert_eq!(ab, ba);
        assert_eq!(ab.value, Value::Int(120));
    }

    #[test]
    fn manual_rule_always_escalates() {
        let c = conflict(1, ts(1, 1), 2, ts(2, 2));
        assert_eq!(Rule::Manual.resolve(&c), Resolution::Manual);
    }

    #[test]
    fn manual_queue_fifo_resolution() {
        let mut q = ManualQueue::new();
        assert!(q.is_empty());
        q.push(conflict(1, ts(1, 1), 2, ts(2, 2)));
        q.push(conflict(3, ts(3, 1), 4, ts(1, 2)));
        assert_eq!(q.len(), 2);
        let (c, r) = q.resolve_next(&Rule::TimePriority).unwrap();
        assert_eq!(c.local.value, Value::Int(1));
        assert!(matches!(r, Resolution::Install { .. }));
        let (_, r) = q.resolve_next(&Rule::TimePriority).unwrap();
        assert_eq!(r, Resolution::KeepLocal);
        assert!(q.resolve_next(&Rule::TimePriority).is_none());
    }
}
