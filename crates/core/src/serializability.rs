//! A runtime serializability checker.
//!
//! §7, key property 2: "base transactions execute with single-copy
//! serializability, so the master base system state is the result of a
//! serializable execution". Rather than take that on faith, the
//! two-tier engine can record every committed base transaction's reads
//! and writes (as the object versions it observed and produced) and
//! this module verifies the execution *after the fact*: the direct
//! serialization graph over version dependencies must be acyclic.
//!
//! The check covers the dependency kinds expressible in this model:
//!
//! * **wr** — T2 read the version T1 wrote ⇒ `T1 → T2`;
//! * **ww** — T2 overwrote the version T1 wrote ⇒ `T1 → T2`;
//! * **rw** — T1 read a version that T2 overwrote ⇒ `T1 → T2`
//!   (anti-dependency).
//!
//! A topological order of the graph is a witness serial schedule.

use repl_storage::{ObjectId, Timestamp, TxnId};
use std::collections::HashMap;

/// One committed transaction's footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// The transaction.
    pub txn: TxnId,
    /// `(object, version observed)` for every read.
    pub reads: Vec<(ObjectId, Timestamp)>,
    /// `(object, version overwritten, version produced)` for every
    /// write.
    pub writes: Vec<(ObjectId, Timestamp, Timestamp)>,
}

/// An execution history: the committed transactions, in commit order.
#[derive(Debug, Default, Clone)]
pub struct History {
    records: Vec<TxnRecord>,
}

/// The verdict of a serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The dependency graph is acyclic; a witness serial order of
    /// transaction ids is included.
    Serializable {
        /// One topological order (a valid serial schedule).
        witness: Vec<TxnId>,
    },
    /// A dependency cycle exists — the execution is not serializable.
    /// The transactions known to participate in cycles are listed.
    NotSerializable {
        /// Transactions on some cycle.
        cycle_members: Vec<TxnId>,
    },
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed transaction.
    pub fn record(&mut self, record: TxnRecord) {
        self.records.push(record);
    }

    /// Number of recorded transactions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Build the dependency graph and check it for cycles.
    pub fn check(&self) -> Verdict {
        // writer_of[(object, version)] = txn that produced it.
        let mut writer_of: HashMap<(ObjectId, Timestamp), TxnId> = HashMap::new();
        // overwriters_of[(object, version)] = txns that replaced it. In
        // a truly one-copy execution each version has at most one
        // overwriter; recording them all lets the rw edges expose the
        // lost-update anomaly when two transactions both claim to have
        // replaced the same version.
        let mut overwriters_of: HashMap<(ObjectId, Timestamp), Vec<TxnId>> = HashMap::new();
        for r in &self.records {
            for &(obj, _old, new) in &r.writes {
                writer_of.insert((obj, new), r.txn);
            }
            for &(obj, old, _new) in &r.writes {
                overwriters_of.entry((obj, old)).or_default().push(r.txn);
            }
        }

        let index: HashMap<TxnId, usize> = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.txn, i))
            .collect();
        let n = self.records.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge = |edges: &mut Vec<Vec<usize>>, from: TxnId, to: TxnId| {
            if from == to {
                return;
            }
            let (Some(&f), Some(&t)) = (index.get(&from), index.get(&to)) else {
                return;
            };
            if !edges[f].contains(&t) {
                edges[f].push(t);
            }
        };

        for r in &self.records {
            // wr: whoever wrote the version we read precedes us.
            // rw: whoever overwrote the version we read follows us.
            for &(obj, seen) in &r.reads {
                if let Some(&w) = writer_of.get(&(obj, seen)) {
                    add_edge(&mut edges, w, r.txn);
                }
                if let Some(os) = overwriters_of.get(&(obj, seen)) {
                    for &o in os {
                        add_edge(&mut edges, r.txn, o);
                    }
                }
            }
            // ww: whoever wrote the version we overwrote precedes us.
            for &(obj, old, _new) in &r.writes {
                if let Some(&w) = writer_of.get(&(obj, old)) {
                    add_edge(&mut edges, w, r.txn);
                }
            }
        }

        // Kahn's algorithm.
        let mut indegree = vec![0usize; n];
        for targets in &edges {
            for &t in targets {
                indegree[t] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        // Deterministic order: smallest index first.
        queue.sort_unstable_by(|a, b| b.cmp(a));
        let mut witness = Vec::with_capacity(n);
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            witness.push(self.records[i].txn);
            for &t in &edges[i] {
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    // Keep the pop order deterministic-ish.
                    queue.push(t);
                    queue.sort_unstable_by(|a, b| b.cmp(a));
                }
            }
        }
        if seen == n {
            Verdict::Serializable { witness }
        } else {
            let cycle_members = (0..n)
                .filter(|&i| indegree[i] > 0)
                .map(|i| self.records[i].txn)
                .collect();
            Verdict::NotSerializable { cycle_members }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_storage::NodeId;

    fn ts(c: u64) -> Timestamp {
        Timestamp::new(c, NodeId(0))
    }

    fn txn(id: u64, reads: &[(u64, u64)], writes: &[(u64, u64, u64)]) -> TxnRecord {
        TxnRecord {
            txn: TxnId(id),
            reads: reads.iter().map(|&(o, v)| (ObjectId(o), ts(v))).collect(),
            writes: writes
                .iter()
                .map(|&(o, old, new)| (ObjectId(o), ts(old), ts(new)))
                .collect(),
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        match History::new().check() {
            Verdict::Serializable { witness } => assert!(witness.is_empty()),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn sequential_writes_serialize_in_version_order() {
        let mut h = History::new();
        h.record(txn(1, &[(0, 0)], &[(0, 0, 1)]));
        h.record(txn(2, &[(0, 1)], &[(0, 1, 2)]));
        h.record(txn(3, &[(0, 2)], &[(0, 2, 3)]));
        match h.check() {
            Verdict::Serializable { witness } => {
                assert_eq!(witness, vec![TxnId(1), TxnId(2), TxnId(3)]);
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn independent_transactions_serializable_any_order() {
        let mut h = History::new();
        h.record(txn(1, &[], &[(0, 0, 1)]));
        h.record(txn(2, &[], &[(1, 0, 1)]));
        assert!(matches!(h.check(), Verdict::Serializable { .. }));
    }

    #[test]
    fn write_skew_cycle_detected() {
        // Classic non-serializable pattern: T1 reads x@0 writes y;
        // T2 reads y@0 writes x. Each read a version the other
        // overwrote: rw edges both ways → cycle.
        let mut h = History::new();
        h.record(txn(1, &[(0, 0)], &[(1, 0, 5)]));
        h.record(txn(2, &[(1, 0)], &[(0, 0, 6)]));
        match h.check() {
            Verdict::NotSerializable { cycle_members } => {
                assert_eq!(cycle_members.len(), 2);
            }
            v => panic!("write skew not detected: {v:?}"),
        }
    }

    #[test]
    fn lost_update_cycle_detected() {
        // T1 and T2 both read x@0; T1 installs x@1, T2 installs x@2
        // "from" version 0: ww T1→T2 (T2 overwrote v0? both claim to
        // overwrite v0) plus rw edges.
        let mut h = History::new();
        h.record(txn(1, &[(0, 0)], &[(0, 0, 1)]));
        h.record(txn(2, &[(0, 0)], &[(0, 0, 2)]));
        // T2 read x@0 which T1 overwrote → T2→T1; T1 read x@0 which T2
        // overwrote → T1→T2. Overwriter bookkeeping keeps the last
        // claimant, but the rw edge pair still closes the cycle.
        assert!(matches!(h.check(), Verdict::NotSerializable { .. }));
    }

    #[test]
    fn read_only_transactions_order_between_writers() {
        let mut h = History::new();
        h.record(txn(1, &[], &[(0, 0, 1)]));
        h.record(txn(2, &[(0, 1)], &[])); // reads T1's version
        h.record(txn(3, &[(0, 1)], &[(0, 1, 2)])); // overwrites it
        match h.check() {
            Verdict::Serializable { witness } => {
                let pos = |id: u64| witness.iter().position(|&t| t == TxnId(id)).unwrap();
                assert!(pos(1) < pos(2), "reader after writer");
                assert!(pos(2) < pos(3), "reader before overwriter");
            }
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn witness_is_a_permutation() {
        let mut h = History::new();
        for i in 0..10u64 {
            h.record(txn(i, &[(i % 3, 0)], &[(i + 10, 0, 1)]));
        }
        // All read version 0 of shared objects that no one overwrites —
        // no conflicts beyond wr on never-written versions.
        match h.check() {
            Verdict::Serializable { witness } => {
                let mut ids: Vec<u64> = witness.iter().map(|t| t.0).collect();
                ids.sort_unstable();
                assert_eq!(ids, (0..10).collect::<Vec<_>>());
            }
            v => panic!("unexpected {v:?}"),
        }
    }
}
