//! Runtime serializability checking — re-exported from [`repl_check`].
//!
//! The checker began life here, recording only two-tier base
//! executions (§7, key property 2). It now lives in the `repl-check`
//! oracle crate, where every engine threads a
//! [`repl_check::Recorder`] through its commit path; this module
//! remains so existing `repl_core::serializability` users keep
//! compiling.

pub use repl_check::{History, TxnRecord, Verdict};
