//! Lazy-group replication ("update anywhere, anytime, anyhow") — §4 and
//! Figure 4 of the paper.
//!
//! Every node accepts root transactions against its local replica. When
//! a root transaction commits, one *lazy transaction* per remote node
//! carries its updates, each tagged `(OID, old timestamp, new value)`.
//! The receiving node runs the paper's timestamp test:
//!
//! * local timestamp == update's old timestamp → safe, apply;
//! * local timestamp newer than the update → stale, ignore;
//! * otherwise → **dangerous**: count a reconciliation and resolve.
//!
//! Conflicts are resolved by time-priority (newest timestamp wins, one
//! of §6's reconciliation rules), so replicas still converge — the
//! *reconciliation rate* is the quantity equation (14) predicts grows
//! with `(Actions × Nodes)³`, and the mobile variant with disconnection
//! windows is the regime of equations (15)–(18).

use crate::config::{DeadlockPolicy, SimConfig};
use crate::metrics::{Metrics, Report, M_ABORTS, M_PROPAGATION_LAG, M_RETRIES};
use repl_check::{Recorder, TxnRecord};
use repl_net::{
    DisconnectSchedule, FaultInjector, FaultPlan, LatencyModel, Network, PeriodModel, SendFate,
};
use repl_sim::{EventQueue, SimDuration, SimRng, SimTime};
use repl_storage::{
    Acquire, ApplyOutcome, CommitLog, DeadlockMode, LamportClock, LockManager, Lsn, NodeId,
    ObjectId, ObjectStore, ShardMap, Timestamp, TxnId, TxnSlab, UpdateRecord, Value,
};
use repl_telemetry::{AbortReason, Event, EventKind, Gauge, Profiler, TraceHandle};

/// Arena tags: root and replica transactions live in separate slabs
/// sharing one id space, so a granted lock's [`TxnId`] routes straight
/// to the arena that minted it.
const ROOT_ARENA: u8 = 0;
const REPLICA_ARENA: u8 = 1;

/// How dangerous updates are disposed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolutionMode {
    /// Resolve automatically by time priority (newest timestamp wins) —
    /// replicas converge, updates may be lost (§6).
    #[default]
    TimePriority,
    /// No automatic rule: the conflicting update is dropped on the
    /// floor and left for "a program or person" (§1). Replicas drift
    /// apart — this mode exists to demonstrate **system delusion**.
    Manual,
}

/// Mobility settings for the lazy-group run.
#[derive(Debug, Clone, Copy)]
pub enum Mobility {
    /// All nodes stay connected — equation (14)'s regime.
    Connected,
    /// Every node alternates connected/disconnected periods — the
    /// "really bad case" of equations (15)–(18). Periods are drawn
    /// exponentially around the configured means so the nodes' cycles
    /// stagger (deterministic identical cycles would disconnect every
    /// node simultaneously, which models nothing).
    Cycling {
        /// Mean connected stretch (`Time_Between_Disconnects`).
        connected: SimDuration,
        /// Mean disconnected stretch (`Disconnected_Time`).
        disconnected: SimDuration,
    },
}

/// One committed root transaction's replica-update message.
///
/// `updates` is shared: propagation fans one commit record out to every
/// destination (plus per-delivery copies for duplicated messages), so
/// the payload is reference-counted instead of deep-cloned per message.
/// The engine is single-threaded — `Rc` is deliberate.
#[derive(Debug, Clone)]
struct ReplicaMsg {
    /// Originating node (stamps `MsgDelivered` trace events).
    from: NodeId,
    /// Send time at the origin — the replica commit measures
    /// propagation lag (send → apply) against it. Parked, retried, and
    /// duplicated copies keep the original stamp, so the lag includes
    /// disconnection and retry time, which is the point.
    sent_at: SimTime,
    updates: std::rc::Rc<[UpdateRecord]>,
    /// Which entries of `updates` this destination applies (bit `i` ⇒
    /// `updates[i]`). Sharded fan-out ships the *full* record to every
    /// group and selects the hosted subset here, so no filtered copy is
    /// ever materialised; unsharded runs set every bit. Records wider
    /// than 64 updates are pre-filtered by the sender and carry
    /// `u64::MAX` — [`applies`] treats overflow indices as selected.
    mask: u64,
}

/// Does `mask` select update `i`? Indices past the mask width are
/// always selected: senders pre-filter any record wider than 64
/// updates, so the overflow tail is hosted by construction.
#[inline]
fn applies(mask: u64, i: usize) -> bool {
    i >= 64 || mask & (1u64 << i) != 0
}

/// The mask selecting every entry of a `len`-wide record.
#[inline]
fn full_mask(len: usize) -> u64 {
    if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

#[derive(Debug)]
enum Ev {
    /// New root transaction at a node.
    Arrive(NodeId),
    /// A root transaction finished one action's service time.
    RootStep(TxnId),
    /// A replica transaction finished one action's service time.
    ReplicaStep(TxnId),
    /// Message arrival.
    Deliver { to: NodeId, msg: ReplicaMsg },
    /// A coalesced burst of message arrivals on one channel
    /// (`propagation_batch` > 1): the messages were sent at the same
    /// instant with the same latency draw, so delivering them as one
    /// event preserves both timing and per-channel order while paying
    /// one event-queue entry instead of one per message.
    DeliverBatch { to: NodeId, msgs: Vec<ReplicaMsg> },
    /// Connectivity change for a node.
    Connectivity { node: NodeId, connected: bool },
    /// Retry a deadlocked replica transaction.
    ReplicaRetry { to: NodeId, msg: ReplicaMsg },
    /// A scheduled bipartition begins.
    PartitionStart { side_a: Vec<NodeId> },
    /// The active bipartition heals.
    PartitionHeal,
    /// A node crashes, losing volatile state.
    Crash(NodeId),
    /// A crashed node restarts and recovers from durable state.
    Restart(NodeId),
    /// Retry propagation from a node after a dropped message.
    Resend(NodeId),
    /// A cross-shard transaction's sub-transaction for one remote
    /// shard group, forwarded to that shard's owner — the per-shard
    /// root/replica split: the owner runs it as an ordinary root and
    /// propagates it to the shard's replica set. Sharded runs only.
    ForwardRoot { to: NodeId, objects: Vec<ObjectId> },
    /// A blocked transaction's lock-wait timer expired
    /// ([`DeadlockPolicy::Timeout`]).
    LockTimeout {
        txn: TxnId,
        node: NodeId,
        obj: ObjectId,
    },
}

#[derive(Debug)]
struct RootTxn {
    node: NodeId,
    objects: Vec<ObjectId>,
    next: usize,
    started: SimTime,
    /// When the transaction last blocked on a lock (cleared on grant,
    /// recorded into the wait-time distribution).
    wait_started: Option<SimTime>,
    /// Updates produced so far (old ts captured at write time).
    updates: Vec<UpdateRecord>,
    /// Pre-images of every store write, for abort rollback. Root
    /// actions write the store as they go; an abort must restore the
    /// old versions or the dirty writes survive as orphans no replica
    /// ever receives — a convergence violation the oracle fuzzer
    /// caught (newest-timestamp-wins only absorbs an orphan if a
    /// *newer committed* write happens to follow).
    undo: Vec<(ObjectId, Value, Timestamp)>,
}

#[derive(Debug)]
struct ReplicaTxn {
    node: NodeId,
    msg: ReplicaMsg,
    next: usize,
    /// When the transaction last blocked on a lock (cleared on grant).
    wait_started: Option<SimTime>,
    /// Whether any update in this lazy transaction hit the dangerous
    /// case (counted once per transaction).
    conflicted: bool,
}

#[derive(Debug)]
struct NodeState {
    store: ObjectStore,
    locks: LockManager,
    clock: LamportClock,
    /// This node's commit log. Lazy propagation replays it "in
    /// sequential commit order" (§5): each destination has a watermark
    /// of the last commit already shipped to it.
    log: CommitLog,
    /// Per-destination replication watermark into `log`.
    sent_upto: Vec<Lsn>,
    /// Replica updates waiting for an apply slot (see
    /// [`MAX_CONCURRENT_REPLICA_TXNS`]).
    backlog: std::collections::VecDeque<ReplicaMsg>,
    /// Replica transactions currently executing at this node.
    active_replicas: usize,
}

/// A node applies its replica-update stream with a bounded pool of
/// apply workers. Without the bound, a reconnecting node would start
/// its entire deferred backlog as one burst of concurrent transactions
/// — thousands of simultaneously blocked transactions that no real
/// system would run (and whose waits-for graph is quadratic to search).
const MAX_CONCURRENT_REPLICA_TXNS: usize = 8;

/// The lazy-group simulator.
pub struct LazyGroupSim {
    cfg: SimConfig,
    mobility: Mobility,
    resolution: ResolutionMode,
    faults: Option<FaultPlan>,
    /// Per-node crash flags: a crashed node accepts no work until its
    /// scheduled restart.
    crashed: Vec<bool>,
    queue: EventQueue<Ev>,
    nodes: Vec<NodeState>,
    network: Network<ReplicaMsg>,
    roots: TxnSlab<RootTxn>,
    replicas: TxnSlab<ReplicaTxn>,
    arrival_rngs: Vec<SimRng>,
    object_rng: SimRng,
    value_rng: SimRng,
    retry_rng: SimRng,
    metrics: Metrics,
    measure_from: SimTime,
    tracer: TraceHandle,
    profiler: Profiler,
    run_label: String,
    /// Recycled buffer for lock-release promotions (commit/abort path).
    granted_scratch: Vec<(TxnId, ObjectId)>,
    /// Recycled `RootTxn` buffers: object lists, update lists (refilled
    /// by commit-log truncation), and undo logs. Root transactions churn
    /// at the arrival rate, so reusing their allocations keeps the
    /// per-commit path allocation-free at steady state.
    objects_pool: Vec<Vec<ObjectId>>,
    update_pool: Vec<Vec<UpdateRecord>>,
    undo_pool: Vec<Vec<(ObjectId, Value, Timestamp)>>,
    /// Scratch for the workload sampler's distinct-object draw.
    sample_scratch: Vec<u64>,
    /// Recycled buffer for the propagation flush: consecutive same-delay
    /// deliveries accumulate here before being scheduled.
    deliver_scratch: Vec<ReplicaMsg>,
    /// Sharded propagation memo, one slot per fan-out signature group
    /// of the origin currently propagating: the last record's hosted-
    /// update mask for that group, reused by every group member at the
    /// same watermark. Reset per [`LazyGroupSim::propagate`] call.
    group_memo: Vec<Option<(Lsn, u64)>>,
    /// Optional correctness recorder (off ⇒ every hook is a no-op).
    recorder: Recorder,
    /// Per-replica staleness: the propagation lag of every update each
    /// node applied, folded into the report's distributions (as
    /// `staleness_n<i>` gauges) right after the measured window closes
    /// — drain-phase applies never pollute it.
    staleness: Vec<Gauge>,
    /// `Some` when the run uses a partial shard layout: stores hold
    /// only hosted objects, propagation filters per destination, and
    /// cross-shard transactions split into per-owner forwarded roots.
    /// `None` keeps every code path bit-identical to the unsharded run.
    shard: Option<ShardMap>,
    /// Per-node hosted-object counts (empty unless sharded).
    hosted_counts: Vec<u64>,
}

impl LazyGroupSim {
    /// Build the simulator. With `Mobility::Cycling`, every node gets a
    /// staggered fixed-period connect/disconnect schedule.
    pub fn new(cfg: SimConfig, mobility: Mobility) -> Self {
        let n = cfg.nodes as usize;
        let mut queue = EventQueue::new();
        // Step events — one fixed service time apart — dominate the
        // event traffic; give them the queue's O(1) FIFO lane.
        queue.set_fifo_lane(cfg.action_time);
        let mut arrival_rngs = Vec::with_capacity(n);
        for node in 0..cfg.nodes {
            let mut rng = SimRng::stream_node(cfg.seed, "lg-arrivals-", u64::from(node));
            let first = SimDuration::from_secs_f64(rng.exp(1.0 / cfg.tps));
            queue.schedule_at(SimTime::ZERO + first, Ev::Arrive(NodeId(node)));
            arrival_rngs.push(rng);
        }
        if let Mobility::Cycling {
            connected,
            disconnected,
        } = mobility
        {
            for node in 0..cfg.nodes {
                let mut sched = DisconnectSchedule::new(
                    NodeId(node),
                    connected,
                    disconnected,
                    PeriodModel::Exponential,
                    cfg.seed,
                );
                for ev in sched.events_until(cfg.horizon) {
                    queue.schedule_at(
                        ev.at,
                        Ev::Connectivity {
                            node: ev.node,
                            connected: ev.connected,
                        },
                    );
                }
            }
        }
        let shard = cfg.shard_map();
        let hosted_counts: Vec<u64> = match &shard {
            Some(map) => (0..cfg.nodes)
                .map(|i| map.hosted_objects(NodeId(i), cfg.db_size))
                .collect(),
            None => Vec::new(),
        };
        let nodes = (0..cfg.nodes)
            .map(|i| NodeState {
                store: match &shard {
                    Some(map) => ObjectStore::sharded(cfg.db_size, map, NodeId(i)),
                    None => ObjectStore::new(cfg.db_size),
                },
                locks: Self::lock_manager(&cfg),
                clock: LamportClock::new(NodeId(i)),
                log: CommitLog::new(),
                sent_upto: vec![Lsn(0); cfg.nodes as usize],
                backlog: std::collections::VecDeque::new(),
                active_replicas: 0,
            })
            .collect();
        LazyGroupSim {
            mobility,
            resolution: ResolutionMode::TimePriority,
            faults: None,
            crashed: vec![false; n],
            queue,
            nodes,
            network: Network::new(n, cfg.latency, cfg.seed),
            roots: TxnSlab::new(ROOT_ARENA),
            replicas: TxnSlab::new(REPLICA_ARENA),
            arrival_rngs,
            object_rng: SimRng::stream(cfg.seed, "lg-objects"),
            value_rng: SimRng::stream(cfg.seed, "lg-values"),
            retry_rng: SimRng::stream(cfg.seed, "lg-retry"),
            metrics: Metrics {
                lean: cfg.lean_metrics,
                ..Metrics::new()
            },
            measure_from: cfg.warmup,
            tracer: TraceHandle::off(),
            profiler: Profiler::off(),
            run_label: "lazy-group".to_owned(),
            granted_scratch: Vec::new(),
            deliver_scratch: Vec::new(),
            group_memo: Vec::new(),
            objects_pool: Vec::new(),
            update_pool: Vec::new(),
            undo_pool: Vec::new(),
            sample_scratch: Vec::new(),
            recorder: Recorder::off(),
            staleness: vec![Gauge::default(); n],
            shard,
            hosted_counts,
            cfg,
        }
    }

    /// Attach a correctness recorder: root commits, replica applies,
    /// and final stores all flow to the convergence/delusion oracles.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// A lock manager honoring the configured deadlock policy, sized
    /// for the configured database.
    fn lock_manager(cfg: &SimConfig) -> LockManager {
        let mut lm = match cfg.deadlock {
            DeadlockPolicy::Detection => LockManager::new(),
            DeadlockPolicy::Timeout { .. } => LockManager::with_mode(DeadlockMode::TimeoutOnly),
        };
        lm.reserve_objects(cfg.db_size as usize);
        lm
    }

    /// Attach a fault plan (builder-style; call before
    /// [`LazyGroupSim::run`]). Message chaos perturbs every live link;
    /// partition and crash windows become scheduled events. Faults
    /// never fire during the post-horizon convergence drain, so the
    /// convergence guarantee survives arbitrary plans.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if plan.has_message_chaos() {
            self.network = Network::new(self.cfg.nodes as usize, self.cfg.latency, self.cfg.seed)
                .with_faults(FaultInjector::new(&plan));
        }
        // Windows naming nodes this run doesn't have are vacuous —
        // filter them out rather than index out of bounds later, so a
        // plan written for a larger cluster (a fuzzer shrinking the
        // node count, a hand-edited CHECK_CASE) still runs.
        for w in &plan.partitions {
            let side_a: Vec<NodeId> = w
                .side_a
                .iter()
                .copied()
                .filter(|n| n.0 < self.cfg.nodes)
                .collect();
            if side_a.is_empty() {
                continue;
            }
            self.queue
                .schedule_at(w.start, Ev::PartitionStart { side_a });
            self.queue.schedule_at(w.heal, Ev::PartitionHeal);
        }
        for c in &plan.crashes {
            if c.node.0 >= self.cfg.nodes {
                continue;
            }
            self.queue.schedule_at(c.at, Ev::Crash(c.node));
            self.queue.schedule_at(c.restart, Ev::Restart(c.node));
        }
        self.faults = Some(plan);
        self
    }

    /// Attach a tracer; events flow from simulated time zero.
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a wall-clock profiler around the event-loop phases.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Label this run's trace (`RunStart` marker, series table header).
    #[must_use]
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.run_label = label.into();
        self
    }

    fn measuring(&self) -> bool {
        self.queue.now() >= self.measure_from
    }

    /// Select how dangerous updates are resolved (builder-style; call
    /// before [`LazyGroupSim::run`]).
    #[must_use]
    pub fn with_resolution(mut self, resolution: ResolutionMode) -> Self {
        self.resolution = resolution;
        self
    }

    /// Run to the horizon, then reconnect everyone and drain all
    /// pending replication so the replicas converge. Returns the
    /// measured report; use [`LazyGroupSim::run_with_state`] to also
    /// inspect the final stores.
    pub fn run(self) -> Report {
        self.run_with_state().0
    }

    /// Like [`LazyGroupSim::run`], returning the final per-node stores
    /// (after the convergence drain) alongside the report.
    pub fn run_with_state(mut self) -> (Report, Vec<ObjectStore>) {
        let horizon = self.cfg.horizon;
        if self.resolution == ResolutionMode::Manual {
            // Manual mode deliberately drops dangerous updates (§1.2's
            // system delusion, by design) — the convergence and
            // delusion oracles would fire on every run, so tell the
            // recorder this divergence is the experiment.
            self.recorder.expect_divergence();
        }
        self.tracer.emit(|| {
            Event::system(
                SimTime::ZERO,
                NodeId(0),
                EventKind::RunStart {
                    label: self.run_label.clone(),
                },
            )
        });
        while let Some((_, ev)) = self.queue.pop_until(horizon) {
            self.dispatch(ev, true);
        }
        for node in &self.nodes {
            self.metrics.cycle_checks.add(node.locks.cycle_checks());
        }
        let mut report = self.metrics.report(self.measure_from, horizon);
        // Per-replica staleness gauges join the distributions here —
        // after the measured window, before the convergence drain.
        if !self.cfg.lean_metrics {
            for (i, g) in self.staleness.iter().enumerate() {
                if g.count > 0 {
                    report.dists.gauges.insert(format!("staleness_n{i}"), *g);
                }
            }
        }
        let report = report;
        // Drain phase: no new arrivals and no new faults — the injector
        // is removed, the partition heals, crashed nodes restart and
        // recover, everyone reconnects, and every queued replica update
        // is delivered and applied. Pending fault events left in the
        // queue are ignored by `dispatch` in this phase.
        self.network.clear_faults();
        self.heal_partition();
        for node in 0..self.cfg.nodes {
            if self.crashed[node as usize] {
                self.restart_node(NodeId(node));
            }
        }
        for node in 0..self.cfg.nodes {
            self.reconnect(NodeId(node));
        }
        while let Some((_, ev)) = self.queue.pop() {
            self.dispatch(ev, false);
        }
        self.tracer.run_end(horizon);
        self.tracer.flush();
        if self.recorder.is_on() {
            for (i, node) in self.nodes.iter().enumerate() {
                self.recorder.final_store(NodeId(i as u32), &node.store);
            }
        }
        let stores = self.nodes.into_iter().map(|n| n.store).collect();
        (report, stores)
    }

    /// Dispatch one event. `live` is false during the post-horizon
    /// convergence drain, where new arrivals and new fault events are
    /// ignored (the drain must terminate with converged replicas no
    /// matter what the fault plan still has scheduled).
    fn dispatch(&mut self, ev: Ev, live: bool) {
        let profiler = self.profiler.clone();
        let t = profiler.start();
        match ev {
            Ev::Arrive(node) => {
                if live {
                    self.on_arrive(node);
                }
                profiler.stop("lazy-group/arrive", t);
            }
            Ev::RootStep(txn) => {
                self.on_root_step(txn);
                profiler.stop("lazy-group/root-step", t);
            }
            Ev::ReplicaStep(txn) => {
                self.on_replica_step(txn);
                profiler.stop("lazy-group/replica-step", t);
            }
            Ev::Deliver { to, msg } => {
                if self.crashed[to.0 as usize] {
                    // Arrived at a dead node: back into the mail, to be
                    // redelivered by recovery at restart.
                    self.network.park(msg.from, to, msg);
                    profiler.stop("lazy-group/deliver", t);
                    return;
                }
                self.tracer.emit(|| {
                    Event::system(
                        self.queue.now(),
                        to,
                        EventKind::MsgDelivered { from: msg.from },
                    )
                });
                self.start_replica_txn(to, msg);
                profiler.stop("lazy-group/deliver", t);
            }
            Ev::DeliverBatch { to, msgs } => {
                for msg in msgs {
                    if self.crashed[to.0 as usize] {
                        self.network.park(msg.from, to, msg);
                        continue;
                    }
                    self.tracer.emit(|| {
                        Event::system(
                            self.queue.now(),
                            to,
                            EventKind::MsgDelivered { from: msg.from },
                        )
                    });
                    self.start_replica_txn(to, msg);
                }
                profiler.stop("lazy-group/deliver", t);
            }
            Ev::ReplicaRetry { to, msg } => {
                if self.crashed[to.0 as usize] {
                    self.network.park(msg.from, to, msg);
                } else {
                    self.start_replica_txn(to, msg);
                }
                profiler.stop("lazy-group/deliver", t);
            }
            Ev::Connectivity { node, connected } => {
                self.tracer.emit(|| {
                    let kind = if connected {
                        EventKind::Reconnect
                    } else {
                        EventKind::Disconnect
                    };
                    Event::system(self.queue.now(), node, kind)
                });
                if connected {
                    self.reconnect(node);
                } else {
                    self.network.disconnect(node);
                }
                profiler.stop("lazy-group/connectivity", t);
            }
            Ev::PartitionStart { side_a } => {
                if live {
                    self.tracer.emit(|| {
                        Event::system(
                            self.queue.now(),
                            side_a.first().copied().unwrap_or_default(),
                            EventKind::PartitionStart {
                                side_a: side_a.clone(),
                            },
                        )
                    });
                    self.network.partition(&side_a);
                }
                profiler.stop("lazy-group/partition", t);
            }
            Ev::PartitionHeal => {
                self.heal_partition();
                profiler.stop("lazy-group/partition", t);
            }
            Ev::Crash(node) => {
                if live {
                    self.crash_node(node);
                }
                profiler.stop("lazy-group/crash", t);
            }
            Ev::Restart(node) => {
                if self.crashed[node.0 as usize] {
                    self.restart_node(node);
                }
                profiler.stop("lazy-group/crash", t);
            }
            Ev::Resend(node) => {
                if !self.crashed[node.0 as usize] {
                    self.propagate(node);
                }
                profiler.stop("lazy-group/resend", t);
            }
            Ev::ForwardRoot { to, objects } => {
                // A forwarded sub-transaction dies if its shard owner is
                // down (nothing committed yet, so nothing to undo), and
                // no new roots start during the convergence drain.
                if live && !self.crashed[to.0 as usize] {
                    self.begin_root(to, objects);
                }
                profiler.stop("lazy-group/forward-root", t);
            }
            Ev::LockTimeout { txn, node, obj } => {
                self.on_lock_timeout(txn, node, obj);
                profiler.stop("lazy-group/lock-timeout", t);
            }
        }
    }

    /// Heal the active bipartition (if any) and deliver everything that
    /// was parked at the boundary.
    fn heal_partition(&mut self) {
        if !self.network.has_partition() {
            return;
        }
        self.tracer.emit(|| {
            Event::system(
                self.queue.now(),
                NodeId::default(),
                EventKind::PartitionHeal,
            )
        });
        let drained = self.network.heal_partition();
        self.queue.schedule_batch_after(
            SimDuration::ZERO,
            drained.into_iter().map(|(to, msg)| Ev::Deliver { to, msg }),
        );
    }

    /// Crash `node`: volatile state (lock table, in-flight transactions,
    /// the replica-apply backlog) is lost; durable state (store, commit
    /// log, replication watermarks) survives. In-flight replica updates
    /// go back into the mail — lazy propagation is at-least-once and the
    /// timestamp test makes re-application idempotent.
    fn crash_node(&mut self, node: NodeId) {
        self.crashed[node.0 as usize] = true;
        self.network.disconnect(node);
        if self.measuring() {
            self.metrics.node_crashes.incr();
        }
        self.tracer
            .emit(|| Event::system(self.queue.now(), node, EventKind::NodeCrash));
        // The lock table dies with the node; bank its search count
        // before it goes.
        let locks = std::mem::replace(
            &mut self.nodes[node.0 as usize].locks,
            Self::lock_manager(&self.cfg),
        );
        self.metrics.cycle_checks.add(locks.cycle_checks());
        // In-flight root transactions at the node die, and recovery
        // undoes their uncommitted store writes (the WAL-style undo
        // pass). Skipping the undo leaves dirty versions with fresh
        // timestamps orphaned in the durable store — never logged for
        // propagation, so no replica ever hears of them, and
        // newest-timestamp-wins only absorbs them if a *newer
        // committed* write happens to follow. The oracle fuzzer caught
        // exactly that divergence.
        let dead_roots: Vec<TxnId> = self
            .roots
            .iter()
            .filter(|(_, t)| t.node == node)
            .map(|(id, _)| id)
            .collect();
        for id in dead_roots {
            self.tracer.emit(|| {
                Event::new(
                    self.queue.now(),
                    node,
                    id,
                    EventKind::TxnAbort {
                        reason: AbortReason::Crash,
                    },
                )
            });
            let txn = self.roots.remove(id).expect("crashing root txn");
            self.rollback_root(&txn);
            self.recycle_root(txn);
        }
        // In-flight and backlogged replica updates return to the mail.
        let dead_replicas: Vec<TxnId> = self
            .replicas
            .iter()
            .filter(|(_, t)| t.node == node)
            .map(|(id, _)| id)
            .collect();
        for id in dead_replicas {
            let txn = self.replicas.remove(id).expect("crashing replica txn");
            self.network.park(txn.msg.from, node, txn.msg);
        }
        let backlog = std::mem::take(&mut self.nodes[node.0 as usize].backlog);
        for msg in backlog {
            self.network.park(msg.from, node, msg);
        }
        self.nodes[node.0 as usize].active_replicas = 0;
    }

    /// Restart `node`: redeliver everything parked for it (the recovery
    /// replay) and resume propagation from its durable watermarks.
    fn restart_node(&mut self, node: NodeId) {
        self.crashed[node.0 as usize] = false;
        self.tracer
            .emit(|| Event::system(self.queue.now(), node, EventKind::NodeRestart));
        let inbound = self.network.reconnect(node);
        self.tracer.emit(|| {
            Event::system(
                self.queue.now(),
                node,
                EventKind::RecoveryReplay {
                    messages: inbound.len() as u64,
                },
            )
        });
        self.queue.schedule_batch_after(
            SimDuration::ZERO,
            inbound.into_iter().map(|msg| Ev::Deliver { to: node, msg }),
        );
        self.propagate(node);
    }

    /// A lock-wait timeout fired. It may be stale — the transaction may
    /// have been granted, committed, died in a crash, or aborted since
    /// the timer was armed — so it only acts if the transaction is still
    /// blocked on the same object.
    fn on_lock_timeout(&mut self, id: TxnId, node: NodeId, obj: ObjectId) {
        if self.crashed[node.0 as usize]
            || self.nodes[node.0 as usize].locks.waiting_on(id) != Some(obj)
        {
            return;
        }
        if self.measuring() {
            self.metrics.deadlocks.incr();
            self.metrics.lock_timeouts.incr();
            // Timeout resolution aborts a root for good but merely
            // resubmits a replica update — count the right one.
            if self.roots.contains(id) {
                self.metrics.incr_dist(M_ABORTS);
            } else {
                self.metrics.incr_dist(M_RETRIES);
            }
        }
        self.tracer.emit(|| {
            Event::new(
                self.queue.now(),
                node,
                id,
                EventKind::LockTimeout { object: obj },
            )
        });
        self.tracer.emit(|| {
            Event::new(
                self.queue.now(),
                node,
                id,
                EventKind::TxnAbort {
                    reason: AbortReason::Timeout,
                },
            )
        });
        // Leave the wait queue first: `release_all` only frees *held*
        // locks, and a queued ghost would be granted the contested
        // object later and hold it forever.
        self.nodes[node.0 as usize].locks.cancel_wait(id);
        if let Some(txn) = self.roots.remove(id) {
            self.rollback_root(&txn);
            self.recycle_root(txn);
            self.release_and_resume(node, id);
        } else if let Some(txn) = self.replicas.remove(id) {
            // Replica updates are resubmitted after a timeout abort,
            // exactly as after a detected deadlock (§5).
            self.release_replica_slot(node);
            self.release_and_resume(node, id);
            let backoff = self
                .cfg
                .action_time
                .saturating_mul(1 + self.retry_rng.gen_range(8));
            self.queue.schedule_after(
                backoff,
                Ev::ReplicaRetry {
                    to: txn.node,
                    msg: txn.msg,
                },
            );
            self.drain_backlog(node);
        }
    }

    /// Arm the lock-wait timer for a transaction that just blocked, if
    /// the run resolves deadlocks by timeout.
    fn arm_lock_timeout(&mut self, id: TxnId, node: NodeId, obj: ObjectId) {
        if let DeadlockPolicy::Timeout { wait } = self.cfg.deadlock {
            self.queue
                .schedule_after(wait, Ev::LockTimeout { txn: id, node, obj });
        }
    }

    fn on_arrive(&mut self, node: NodeId) {
        let gap =
            SimDuration::from_secs_f64(self.arrival_rngs[node.0 as usize].exp(1.0 / self.cfg.tps));
        self.queue.schedule_after(gap, Ev::Arrive(node));
        if self.crashed[node.0 as usize] {
            // No terminals at a dead node; the arrival process itself
            // keeps ticking so the stream stays deterministic.
            return;
        }
        if self.shard.is_some() {
            self.on_arrive_sharded(node);
            return;
        }
        let mut scratch = std::mem::take(&mut self.sample_scratch);
        self.object_rng
            .sample_distinct_into(self.cfg.db_size, self.cfg.actions, &mut scratch);
        let mut objects = self.objects_pool.pop().unwrap_or_default();
        objects.clear();
        objects.extend(scratch.iter().copied().map(ObjectId));
        self.sample_scratch = scratch;
        self.begin_root(node, objects);
    }

    /// Sharded arrival: most transactions draw their objects from the
    /// originating node's hosted subset and run entirely locally. With
    /// probability `cross_shard` a transaction draws from the whole
    /// keyspace instead and splits per shard owner — the locally hosted
    /// objects become a root here, and each remote group is forwarded to
    /// its shard's owner ([`Ev::ForwardRoot`]), which runs it as an
    /// ordinary root and propagates it to that shard's replica set. The
    /// split sub-transactions commit independently (no distributed
    /// atomic commit) — exactly the paper's lazy "anytime, anyhow"
    /// regime, where the serializability oracle judges the outcome.
    fn on_arrive_sharded(&mut self, node: NodeId) {
        let map = self.shard.as_ref().expect("sharded arrival without map");
        let cross = self.object_rng.chance(self.cfg.cross_shard);
        let hosted = self.hosted_counts[node.0 as usize];
        let mut scratch = std::mem::take(&mut self.sample_scratch);
        let mut objects = self.objects_pool.pop().unwrap_or_default();
        objects.clear();
        // Forwarded groups, keyed by shard owner. Cross-shard txns are
        // rare and small (`actions` objects total), so a linear-scan
        // Vec beats a hash map here.
        let mut forwards: Vec<(NodeId, Vec<ObjectId>)> = Vec::new();
        if !cross && hosted >= self.cfg.actions as u64 {
            // Single-shard-group txn: sample distinct positions in the
            // hosted index space and map them to object ids.
            self.object_rng
                .sample_distinct_into(hosted, self.cfg.actions, &mut scratch);
            objects.extend(scratch.iter().map(|&i| map.nth_hosted(node, i)));
        } else {
            // Whole-keyspace draw (also the fallback when the node
            // hosts fewer objects than one transaction touches).
            self.object_rng
                .sample_distinct_into(self.cfg.db_size, self.cfg.actions, &mut scratch);
            for &raw in scratch.iter() {
                let obj = ObjectId(raw);
                if map.hosts_object(node, obj) {
                    objects.push(obj);
                } else {
                    let owner = map.owner(map.shard_of(obj));
                    match forwards.iter_mut().find(|(o, _)| *o == owner) {
                        Some((_, group)) => group.push(obj),
                        None => forwards.push((owner, vec![obj])),
                    }
                }
            }
        }
        self.sample_scratch = scratch;
        if objects.is_empty() {
            objects.clear();
            self.objects_pool.push(objects);
        } else {
            self.begin_root(node, objects);
        }
        for (owner, group) in forwards {
            // Forwarding is one message to the shard owner; the root it
            // spawns there does the usual replica fan-out on commit.
            if self.measuring() {
                self.metrics.messages.incr();
            }
            let delay = self.network.sample_delay();
            self.queue.schedule_after(
                delay,
                Ev::ForwardRoot {
                    to: owner,
                    objects: group,
                },
            );
        }
    }

    /// Insert and start a root transaction over `objects` at `node`.
    fn begin_root(&mut self, node: NodeId, objects: Vec<ObjectId>) {
        let id = self.roots.insert(RootTxn {
            node,
            objects,
            next: 0,
            started: self.queue.now(),
            wait_started: None,
            updates: self
                .update_pool
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(self.cfg.actions)),
            undo: self
                .undo_pool
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(self.cfg.actions)),
        });
        self.tracer
            .emit(|| Event::new(self.queue.now(), node, id, EventKind::TxnBegin));
        self.try_root_step(id);
    }

    fn try_root_step(&mut self, id: TxnId) {
        let txn = self.roots.get(id).expect("stepping unknown root");
        if txn.next >= txn.objects.len() {
            self.commit_root(id);
            return;
        }
        let (node, obj) = (txn.node, txn.objects[txn.next]);
        match self.nodes[node.0 as usize].locks.acquire(id, obj) {
            Acquire::Granted => {
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::RootStep(id));
            }
            Acquire::Waiting => {
                if self.measuring() {
                    self.metrics.waits.incr();
                }
                self.roots
                    .get_mut(id)
                    .expect("waiting root must be active")
                    .wait_started = Some(self.queue.now());
                self.emit_lock_wait(node, id, obj);
                self.arm_lock_timeout(id, node, obj);
            }
            Acquire::Deadlock => {
                if self.measuring() {
                    self.metrics.deadlocks.incr();
                    self.metrics.incr_dist(M_ABORTS);
                }
                self.emit_deadlock(node, id, AbortReason::Deadlock);
                let txn = self.roots.remove(id).expect("aborting unknown root");
                self.rollback_root(&txn);
                self.recycle_root(txn);
                self.release_and_resume(node, id);
            }
        }
    }

    /// Undo an aborted root transaction's store writes by restoring the
    /// pre-images, newest first. Sound because the transaction still
    /// holds exclusive locks on everything it wrote: no other
    /// transaction can have read or overwritten the dirty versions.
    /// Must run *before* the locks are released.
    fn rollback_root(&mut self, txn: &RootTxn) {
        let store = &mut self.nodes[txn.node.0 as usize].store;
        for (obj, value, ts) in txn.undo.iter().rev() {
            store.set(*obj, value.clone(), *ts);
        }
    }

    /// Return an aborted root transaction's buffers to the recycling
    /// pools. (Commits recycle `objects`/`undo` directly; their
    /// `updates` move into the commit log and come back through
    /// [`CommitLog::truncate_until_recycling`].)
    fn recycle_root(&mut self, txn: RootTxn) {
        let RootTxn {
            mut objects,
            mut updates,
            mut undo,
            ..
        } = txn;
        objects.clear();
        updates.clear();
        undo.clear();
        self.objects_pool.push(objects);
        self.update_pool.push(updates);
        self.undo_pool.push(undo);
    }

    /// Trace a lock wait at `node` (no-op when tracing is off).
    fn emit_lock_wait(&self, node: NodeId, id: TxnId, obj: ObjectId) {
        self.tracer.emit(|| {
            Event::new(
                self.queue.now(),
                node,
                id,
                EventKind::LockWait {
                    object: obj,
                    holder: self.nodes[node.0 as usize]
                        .locks
                        .holder_of(obj)
                        .unwrap_or_default(),
                    waiter: id,
                },
            )
        });
    }

    /// Trace a detected deadlock cycle plus the consequent abort.
    fn emit_deadlock(&self, node: NodeId, id: TxnId, reason: AbortReason) {
        self.tracer.emit(|| {
            Event::new(
                self.queue.now(),
                node,
                id,
                EventKind::DeadlockDetected {
                    cycle: self.nodes[node.0 as usize]
                        .locks
                        .last_deadlock_cycle()
                        .to_vec(),
                },
            )
        });
        self.tracer
            .emit(|| Event::new(self.queue.now(), node, id, EventKind::TxnAbort { reason }));
    }

    /// One root action's service time elapsed: perform the write.
    fn on_root_step(&mut self, id: TxnId) {
        let value = Value::Int(self.value_rng.next_u64() as i64);
        // A crash or timeout abort may have killed the transaction
        // while this step event was in flight.
        let Some(txn) = self.roots.get_mut(id) else {
            return;
        };
        let node = txn.node;
        let obj = txn.objects[txn.next];
        let state = &mut self.nodes[node.0 as usize];
        let new_ts = state.clock.tick();
        let old = state.store.replace(obj, value.clone(), new_ts);
        let old_ts = old.ts;
        txn.undo.push((obj, old.value, old_ts));
        txn.updates.push(UpdateRecord {
            txn: id,
            object: obj,
            old_ts,
            new_ts,
            value,
        });
        txn.next += 1;
        if self.measuring() {
            self.metrics.actions.incr();
        }
        self.try_root_step(id);
    }

    fn commit_root(&mut self, id: TxnId) {
        let txn = self.roots.remove(id).expect("committing unknown root");
        let node = txn.node;
        if self.measuring() {
            self.metrics.committed.incr();
            self.metrics
                .record_latency(self.queue.now().since(txn.started));
        }
        self.tracer
            .emit(|| Event::new(self.queue.now(), node, id, EventKind::TxnCommit));
        self.release_and_resume(node, id);
        if self.recorder.is_on() {
            // A root transaction reads the version it overwrites.
            self.recorder.commit(
                node,
                TxnRecord {
                    txn: id,
                    reads: txn.updates.iter().map(|u| (u.object, u.old_ts)).collect(),
                    writes: txn
                        .updates
                        .iter()
                        .map(|u| (u.object, u.old_ts, u.new_ts))
                        .collect(),
                },
            );
        }
        // Commit goes to the node's log; propagation replays the log in
        // commit order (one lazy transaction per remote node — Figure
        // 1's "three node lazy transaction is actually 3 transactions").
        let RootTxn {
            mut objects,
            mut undo,
            updates,
            ..
        } = txn;
        objects.clear();
        undo.clear();
        self.objects_pool.push(objects);
        self.undo_pool.push(undo);
        self.nodes[node.0 as usize].log.append(id, updates);
        self.propagate(node);
    }

    /// Ship every commit past each destination's watermark. A
    /// disconnected origin ships nothing — its log keeps accumulating
    /// and the watermarks catch up at reconnect ("when first connected,
    /// a mobile node sends … deferred replica updates").
    fn propagate(&mut self, origin: NodeId) {
        if !self.network.is_connected(origin) {
            return;
        }
        let batch = self.cfg.propagation_batch.max(1);
        // Consecutive same-delay deliveries on one channel accumulate
        // here and flush as one scheduled event (up to `batch` records).
        // Coalescing happens strictly at flush time — the network still
        // sees one send per record (same fault fates, same latency
        // draws, same message counters as batch=1), and a delay change
        // or non-delivery outcome flushes first, so per-channel arrival
        // order is exactly the per-txn order.
        let mut pending = std::mem::take(&mut self.deliver_scratch);
        let mut pending_delay = SimDuration::ZERO;
        // Destinations usually share a watermark (they all drift only
        // under disconnects), so each record's payload is re-shipped to
        // every destination back to back — memoize the last one and
        // bump its refcount instead of re-allocating per destination.
        let mut last_payload: Option<(Lsn, std::rc::Rc<[UpdateRecord]>)> = None;
        // Sharded runs filter once per distinct shard-set signature,
        // not once per destination: arm one memo slot per fan-out
        // group of this origin.
        if let Some(map) = &self.shard {
            self.group_memo.clear();
            self.group_memo.resize(map.fanout_groups(origin), None);
        }
        for dest in 0..self.cfg.nodes {
            let dest = NodeId(dest);
            if dest == origin {
                continue;
            }
            let group = match &self.shard {
                None => 0,
                // Nodes sharing no shard never exchange replica
                // updates: point the watermark at the head so this dead
                // channel never holds back log GC.
                Some(map) => match map.fanout_group(origin, dest) {
                    Some(g) => g,
                    None => {
                        let head = self.nodes[origin.0 as usize].log.head();
                        self.nodes[origin.0 as usize].sent_upto[dest.0 as usize] = head;
                        continue;
                    }
                },
            };
            debug_assert!(pending.is_empty());
            loop {
                let state = &self.nodes[origin.0 as usize];
                let from = state.sent_upto[dest.0 as usize];
                let Some(record) = state.log.get(from) else {
                    break;
                };
                // One allocation per record (shared across destinations
                // via the memo); every delivery copy below just bumps
                // the refcount. Sharded runs ship the same full payload
                // with a per-signature-group mask selecting the hosted
                // subset — computed once per group and reused by every
                // member at the same watermark — and a record with
                // nothing for this destination's group just advances
                // the watermark. Only records wider than the mask are
                // ever filtered into a fresh copy.
                let wide = record.updates.len() > 64;
                let mask = match (&self.shard, wide) {
                    (None, _) | (Some(_), true) => full_mask(record.updates.len()),
                    (Some(map), false) => {
                        let mask = match &self.group_memo[group as usize] {
                            Some((lsn, m)) if *lsn == from => *m,
                            _ => {
                                let mut m = 0u64;
                                for (i, u) in record.updates.iter().enumerate() {
                                    if map.fanout_group_hosts(origin, group, u.object) {
                                        m |= 1u64 << i;
                                    }
                                }
                                self.group_memo[group as usize] = Some((from, m));
                                m
                            }
                        };
                        if mask == 0 {
                            self.nodes[origin.0 as usize].sent_upto[dest.0 as usize] =
                                Lsn(from.0 + 1);
                            continue;
                        }
                        mask
                    }
                };
                let updates: std::rc::Rc<[UpdateRecord]> = match (&self.shard, wide) {
                    (Some(map), true) => {
                        // Overflow-wide record: the mask cannot address
                        // every entry, so fall back to a per-group
                        // filtered copy (`applies` selects the whole
                        // pre-filtered payload via `u64::MAX`).
                        let rc: std::rc::Rc<[UpdateRecord]> = record
                            .updates
                            .iter()
                            .filter(|u| map.fanout_group_hosts(origin, group, u.object))
                            .cloned()
                            .collect();
                        if rc.is_empty() {
                            self.nodes[origin.0 as usize].sent_upto[dest.0 as usize] =
                                Lsn(from.0 + 1);
                            continue;
                        }
                        rc
                    }
                    _ => match &last_payload {
                        Some((lsn, rc)) if *lsn == from => rc.clone(),
                        _ => {
                            let rc: std::rc::Rc<[UpdateRecord]> = record.updates.as_slice().into();
                            last_payload = Some((from, rc.clone()));
                            rc
                        }
                    },
                };
                if self.measuring() {
                    self.metrics.messages.incr();
                }
                self.tracer.emit(|| {
                    Event::system(
                        self.queue.now(),
                        origin,
                        EventKind::ReplicaSend {
                            to: dest,
                            lsn: from,
                        },
                    )
                });
                // Fate first, message after: only the fates that keep a
                // message pay its construction (and the payload's
                // refcount bump).
                match self.network.send_fate(origin, dest) {
                    SendFate::Deliver { delay } => {
                        if !pending.is_empty() && pending_delay != delay {
                            self.flush_deliveries(dest, pending_delay, &mut pending);
                        }
                        pending_delay = delay;
                        pending.push(ReplicaMsg {
                            from: origin,
                            sent_at: self.queue.now(),
                            updates,
                            mask,
                        });
                        if pending.len() >= batch {
                            self.flush_deliveries(dest, delay, &mut pending);
                        }
                    }
                    SendFate::Duplicated { delays } => {
                        // Flush first: the duplicate's copies must land
                        // behind everything already pending on this
                        // channel, as they would with per-txn events.
                        self.flush_deliveries(dest, pending_delay, &mut pending);
                        if self.measuring() {
                            self.metrics.messages_duplicated.incr();
                        }
                        self.tracer.emit(|| {
                            Event::system(
                                self.queue.now(),
                                origin,
                                EventKind::MsgDuplicated { to: dest },
                            )
                        });
                        for delay in delays {
                            self.queue.schedule_after(
                                delay,
                                Ev::Deliver {
                                    to: dest,
                                    msg: ReplicaMsg {
                                        from: origin,
                                        sent_at: self.queue.now(),
                                        updates: updates.clone(),
                                        mask,
                                    },
                                },
                            );
                        }
                    }
                    SendFate::Dropped => {
                        // Lost in flight. The watermark does not
                        // advance; a retransmit timer re-runs
                        // propagation from the same record, so delivery
                        // is at-least-once and the timestamp test makes
                        // re-application idempotent.
                        self.flush_deliveries(dest, pending_delay, &mut pending);
                        if self.measuring() {
                            self.metrics.messages_dropped.incr();
                        }
                        self.tracer.emit(|| {
                            Event::system(
                                self.queue.now(),
                                origin,
                                EventKind::MsgDropped { to: dest },
                            )
                        });
                        let retransmit = self
                            .faults
                            .as_ref()
                            .map_or(SimDuration::from_millis(100), |p| p.retransmit);
                        self.queue.schedule_after(retransmit, Ev::Resend(origin));
                        break;
                    }
                    SendFate::Held => {
                        // Park it for the unreachable destination; it
                        // still counts as shipped.
                        self.network.park(
                            origin,
                            dest,
                            ReplicaMsg {
                                from: origin,
                                sent_at: self.queue.now(),
                                updates,
                                mask,
                            },
                        );
                    }
                    SendFate::SenderOffline => {
                        // Raced a disconnect: retry from the same
                        // watermark at the next reconnect.
                        self.flush_deliveries(dest, pending_delay, &mut pending);
                        self.deliver_scratch = pending;
                        return;
                    }
                }
                self.nodes[origin.0 as usize].sent_upto[dest.0 as usize] = Lsn(from.0 + 1);
            }
            self.flush_deliveries(dest, pending_delay, &mut pending);
        }
        self.deliver_scratch = pending;
        // Garbage-collect the fully shipped prefix: records below every
        // destination's watermark will never be requested again.
        let state = &mut self.nodes[origin.0 as usize];
        state.sent_upto[origin.0 as usize] = state.log.head();
        if let Some(min) = state.sent_upto.iter().min().copied() {
            state
                .log
                .truncate_until_recycling(min, &mut self.update_pool);
        }
    }

    /// Schedule the accumulated same-delay deliveries for `to`: a lone
    /// record ships as a plain [`Ev::Deliver`] (the batch=1 path stays
    /// allocation-free), a chunk as one [`Ev::DeliverBatch`].
    fn flush_deliveries(&mut self, to: NodeId, delay: SimDuration, pending: &mut Vec<ReplicaMsg>) {
        match pending.len() {
            0 => {}
            1 => {
                let msg = pending.pop().expect("non-empty pending");
                self.queue.schedule_after(delay, Ev::Deliver { to, msg });
            }
            _ => {
                let msgs = std::mem::take(pending);
                self.queue
                    .schedule_after(delay, Ev::DeliverBatch { to, msgs });
            }
        }
    }

    fn reconnect(&mut self, node: NodeId) {
        let inbound = self.network.reconnect(node);
        self.queue.schedule_batch_after(
            SimDuration::ZERO,
            inbound.into_iter().map(|msg| Ev::Deliver { to: node, msg }),
        );
        self.propagate(node);
    }

    fn start_replica_txn(&mut self, to: NodeId, msg: ReplicaMsg) {
        {
            let state = &mut self.nodes[to.0 as usize];
            if state.active_replicas >= MAX_CONCURRENT_REPLICA_TXNS {
                state.backlog.push_back(msg);
                return;
            }
            state.active_replicas += 1;
        }
        let id = self.replicas.insert(ReplicaTxn {
            node: to,
            msg,
            next: 0,
            wait_started: None,
            conflicted: false,
        });
        self.tracer
            .emit(|| Event::new(self.queue.now(), to, id, EventKind::TxnBegin));
        self.try_replica_step(id);
    }

    fn try_replica_step(&mut self, id: TxnId) {
        let txn = self.replicas.get_mut(id).expect("stepping unknown replica");
        // Skip entries the fan-out mask excludes: this destination's
        // signature group does not host them.
        while txn.next < txn.msg.updates.len() && !applies(txn.msg.mask, txn.next) {
            txn.next += 1;
        }
        if txn.next >= txn.msg.updates.len() {
            self.commit_replica(id);
            return;
        }
        let (node, obj) = (txn.node, txn.msg.updates[txn.next].object);
        match self.nodes[node.0 as usize].locks.acquire(id, obj) {
            Acquire::Granted => {
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::ReplicaStep(id));
            }
            Acquire::Waiting => {
                if self.measuring() {
                    self.metrics.waits.incr();
                }
                self.replicas
                    .get_mut(id)
                    .expect("waiting replica must be active")
                    .wait_started = Some(self.queue.now());
                self.emit_lock_wait(node, id, obj);
                self.arm_lock_timeout(id, node, obj);
            }
            Acquire::Deadlock => {
                // Replica updates are resubmitted on deadlock (§5) —
                // back off one action time and retry from scratch.
                if self.measuring() {
                    self.metrics.deadlocks.incr();
                    self.metrics.incr_dist(M_RETRIES);
                }
                self.emit_deadlock(node, id, AbortReason::Deadlock);
                let txn = self.replicas.remove(id).expect("replica vanished");
                self.release_replica_slot(node);
                self.release_and_resume(node, id);
                // Randomized backoff: a deterministic delay would let
                // two retrying transactions re-collide in lockstep
                // forever.
                let backoff = self
                    .cfg
                    .action_time
                    .saturating_mul(1 + self.retry_rng.gen_range(8));
                self.queue.schedule_after(
                    backoff,
                    Ev::ReplicaRetry {
                        to: txn.node,
                        msg: txn.msg,
                    },
                );
                self.drain_backlog(node);
            }
        }
    }

    fn on_replica_step(&mut self, id: TxnId) {
        // A crash or timeout abort may have killed the transaction
        // while this step event was in flight.
        let Some(txn) = self.replicas.get_mut(id) else {
            return;
        };
        let node = txn.node;
        // Copy the cheap fields; only the value payload needs a clone
        // (the record itself stays in the shared message).
        let u = &txn.msg.updates[txn.next];
        let (object, old_ts, new_ts) = (u.object, u.old_ts, u.new_ts);
        let value = u.value.clone();
        txn.next += 1;
        let state = &mut self.nodes[node.0 as usize];
        state.clock.observe(new_ts);
        let outcome = match self.resolution {
            ResolutionMode::TimePriority => {
                state.store.apply_versioned(object, old_ts, new_ts, value)
            }
            ResolutionMode::Manual => {
                // Detect with the Figure 4 test but do not resolve: a
                // dangerous update is simply rejected, and this replica
                // silently keeps its own lineage (system delusion).
                let current = state.store.get(object).ts;
                if current == old_ts {
                    state.store.set(object, value, new_ts);
                    ApplyOutcome::Applied
                } else if current == new_ts {
                    ApplyOutcome::Duplicate
                } else {
                    ApplyOutcome::ConflictIgnored
                }
            }
        };
        self.recorder.replica_apply(node, object, new_ts, outcome);
        match outcome {
            ApplyOutcome::Applied => {}
            ApplyOutcome::Duplicate => {
                if self.queue.now() >= self.measure_from {
                    self.metrics.stale_updates.incr();
                }
                self.tracer
                    .emit(|| Event::new(self.queue.now(), node, id, EventKind::StaleSkip));
            }
            ApplyOutcome::ConflictApplied | ApplyOutcome::ConflictIgnored => {
                // Dangerous update (the paper's Figure 4 test failed);
                // count the reconciliation.
                self.tracer.emit(|| {
                    Event::new(
                        self.queue.now(),
                        node,
                        id,
                        EventKind::DangerousUpdate { object: u.object },
                    )
                });
                self.replicas.get_mut(id).expect("replica txn").conflicted = true;
            }
        }
        self.try_replica_step(id);
    }

    fn commit_replica(&mut self, id: TxnId) {
        let txn = self.replicas.remove(id).expect("unknown replica commit");
        if self.queue.now() >= self.measure_from {
            self.metrics.replica_commits.incr();
            if txn.conflicted {
                self.metrics.reconciliations.incr();
            }
            // Send → apply delta: how stale this replica's view was
            // when the update finally landed.
            let lag = self.queue.now().since(txn.msg.sent_at);
            self.metrics.record_dist(M_PROPAGATION_LAG, lag);
            if !self.cfg.lean_metrics {
                self.staleness[txn.node.0 as usize].observe(lag.0);
            }
        }
        self.tracer
            .emit(|| Event::new(self.queue.now(), txn.node, id, EventKind::ReplicaApply));
        if txn.conflicted {
            self.tracer
                .emit(|| Event::new(self.queue.now(), txn.node, id, EventKind::Reconcile));
        }
        self.release_replica_slot(txn.node);
        self.release_and_resume(txn.node, id);
        self.drain_backlog(txn.node);
    }

    /// Free an apply slot at `node`.
    fn release_replica_slot(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.0 as usize];
        debug_assert!(state.active_replicas > 0, "slot underflow at {node}");
        state.active_replicas = state.active_replicas.saturating_sub(1);
    }

    /// Start the next backlogged replica transaction at `node`, if any
    /// slot is free.
    fn drain_backlog(&mut self, node: NodeId) {
        while self.nodes[node.0 as usize].active_replicas < MAX_CONCURRENT_REPLICA_TXNS {
            let Some(msg) = self.nodes[node.0 as usize].backlog.pop_front() else {
                return;
            };
            self.start_replica_txn(node, msg);
        }
    }

    /// Release `id`'s locks at `node` into the recycled scratch buffer
    /// and resume the promoted waiters — no allocation on this path.
    fn release_and_resume(&mut self, node: NodeId, id: TxnId) {
        let mut granted = std::mem::take(&mut self.granted_scratch);
        self.nodes[node.0 as usize]
            .locks
            .release_all_into(id, &mut granted);
        self.resume_waiters(node, &granted);
        self.granted_scratch = granted;
    }

    /// Resume transactions whose lock was just granted at `node`. The
    /// arena tag in each id routes it without probing both slabs.
    fn resume_waiters(&mut self, _node: NodeId, granted: &[(TxnId, ObjectId)]) {
        let now = self.queue.now();
        for &(waiter, _obj) in granted {
            if self.roots.owns(waiter) {
                if let Some(txn) = self.roots.get_mut(waiter) {
                    if let Some(since) = txn.wait_started.take() {
                        if now >= self.measure_from {
                            self.metrics.record_wait(now.since(since));
                        }
                    }
                    self.queue
                        .schedule_after(self.cfg.action_time, Ev::RootStep(waiter));
                }
            } else if let Some(txn) = self.replicas.get_mut(waiter) {
                if let Some(since) = txn.wait_started.take() {
                    if now >= self.measure_from {
                        self.metrics.record_wait(now.since(since));
                    }
                }
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::ReplicaStep(waiter));
            }
        }
    }

    /// The configuration of this run.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The mobility mode of this run.
    pub fn mobility(&self) -> &Mobility {
        &self.mobility
    }

    /// Override the network latency model after construction (ablation
    /// studies; must be called before [`LazyGroupSim::run`]).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.network = Network::new(self.cfg.nodes as usize, latency, self.cfg.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_model::Params;

    fn cfg(nodes: f64, db: f64, tps: f64, horizon: u64, seed: u64) -> SimConfig {
        let p = Params::new(db, nodes, tps, 4.0, 0.01);
        SimConfig::from_params(&p, horizon, seed)
    }

    #[test]
    fn connected_replicas_converge() {
        let c = cfg(4.0, 500.0, 10.0, 60, 1);
        let (report, stores) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        assert!(report.committed > 0);
        let d0 = stores[0].digest();
        for s in &stores[1..] {
            assert_eq!(s.digest(), d0, "replicas diverged");
        }
    }

    #[test]
    fn contention_generates_reconciliations() {
        // Small database, several nodes: racing updates must appear.
        // (DB kept large enough that the per-node replica-transaction
        // load stays below lock saturation.)
        let c = cfg(8.0, 500.0, 20.0, 60, 2);
        let (report, stores) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        assert!(
            report.reconciliations > 0,
            "expected dangerous updates under contention"
        );
        // Reconciliation resolution still converges.
        let d0 = stores[0].digest();
        assert!(stores.iter().all(|s| s.digest() == d0));
    }

    #[test]
    fn replica_commit_fanout() {
        // Every committed root produces N-1 replica transactions.
        let c = cfg(3.0, 10_000.0, 5.0, 30, 3);
        let (report, _) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        // Allow slack for in-flight work at the horizon.
        let expected = report.committed * 2;
        let got = report.replica_commits;
        assert!(
            got as f64 > expected as f64 * 0.8 && got as f64 <= expected as f64 * 1.2 + 20.0,
            "committed={} replica_commits={got}",
            report.committed
        );
    }

    #[test]
    fn mobile_cycling_converges_after_drain() {
        let c = cfg(4.0, 300.0, 5.0, 120, 4);
        let mobility = Mobility::Cycling {
            connected: SimDuration::from_secs(20),
            disconnected: SimDuration::from_secs(10),
        };
        let (report, stores) = LazyGroupSim::new(c, mobility).run_with_state();
        assert!(report.committed > 0);
        let d0 = stores[0].digest();
        for (i, s) in stores.iter().enumerate() {
            assert_eq!(s.digest(), d0, "node {i} diverged after drain");
        }
    }

    #[test]
    fn disconnection_increases_reconciliation() {
        let base = cfg(6.0, 200.0, 10.0, 120, 5);
        let (connected, _) = LazyGroupSim::new(base, Mobility::Connected).run_with_state();
        let mobility = Mobility::Cycling {
            connected: SimDuration::from_secs(10),
            disconnected: SimDuration::from_secs(30),
        };
        let (mobile, _) = LazyGroupSim::new(base, mobility).run_with_state();
        assert!(
            mobile.reconciliations > connected.reconciliations,
            "disconnection should raise reconciliations: {} vs {}",
            mobile.reconciliations,
            connected.reconciliations
        );
    }

    #[test]
    fn deterministic_runs() {
        let c = cfg(4.0, 200.0, 10.0, 30, 9);
        let a = LazyGroupSim::new(c, Mobility::Connected).run();
        let b = LazyGroupSim::new(c, Mobility::Connected).run();
        assert_eq!(a, b);
    }

    #[test]
    fn full_rf_sharded_identical_to_unsharded() {
        // `--shards K --rf Nodes` must be byte-identical to no sharding
        // at all: the map is `None`, so every code path is the original.
        let c = cfg(4.0, 500.0, 10.0, 60, 7);
        let (plain_report, plain_stores) =
            LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        let (sharded_report, sharded_stores) =
            LazyGroupSim::new(c.with_shards(8, 4), Mobility::Connected).run_with_state();
        assert_eq!(plain_report, sharded_report);
        for (a, b) in plain_stores.iter().zip(&sharded_stores) {
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn sharded_replicas_converge_per_shard() {
        // Partial replication: nodes host different subsets, so whole-
        // store digests differ by construction — convergence means every
        // pair of replicas agrees on every object they both host.
        let c = cfg(6.0, 480.0, 10.0, 60, 11)
            .with_shards(6, 2)
            .with_cross_shard(0.3);
        let (report, stores) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        assert!(report.committed > 0);
        assert!(
            report.replica_commits > 0,
            "partial replication still fans out"
        );
        let mut seen: std::collections::HashMap<ObjectId, (usize, Timestamp, Value)> =
            std::collections::HashMap::new();
        for (i, store) in stores.iter().enumerate() {
            for (obj, v) in store.iter() {
                match seen.entry(obj) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((i, v.ts, v.value.clone()));
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let (j, ts, val) = e.get();
                        assert_eq!(
                            (*ts, val),
                            (v.ts, &v.value),
                            "object {obj} differs between node {j} and node {i}"
                        );
                    }
                }
            }
        }
        // rf = 2 means every object lives at exactly two stores.
        let total: usize = stores.iter().map(|s| s.iter().count()).sum();
        assert_eq!(total as u64, c.db_size * 2);
    }

    #[test]
    fn sharded_runs_deterministic() {
        let c = cfg(6.0, 480.0, 10.0, 30, 13)
            .with_shards(6, 3)
            .with_cross_shard(0.5);
        let a = LazyGroupSim::new(c, Mobility::Connected).run();
        let b = LazyGroupSim::new(c, Mobility::Connected).run();
        assert_eq!(a, b);
    }

    #[test]
    fn partial_rf_ships_fewer_messages() {
        // The point of the exercise: fan-out to a shard's replica set
        // instead of every node shrinks replication traffic.
        let c = cfg(8.0, 800.0, 10.0, 60, 17);
        let (full, _) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        let (partial, _) =
            LazyGroupSim::new(c.with_shards(8, 2), Mobility::Connected).run_with_state();
        assert!(
            partial.messages * 2 < full.messages,
            "partial rf=2 of 8 should cut messages sharply: {} vs {}",
            partial.messages,
            full.messages
        );
    }

    #[test]
    fn timeout_mode_terminates_under_heavy_contention() {
        // Regression: a timed-out waiter left in the FIFO wait queue
        // gets granted the lock after it is gone and holds it forever;
        // every later touch of that object then times out and replica
        // retries spin without end. The run must terminate, converge,
        // and resolve deadlocks without ever searching the graph.
        let c = cfg(4.0, 200.0, 10.0, 60, 41).with_deadlock(DeadlockPolicy::Timeout {
            wait: SimDuration::from_millis(500),
        });
        let (report, stores) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        assert!(report.committed > 0);
        assert!(report.lock_timeouts > 0, "contention produced no timeouts");
        assert_eq!(report.cycle_checks, 0, "timeout mode walked the graph");
        let d0 = stores[0].digest();
        assert!(stores.iter().all(|s| s.digest() == d0));
    }
}
