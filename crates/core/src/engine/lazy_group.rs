//! Lazy-group replication ("update anywhere, anytime, anyhow") — §4 and
//! Figure 4 of the paper.
//!
//! Every node accepts root transactions against its local replica. When
//! a root transaction commits, one *lazy transaction* per remote node
//! carries its updates, each tagged `(OID, old timestamp, new value)`.
//! The receiving node runs the paper's timestamp test:
//!
//! * local timestamp == update's old timestamp → safe, apply;
//! * local timestamp newer than the update → stale, ignore;
//! * otherwise → **dangerous**: count a reconciliation and resolve.
//!
//! Conflicts are resolved by time-priority (newest timestamp wins, one
//! of §6's reconciliation rules), so replicas still converge — the
//! *reconciliation rate* is the quantity equation (14) predicts grows
//! with `(Actions × Nodes)³`, and the mobile variant with disconnection
//! windows is the regime of equations (15)–(18).

use crate::config::SimConfig;
use crate::metrics::{Metrics, Report};
use repl_net::{DisconnectSchedule, LatencyModel, Network, PeriodModel, SendOutcome};
use repl_sim::{EventQueue, SimDuration, SimRng, SimTime};
use repl_storage::{
    Acquire, ApplyOutcome, CommitLog, LamportClock, LockManager, Lsn, NodeId, ObjectId,
    ObjectStore, TxnId, UpdateRecord, Value,
};
use repl_telemetry::{AbortReason, Event, EventKind, Profiler, TraceHandle};
use std::collections::HashMap;

/// How dangerous updates are disposed of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolutionMode {
    /// Resolve automatically by time priority (newest timestamp wins) —
    /// replicas converge, updates may be lost (§6).
    #[default]
    TimePriority,
    /// No automatic rule: the conflicting update is dropped on the
    /// floor and left for "a program or person" (§1). Replicas drift
    /// apart — this mode exists to demonstrate **system delusion**.
    Manual,
}

/// Mobility settings for the lazy-group run.
#[derive(Debug, Clone, Copy)]
pub enum Mobility {
    /// All nodes stay connected — equation (14)'s regime.
    Connected,
    /// Every node alternates connected/disconnected periods — the
    /// "really bad case" of equations (15)–(18). Periods are drawn
    /// exponentially around the configured means so the nodes' cycles
    /// stagger (deterministic identical cycles would disconnect every
    /// node simultaneously, which models nothing).
    Cycling {
        /// Mean connected stretch (`Time_Between_Disconnects`).
        connected: SimDuration,
        /// Mean disconnected stretch (`Disconnected_Time`).
        disconnected: SimDuration,
    },
}

/// One committed root transaction's replica-update message.
#[derive(Debug, Clone)]
struct ReplicaMsg {
    /// Originating node (stamps `MsgDelivered` trace events).
    from: NodeId,
    updates: Vec<UpdateRecord>,
}

#[derive(Debug)]
enum Ev {
    /// New root transaction at a node.
    Arrive(NodeId),
    /// A root transaction finished one action's service time.
    RootStep(TxnId),
    /// A replica transaction finished one action's service time.
    ReplicaStep(TxnId),
    /// Message arrival.
    Deliver { to: NodeId, msg: ReplicaMsg },
    /// Connectivity change for a node.
    Connectivity { node: NodeId, connected: bool },
    /// Retry a deadlocked replica transaction.
    ReplicaRetry { to: NodeId, msg: ReplicaMsg },
}

#[derive(Debug)]
struct RootTxn {
    node: NodeId,
    objects: Vec<ObjectId>,
    next: usize,
    started: SimTime,
    /// Updates produced so far (old ts captured at write time).
    updates: Vec<UpdateRecord>,
}

#[derive(Debug)]
struct ReplicaTxn {
    node: NodeId,
    msg: ReplicaMsg,
    next: usize,
    /// Whether any update in this lazy transaction hit the dangerous
    /// case (counted once per transaction).
    conflicted: bool,
}

#[derive(Debug)]
struct NodeState {
    store: ObjectStore,
    locks: LockManager,
    clock: LamportClock,
    /// This node's commit log. Lazy propagation replays it "in
    /// sequential commit order" (§5): each destination has a watermark
    /// of the last commit already shipped to it.
    log: CommitLog,
    /// Per-destination replication watermark into `log`.
    sent_upto: Vec<Lsn>,
    /// Replica updates waiting for an apply slot (see
    /// [`MAX_CONCURRENT_REPLICA_TXNS`]).
    backlog: std::collections::VecDeque<ReplicaMsg>,
    /// Replica transactions currently executing at this node.
    active_replicas: usize,
}

/// A node applies its replica-update stream with a bounded pool of
/// apply workers. Without the bound, a reconnecting node would start
/// its entire deferred backlog as one burst of concurrent transactions
/// — thousands of simultaneously blocked transactions that no real
/// system would run (and whose waits-for graph is quadratic to search).
const MAX_CONCURRENT_REPLICA_TXNS: usize = 8;

/// The lazy-group simulator.
pub struct LazyGroupSim {
    cfg: SimConfig,
    mobility: Mobility,
    resolution: ResolutionMode,
    queue: EventQueue<Ev>,
    nodes: Vec<NodeState>,
    network: Network<ReplicaMsg>,
    roots: HashMap<TxnId, RootTxn>,
    replicas: HashMap<TxnId, ReplicaTxn>,
    arrival_rngs: Vec<SimRng>,
    object_rng: SimRng,
    value_rng: SimRng,
    retry_rng: SimRng,
    next_txn: u64,
    metrics: Metrics,
    measure_from: SimTime,
    tracer: TraceHandle,
    profiler: Profiler,
    run_label: String,
}

impl LazyGroupSim {
    /// Build the simulator. With `Mobility::Cycling`, every node gets a
    /// staggered fixed-period connect/disconnect schedule.
    pub fn new(cfg: SimConfig, mobility: Mobility) -> Self {
        let n = cfg.nodes as usize;
        let mut queue = EventQueue::new();
        let mut arrival_rngs = Vec::with_capacity(n);
        for node in 0..cfg.nodes {
            let mut rng = SimRng::stream(cfg.seed, &format!("lg-arrivals-{node}"));
            let first = SimDuration::from_secs_f64(rng.exp(1.0 / cfg.tps));
            queue.schedule_at(SimTime::ZERO + first, Ev::Arrive(NodeId(node)));
            arrival_rngs.push(rng);
        }
        if let Mobility::Cycling {
            connected,
            disconnected,
        } = mobility
        {
            for node in 0..cfg.nodes {
                let mut sched = DisconnectSchedule::new(
                    NodeId(node),
                    connected,
                    disconnected,
                    PeriodModel::Exponential,
                    cfg.seed,
                );
                for ev in sched.events_until(cfg.horizon) {
                    queue.schedule_at(
                        ev.at,
                        Ev::Connectivity {
                            node: ev.node,
                            connected: ev.connected,
                        },
                    );
                }
            }
        }
        let nodes = (0..cfg.nodes)
            .map(|i| NodeState {
                store: ObjectStore::new(cfg.db_size),
                locks: LockManager::new(),
                clock: LamportClock::new(NodeId(i)),
                log: CommitLog::new(),
                sent_upto: vec![Lsn(0); cfg.nodes as usize],
                backlog: std::collections::VecDeque::new(),
                active_replicas: 0,
            })
            .collect();
        LazyGroupSim {
            mobility,
            resolution: ResolutionMode::TimePriority,
            queue,
            nodes,
            network: Network::new(n, cfg.latency, cfg.seed),
            roots: HashMap::new(),
            replicas: HashMap::new(),
            arrival_rngs,
            object_rng: SimRng::stream(cfg.seed, "lg-objects"),
            value_rng: SimRng::stream(cfg.seed, "lg-values"),
            retry_rng: SimRng::stream(cfg.seed, "lg-retry"),
            next_txn: 0,
            metrics: Metrics::new(),
            measure_from: cfg.warmup,
            tracer: TraceHandle::off(),
            profiler: Profiler::off(),
            run_label: "lazy-group".to_owned(),
            cfg,
        }
    }

    /// Attach a tracer; events flow from simulated time zero.
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a wall-clock profiler around the event-loop phases.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Label this run's trace (`RunStart` marker, series table header).
    #[must_use]
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.run_label = label.into();
        self
    }

    fn measuring(&self) -> bool {
        self.queue.now() >= self.measure_from
    }

    /// Select how dangerous updates are resolved (builder-style; call
    /// before [`LazyGroupSim::run`]).
    #[must_use]
    pub fn with_resolution(mut self, resolution: ResolutionMode) -> Self {
        self.resolution = resolution;
        self
    }

    fn fresh_txn(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        id
    }

    /// Run to the horizon, then reconnect everyone and drain all
    /// pending replication so the replicas converge. Returns the
    /// measured report; use [`LazyGroupSim::run_with_state`] to also
    /// inspect the final stores.
    pub fn run(self) -> Report {
        self.run_with_state().0
    }

    /// Like [`LazyGroupSim::run`], returning the final per-node stores
    /// (after the convergence drain) alongside the report.
    pub fn run_with_state(mut self) -> (Report, Vec<ObjectStore>) {
        let horizon = self.cfg.horizon;
        self.tracer.emit(|| {
            Event::system(
                SimTime::ZERO,
                NodeId(0),
                EventKind::RunStart {
                    label: self.run_label.clone(),
                },
            )
        });
        while let Some((_, ev)) = self.queue.pop_until(horizon) {
            self.dispatch(ev, true);
        }
        let report = self.metrics.report(self.measure_from, horizon);
        // Drain phase: no new arrivals, everyone reconnects, every
        // queued replica update is delivered and applied.
        for node in 0..self.cfg.nodes {
            self.reconnect(NodeId(node));
        }
        while let Some((_, ev)) = self.queue.pop() {
            self.dispatch(ev, false);
        }
        self.tracer.run_end(horizon);
        self.tracer.flush();
        let stores = self.nodes.into_iter().map(|n| n.store).collect();
        (report, stores)
    }

    fn dispatch(&mut self, ev: Ev, arrivals_enabled: bool) {
        let profiler = self.profiler.clone();
        let t = profiler.start();
        match ev {
            Ev::Arrive(node) => {
                if arrivals_enabled {
                    self.on_arrive(node);
                }
                profiler.stop("lazy-group/arrive", t);
            }
            Ev::RootStep(txn) => {
                self.on_root_step(txn);
                profiler.stop("lazy-group/root-step", t);
            }
            Ev::ReplicaStep(txn) => {
                self.on_replica_step(txn);
                profiler.stop("lazy-group/replica-step", t);
            }
            Ev::Deliver { to, msg } => {
                self.tracer.emit(|| {
                    Event::system(
                        self.queue.now(),
                        to,
                        EventKind::MsgDelivered { from: msg.from },
                    )
                });
                self.start_replica_txn(to, msg);
                profiler.stop("lazy-group/deliver", t);
            }
            Ev::ReplicaRetry { to, msg } => {
                self.start_replica_txn(to, msg);
                profiler.stop("lazy-group/deliver", t);
            }
            Ev::Connectivity { node, connected } => {
                self.tracer.emit(|| {
                    let kind = if connected {
                        EventKind::Reconnect
                    } else {
                        EventKind::Disconnect
                    };
                    Event::system(self.queue.now(), node, kind)
                });
                if connected {
                    self.reconnect(node);
                } else {
                    self.network.disconnect(node);
                }
                profiler.stop("lazy-group/connectivity", t);
            }
        }
    }

    fn on_arrive(&mut self, node: NodeId) {
        let gap =
            SimDuration::from_secs_f64(self.arrival_rngs[node.0 as usize].exp(1.0 / self.cfg.tps));
        self.queue.schedule_after(gap, Ev::Arrive(node));

        let id = self.fresh_txn();
        let objects: Vec<ObjectId> = self
            .object_rng
            .sample_distinct(self.cfg.db_size, self.cfg.actions)
            .into_iter()
            .map(ObjectId)
            .collect();
        self.roots.insert(
            id,
            RootTxn {
                node,
                objects,
                next: 0,
                started: self.queue.now(),
                updates: Vec::with_capacity(self.cfg.actions),
            },
        );
        self.tracer
            .emit(|| Event::new(self.queue.now(), node, id, EventKind::TxnBegin));
        self.try_root_step(id);
    }

    fn try_root_step(&mut self, id: TxnId) {
        let txn = &self.roots[&id];
        if txn.next >= txn.objects.len() {
            self.commit_root(id);
            return;
        }
        let (node, obj) = (txn.node, txn.objects[txn.next]);
        match self.nodes[node.0 as usize].locks.acquire(id, obj) {
            Acquire::Granted => {
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::RootStep(id));
            }
            Acquire::Waiting => {
                if self.measuring() {
                    self.metrics.waits.incr();
                }
                self.emit_lock_wait(node, id, obj);
            }
            Acquire::Deadlock => {
                if self.measuring() {
                    self.metrics.deadlocks.incr();
                }
                self.emit_deadlock(node, id, AbortReason::Deadlock);
                self.roots.remove(&id);
                let granted = self.nodes[node.0 as usize].locks.release_all(id);
                self.resume_waiters(node, granted);
            }
        }
    }

    /// Trace a lock wait at `node` (no-op when tracing is off).
    fn emit_lock_wait(&self, node: NodeId, id: TxnId, obj: ObjectId) {
        self.tracer.emit(|| {
            Event::new(
                self.queue.now(),
                node,
                id,
                EventKind::LockWait {
                    object: obj,
                    holder: self.nodes[node.0 as usize]
                        .locks
                        .holder_of(obj)
                        .unwrap_or_default(),
                    waiter: id,
                },
            )
        });
    }

    /// Trace a detected deadlock cycle plus the consequent abort.
    fn emit_deadlock(&self, node: NodeId, id: TxnId, reason: AbortReason) {
        self.tracer.emit(|| {
            Event::new(
                self.queue.now(),
                node,
                id,
                EventKind::DeadlockDetected {
                    cycle: self.nodes[node.0 as usize]
                        .locks
                        .last_deadlock_cycle()
                        .to_vec(),
                },
            )
        });
        self.tracer
            .emit(|| Event::new(self.queue.now(), node, id, EventKind::TxnAbort { reason }));
    }

    /// One root action's service time elapsed: perform the write.
    fn on_root_step(&mut self, id: TxnId) {
        let value = Value::Int(self.value_rng.next_u64() as i64);
        let txn = self.roots.get_mut(&id).expect("root step for dead txn");
        let node = txn.node;
        let obj = txn.objects[txn.next];
        let state = &mut self.nodes[node.0 as usize];
        let old_ts = state.store.get(obj).ts;
        let new_ts = state.clock.tick();
        state.store.set(obj, value.clone(), new_ts);
        txn.updates.push(UpdateRecord {
            txn: id,
            object: obj,
            old_ts,
            new_ts,
            value,
        });
        txn.next += 1;
        if self.measuring() {
            self.metrics.actions.incr();
        }
        self.try_root_step(id);
    }

    fn commit_root(&mut self, id: TxnId) {
        let txn = self.roots.remove(&id).expect("committing unknown root");
        let node = txn.node;
        if self.measuring() {
            self.metrics.committed.incr();
            self.metrics
                .record_latency(self.queue.now().since(txn.started));
        }
        self.tracer
            .emit(|| Event::new(self.queue.now(), node, id, EventKind::TxnCommit));
        let granted = self.nodes[node.0 as usize].locks.release_all(id);
        self.resume_waiters(node, granted);
        // Commit goes to the node's log; propagation replays the log in
        // commit order (one lazy transaction per remote node — Figure
        // 1's "three node lazy transaction is actually 3 transactions").
        self.nodes[node.0 as usize].log.append(id, txn.updates);
        self.propagate(node);
    }

    /// Ship every commit past each destination's watermark. A
    /// disconnected origin ships nothing — its log keeps accumulating
    /// and the watermarks catch up at reconnect ("when first connected,
    /// a mobile node sends … deferred replica updates").
    fn propagate(&mut self, origin: NodeId) {
        if !self.network.is_connected(origin) {
            return;
        }
        for dest in 0..self.cfg.nodes {
            let dest = NodeId(dest);
            if dest == origin {
                continue;
            }
            loop {
                let state = &self.nodes[origin.0 as usize];
                let from = state.sent_upto[dest.0 as usize];
                let Some(record) = state.log.get(from) else {
                    break;
                };
                let msg = ReplicaMsg {
                    from: origin,
                    updates: record.updates.clone(),
                };
                if self.measuring() {
                    self.metrics.messages.incr();
                }
                self.tracer.emit(|| {
                    Event::system(
                        self.queue.now(),
                        origin,
                        EventKind::ReplicaSend {
                            to: dest,
                            lsn: from,
                        },
                    )
                });
                match self.network.send(origin, dest, msg) {
                    SendOutcome::Deliver { delay } => {
                        let record = self.nodes[origin.0 as usize]
                            .log
                            .get(from)
                            .expect("record still present");
                        self.queue.schedule_after(
                            delay,
                            Ev::Deliver {
                                to: dest,
                                msg: ReplicaMsg {
                                    from: origin,
                                    updates: record.updates.clone(),
                                },
                            },
                        );
                    }
                    SendOutcome::Held => {
                        // The network parks it for the disconnected
                        // destination; it still counts as shipped.
                    }
                    SendOutcome::SenderOffline(_) => {
                        // Raced a disconnect: retry from the same
                        // watermark at the next reconnect.
                        return;
                    }
                }
                self.nodes[origin.0 as usize].sent_upto[dest.0 as usize] = Lsn(from.0 + 1);
            }
        }
        // Garbage-collect the fully shipped prefix: records below every
        // destination's watermark will never be requested again.
        let state = &mut self.nodes[origin.0 as usize];
        state.sent_upto[origin.0 as usize] = state.log.head();
        if let Some(min) = state.sent_upto.iter().min().copied() {
            state.log.truncate_until(min);
        }
    }

    fn reconnect(&mut self, node: NodeId) {
        let inbound = self.network.reconnect(node);
        for msg in inbound {
            self.queue
                .schedule_after(SimDuration::ZERO, Ev::Deliver { to: node, msg });
        }
        self.propagate(node);
    }

    fn start_replica_txn(&mut self, to: NodeId, msg: ReplicaMsg) {
        {
            let state = &mut self.nodes[to.0 as usize];
            if state.active_replicas >= MAX_CONCURRENT_REPLICA_TXNS {
                state.backlog.push_back(msg);
                return;
            }
            state.active_replicas += 1;
        }
        let id = self.fresh_txn();
        self.replicas.insert(
            id,
            ReplicaTxn {
                node: to,
                msg,
                next: 0,
                conflicted: false,
            },
        );
        self.tracer
            .emit(|| Event::new(self.queue.now(), to, id, EventKind::TxnBegin));
        self.try_replica_step(id);
    }

    fn try_replica_step(&mut self, id: TxnId) {
        let txn = &self.replicas[&id];
        if txn.next >= txn.msg.updates.len() {
            self.commit_replica(id);
            return;
        }
        let (node, obj) = (txn.node, txn.msg.updates[txn.next].object);
        match self.nodes[node.0 as usize].locks.acquire(id, obj) {
            Acquire::Granted => {
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::ReplicaStep(id));
            }
            Acquire::Waiting => {
                if self.measuring() {
                    self.metrics.waits.incr();
                }
                self.emit_lock_wait(node, id, obj);
            }
            Acquire::Deadlock => {
                // Replica updates are resubmitted on deadlock (§5) —
                // back off one action time and retry from scratch.
                if self.measuring() {
                    self.metrics.deadlocks.incr();
                }
                self.emit_deadlock(node, id, AbortReason::Deadlock);
                let txn = self.replicas.remove(&id).expect("replica vanished");
                self.release_replica_slot(node);
                let granted = self.nodes[node.0 as usize].locks.release_all(id);
                self.resume_waiters(node, granted);
                // Randomized backoff: a deterministic delay would let
                // two retrying transactions re-collide in lockstep
                // forever.
                let backoff = self
                    .cfg
                    .action_time
                    .saturating_mul(1 + self.retry_rng.gen_range(8));
                self.queue.schedule_after(
                    backoff,
                    Ev::ReplicaRetry {
                        to: txn.node,
                        msg: txn.msg,
                    },
                );
                self.drain_backlog(node);
            }
        }
    }

    fn on_replica_step(&mut self, id: TxnId) {
        let txn = self
            .replicas
            .get_mut(&id)
            .expect("replica step for dead txn");
        let node = txn.node;
        let u = txn.msg.updates[txn.next].clone();
        txn.next += 1;
        let state = &mut self.nodes[node.0 as usize];
        state.clock.observe(u.new_ts);
        let outcome = match self.resolution {
            ResolutionMode::TimePriority => state
                .store
                .apply_versioned(u.object, u.old_ts, u.new_ts, u.value),
            ResolutionMode::Manual => {
                // Detect with the Figure 4 test but do not resolve: a
                // dangerous update is simply rejected, and this replica
                // silently keeps its own lineage (system delusion).
                let current = state.store.get(u.object).ts;
                if current == u.old_ts {
                    state.store.set(u.object, u.value, u.new_ts);
                    ApplyOutcome::Applied
                } else if current == u.new_ts {
                    ApplyOutcome::Duplicate
                } else {
                    ApplyOutcome::ConflictIgnored
                }
            }
        };
        match outcome {
            ApplyOutcome::Applied => {}
            ApplyOutcome::Duplicate => {
                if self.queue.now() >= self.measure_from {
                    self.metrics.stale_updates.incr();
                }
                self.tracer
                    .emit(|| Event::new(self.queue.now(), node, id, EventKind::StaleSkip));
            }
            ApplyOutcome::ConflictApplied | ApplyOutcome::ConflictIgnored => {
                // Dangerous update (the paper's Figure 4 test failed);
                // count the reconciliation.
                self.tracer.emit(|| {
                    Event::new(
                        self.queue.now(),
                        node,
                        id,
                        EventKind::DangerousUpdate { object: u.object },
                    )
                });
                self.replicas.get_mut(&id).expect("replica txn").conflicted = true;
            }
        }
        self.try_replica_step(id);
    }

    fn commit_replica(&mut self, id: TxnId) {
        let txn = self.replicas.remove(&id).expect("unknown replica commit");
        if self.queue.now() >= self.measure_from {
            self.metrics.replica_commits.incr();
            if txn.conflicted {
                self.metrics.reconciliations.incr();
            }
        }
        self.tracer
            .emit(|| Event::new(self.queue.now(), txn.node, id, EventKind::ReplicaApply));
        if txn.conflicted {
            self.tracer
                .emit(|| Event::new(self.queue.now(), txn.node, id, EventKind::Reconcile));
        }
        self.release_replica_slot(txn.node);
        let granted = self.nodes[txn.node.0 as usize].locks.release_all(id);
        self.resume_waiters(txn.node, granted);
        self.drain_backlog(txn.node);
    }

    /// Free an apply slot at `node`.
    fn release_replica_slot(&mut self, node: NodeId) {
        let state = &mut self.nodes[node.0 as usize];
        debug_assert!(state.active_replicas > 0, "slot underflow at {node}");
        state.active_replicas = state.active_replicas.saturating_sub(1);
    }

    /// Start the next backlogged replica transaction at `node`, if any
    /// slot is free.
    fn drain_backlog(&mut self, node: NodeId) {
        while self.nodes[node.0 as usize].active_replicas < MAX_CONCURRENT_REPLICA_TXNS {
            let Some(msg) = self.nodes[node.0 as usize].backlog.pop_front() else {
                return;
            };
            self.start_replica_txn(node, msg);
        }
    }

    /// Resume transactions whose lock was just granted at `node`.
    fn resume_waiters(&mut self, _node: NodeId, granted: Vec<(TxnId, ObjectId)>) {
        for (waiter, _obj) in granted {
            if self.roots.contains_key(&waiter) {
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::RootStep(waiter));
            } else if self.replicas.contains_key(&waiter) {
                self.queue
                    .schedule_after(self.cfg.action_time, Ev::ReplicaStep(waiter));
            }
        }
    }

    /// The configuration of this run.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The mobility mode of this run.
    pub fn mobility(&self) -> &Mobility {
        &self.mobility
    }

    /// Override the network latency model after construction (ablation
    /// studies; must be called before [`LazyGroupSim::run`]).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.network = Network::new(self.cfg.nodes as usize, latency, self.cfg.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_model::Params;

    fn cfg(nodes: f64, db: f64, tps: f64, horizon: u64, seed: u64) -> SimConfig {
        let p = Params::new(db, nodes, tps, 4.0, 0.01);
        SimConfig::from_params(&p, horizon, seed)
    }

    #[test]
    fn connected_replicas_converge() {
        let c = cfg(4.0, 500.0, 10.0, 60, 1);
        let (report, stores) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        assert!(report.committed > 0);
        let d0 = stores[0].digest();
        for s in &stores[1..] {
            assert_eq!(s.digest(), d0, "replicas diverged");
        }
    }

    #[test]
    fn contention_generates_reconciliations() {
        // Small database, several nodes: racing updates must appear.
        // (DB kept large enough that the per-node replica-transaction
        // load stays below lock saturation.)
        let c = cfg(8.0, 500.0, 20.0, 60, 2);
        let (report, stores) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        assert!(
            report.reconciliations > 0,
            "expected dangerous updates under contention"
        );
        // Reconciliation resolution still converges.
        let d0 = stores[0].digest();
        assert!(stores.iter().all(|s| s.digest() == d0));
    }

    #[test]
    fn replica_commit_fanout() {
        // Every committed root produces N-1 replica transactions.
        let c = cfg(3.0, 10_000.0, 5.0, 30, 3);
        let (report, _) = LazyGroupSim::new(c, Mobility::Connected).run_with_state();
        // Allow slack for in-flight work at the horizon.
        let expected = report.committed * 2;
        let got = report.replica_commits;
        assert!(
            got as f64 > expected as f64 * 0.8 && got as f64 <= expected as f64 * 1.2 + 20.0,
            "committed={} replica_commits={got}",
            report.committed
        );
    }

    #[test]
    fn mobile_cycling_converges_after_drain() {
        let c = cfg(4.0, 300.0, 5.0, 120, 4);
        let mobility = Mobility::Cycling {
            connected: SimDuration::from_secs(20),
            disconnected: SimDuration::from_secs(10),
        };
        let (report, stores) = LazyGroupSim::new(c, mobility).run_with_state();
        assert!(report.committed > 0);
        let d0 = stores[0].digest();
        for (i, s) in stores.iter().enumerate() {
            assert_eq!(s.digest(), d0, "node {i} diverged after drain");
        }
    }

    #[test]
    fn disconnection_increases_reconciliation() {
        let base = cfg(6.0, 200.0, 10.0, 120, 5);
        let (connected, _) = LazyGroupSim::new(base, Mobility::Connected).run_with_state();
        let mobility = Mobility::Cycling {
            connected: SimDuration::from_secs(10),
            disconnected: SimDuration::from_secs(30),
        };
        let (mobile, _) = LazyGroupSim::new(base, mobility).run_with_state();
        assert!(
            mobile.reconciliations > connected.reconciliations,
            "disconnection should raise reconciliations: {} vs {}",
            mobile.reconciliations,
            connected.reconciliations
        );
    }

    #[test]
    fn deterministic_runs() {
        let c = cfg(4.0, 200.0, 10.0, 30, 9);
        let a = LazyGroupSim::new(c, Mobility::Connected).run();
        let b = LazyGroupSim::new(c, Mobility::Connected).run();
        assert_eq!(a, b);
    }
}
