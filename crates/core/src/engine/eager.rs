//! Eager replication engines — §3 of the paper.
//!
//! Eager replication "updates all replicas when a transaction updates
//! any instance of the object", inside the original transaction. In the
//! model, locking one object is one logical lock no matter how many
//! replicas exist, but the *work* of an action is multiplied by the
//! replica count (serial replica updates, the paper's primary model).
//! These engines are thin parameterizations of the shared
//! [`ContentionSim`]; ownership (group vs. master) changes the message
//! pattern but not the contention behaviour — exactly the simplification
//! equation (12) makes ("it does not distinguish between Master and
//! Group").

use crate::config::SimConfig;
use crate::engine::contention::{ContentionProfile, ContentionSim};
use crate::metrics::Report;

/// Replica-update execution discipline (the paper's footnote 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaDiscipline {
    /// Replica updates applied one after another inside the
    /// transaction: duration grows by `Nodes` — the paper's main model
    /// and the source of the cubic deadlock growth.
    #[default]
    Serial,
    /// Replica updates broadcast and applied in parallel: duration
    /// stays flat, deadlock growth drops to quadratic (ablation).
    Parallel,
}

/// Ownership regime — changes message accounting only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ownership {
    /// Update anywhere: the originating node broadcasts each update to
    /// every other replica.
    #[default]
    Group,
    /// Each object has a master: the originator sends the update to the
    /// owner, which forwards it to the remaining replicas (one extra
    /// hop per action).
    Master,
}

/// Eager replication simulator.
#[derive(Debug)]
pub struct EagerSim {
    inner: ContentionSim,
}

impl EagerSim {
    /// Build an eager run.
    pub fn new(cfg: SimConfig, discipline: ReplicaDiscipline, ownership: Ownership) -> Self {
        let mut profile = match discipline {
            ReplicaDiscipline::Serial => ContentionProfile::eager_serial(&cfg),
            ReplicaDiscipline::Parallel => ContentionProfile::eager_parallel(&cfg),
        };
        if ownership == Ownership::Master && cfg.effective_rf() > 1 {
            // Originator → owner, then owner → the other replicas of
            // the shard (one of which is the originator's own copy
            // refresh). Full replication: exactly the paper's N.
            profile.messages_per_action = u64::from(cfg.effective_rf());
        }
        EagerSim {
            inner: ContentionSim::new(cfg, profile).with_run_label("eager"),
        }
    }

    /// Attach a fault plan perturbing the cross-shard commit protocol
    /// (see [`ContentionSim::with_faults`]).
    #[must_use]
    pub fn with_faults(mut self, plan: repl_net::FaultPlan) -> Self {
        self.inner = self.inner.with_faults(plan);
        self
    }

    /// Attach a tracer (see [`ContentionSim::with_tracer`]).
    pub fn with_tracer(mut self, tracer: repl_telemetry::TraceHandle) -> Self {
        self.inner = self.inner.with_tracer(tracer);
        self
    }

    /// Attach a wall-clock profiler.
    pub fn with_profiler(mut self, profiler: repl_telemetry::Profiler) -> Self {
        self.inner = self.inner.with_profiler(profiler);
        self
    }

    /// Label this run's trace.
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.inner = self.inner.with_run_label(label);
        self
    }

    /// Attach a correctness recorder (see
    /// [`ContentionSim::with_recorder`]).
    pub fn with_recorder(mut self, recorder: repl_check::Recorder) -> Self {
        self.inner = self.inner.with_recorder(recorder);
        self
    }

    /// Run to the horizon.
    pub fn run(self) -> Report {
        self.inner.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_model::Params;

    fn cfg(nodes: f64, db: f64, tps: f64, horizon: u64, seed: u64) -> SimConfig {
        let p = Params::new(db, nodes, tps, 4.0, 0.01);
        SimConfig::from_params(&p, horizon, seed)
    }

    #[test]
    fn serial_latency_scales_with_nodes() {
        let r1 = EagerSim::new(
            cfg(1.0, 1_000_000.0, 2.0, 100, 1),
            ReplicaDiscipline::Serial,
            Ownership::Group,
        )
        .run();
        let r4 = EagerSim::new(
            cfg(4.0, 1_000_000.0, 2.0, 100, 1),
            ReplicaDiscipline::Serial,
            Ownership::Group,
        )
        .run();
        // Uncontended latency: Actions × Action_Time × Nodes.
        assert!(
            (r1.mean_latency_secs - 0.04).abs() < 0.01,
            "{}",
            r1.mean_latency_secs
        );
        assert!(
            (r4.mean_latency_secs - 0.16).abs() < 0.02,
            "{}",
            r4.mean_latency_secs
        );
    }

    #[test]
    fn parallel_latency_flat_in_nodes() {
        let r4 = EagerSim::new(
            cfg(4.0, 1_000_000.0, 2.0, 100, 2),
            ReplicaDiscipline::Parallel,
            Ownership::Group,
        )
        .run();
        assert!(
            (r4.mean_latency_secs - 0.04).abs() < 0.01,
            "{}",
            r4.mean_latency_secs
        );
    }

    #[test]
    fn serial_deadlocks_exceed_parallel() {
        let c = cfg(6.0, 400.0, 10.0, 120, 3);
        let serial = EagerSim::new(c, ReplicaDiscipline::Serial, Ownership::Group).run();
        let parallel = EagerSim::new(c, ReplicaDiscipline::Parallel, Ownership::Group).run();
        assert!(
            serial.deadlocks > parallel.deadlocks,
            "serial {} vs parallel {}",
            serial.deadlocks,
            parallel.deadlocks
        );
    }

    #[test]
    fn master_sends_more_messages_than_group() {
        let c = cfg(4.0, 100_000.0, 5.0, 60, 4);
        let group = EagerSim::new(c, ReplicaDiscipline::Serial, Ownership::Group).run();
        let master = EagerSim::new(c, ReplicaDiscipline::Serial, Ownership::Master).run();
        assert!(master.messages > group.messages);
    }

    #[test]
    fn single_node_master_equals_group() {
        let c = cfg(1.0, 10_000.0, 10.0, 30, 5);
        let group = EagerSim::new(c, ReplicaDiscipline::Serial, Ownership::Group).run();
        let master = EagerSim::new(c, ReplicaDiscipline::Serial, Ownership::Master).run();
        assert_eq!(group, master);
    }
}
