//! Atomic cross-shard commit: the coordinator state machine for the
//! eager family's two-phase commit, plus the protocol/crash-point
//! vocabulary shared by the config, the engines and the fuzzer.
//!
//! The paper's eager replication serializes every replica update inside
//! the owning transaction; once the keyspace is sharded (PR 8) a
//! transaction may span owners, and "inside the transaction" needs a
//! real atomic commit. This module holds the *pure* coordinator — a
//! presumed-abort state machine with no clock, no network and no I/O —
//! so it can be property-tested in isolation; the engines drive it over
//! the simulated [`Network`](repl_net::Network).
//!
//! Presumed abort: a coordinator that has no durable decision record
//! for a transaction answers "abort". Only the commit decision is
//! force-logged; aborts cost nothing durable.

use repl_storage::NodeId;

/// Which cross-shard commit protocol the eager family runs
/// (`--commit-proto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitProto {
    /// PR 8's baseline: owner-ordered lock acquisition, no atomic
    /// commit protocol. Correct on a perfect fabric, loses atomicity
    /// under crashes (which is exactly what the oracle must catch).
    #[default]
    OwnerOrder,
    /// Classic presumed-abort two-phase commit: explicit
    /// Prepare/Vote/Decision/Ack rounds per remote participant.
    TwoPc,
    /// The paper-adjacent O2PL variant: the prepare is piggybacked on
    /// the last lock grant a participant serves, so the voting round
    /// costs no extra messages — only Decision/Ack go on the wire.
    O2pl,
}

impl CommitProto {
    /// Every protocol, in sweep order.
    pub const ALL: [CommitProto; 3] = [
        CommitProto::OwnerOrder,
        CommitProto::TwoPc,
        CommitProto::O2pl,
    ];

    /// Stable CLI/fuzz-corpus name.
    pub fn name(self) -> &'static str {
        match self {
            CommitProto::OwnerOrder => "owner-order",
            CommitProto::TwoPc => "2pc",
            CommitProto::O2pl => "o2pl",
        }
    }

    /// Parse a `name()` back (the `--commit-proto` argument).
    pub fn parse(s: &str) -> Option<CommitProto> {
        CommitProto::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// The outcome of a two-phase commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Unanimous yes-votes: every participant applies.
    Commit,
    /// At least one no-vote, timeout, or crash: every participant
    /// discards.
    Abort,
}

/// Coordinator lifecycle: `Init → Preparing → Decided → Done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordState {
    /// Created, prepares not yet sent.
    Init,
    /// Prepares out, collecting votes.
    Preparing,
    /// Decision reached (durably logged by the driver before acting on
    /// it); decisions are being distributed.
    Decided(Decision),
    /// Every participant acknowledged the decision.
    Done,
}

/// The pure presumed-abort coordinator state machine for one
/// transaction. Drives no I/O itself: the engine logs, sends and
/// schedules around it, which is what keeps it property-testable.
#[derive(Debug, Clone)]
pub struct Coordinator {
    state: CoordState,
    participants: Vec<NodeId>,
    yes: Vec<bool>,
    acked: Vec<bool>,
    done_decision: Option<Decision>,
}

impl Coordinator {
    /// A coordinator for `participants` (the distinct remote owners;
    /// the coordinator's own shard votes implicitly). `participants`
    /// must be non-empty — single-owner transactions never build one.
    pub fn new(participants: Vec<NodeId>) -> Self {
        debug_assert!(!participants.is_empty());
        let n = participants.len();
        Coordinator {
            state: CoordState::Init,
            participants,
            yes: vec![false; n],
            acked: vec![false; n],
            done_decision: None,
        }
    }

    /// Rebuild a coordinator from a durable decision record during
    /// crash recovery: the machine starts `Decided` with no acks, so
    /// the driver re-distributes the decision and collects acks as if
    /// the crash never happened (participants absorb duplicates).
    pub fn recovered(participants: Vec<NodeId>, decision: Decision) -> Self {
        debug_assert!(!participants.is_empty());
        let n = participants.len();
        Coordinator {
            state: CoordState::Decided(decision),
            yes: vec![decision == Decision::Commit; n],
            acked: vec![false; n],
            participants,
            done_decision: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> CoordState {
        self.state
    }

    /// The decision, if one has been reached.
    pub fn decision(&self) -> Option<Decision> {
        match self.state {
            CoordState::Decided(d) => Some(d),
            // Done is only reachable through Decided(Commit) acks or an
            // abort that needs no acks; by then the decision is Commit
            // unless `abort()`/`timeout()` moved us straight to Done.
            CoordState::Done => self.done_decision,
            _ => None,
        }
    }

    /// The participant set.
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// Move `Init → Preparing` (the driver sends the Prepare round).
    /// Idempotent after the first call.
    pub fn begin(&mut self) {
        if self.state == CoordState::Init {
            self.state = CoordState::Preparing;
        }
    }

    /// Record one participant's vote. Returns the decision the moment
    /// it becomes final: `Abort` on the first no, `Commit` once every
    /// participant voted yes. Votes after a decision (duplicates,
    /// stragglers) are ignored — the machine never un-decides.
    pub fn vote(&mut self, from: NodeId, yes: bool) -> Option<Decision> {
        if self.state != CoordState::Preparing {
            return None;
        }
        let i = self.participants.iter().position(|p| *p == from)?;
        if !yes {
            self.state = CoordState::Decided(Decision::Abort);
            return Some(Decision::Abort);
        }
        self.yes[i] = true;
        if self.yes.iter().all(|v| *v) {
            self.state = CoordState::Decided(Decision::Commit);
            return Some(Decision::Commit);
        }
        None
    }

    /// Prepare-phase timeout (or coordinator recovery with no durable
    /// decision): presume abort. Returns `Abort` exactly when this call
    /// decided; no-op once decided.
    pub fn timeout(&mut self) -> Option<Decision> {
        match self.state {
            CoordState::Init | CoordState::Preparing => {
                self.state = CoordState::Decided(Decision::Abort);
                Some(Decision::Abort)
            }
            _ => None,
        }
    }

    /// Record one participant's decision acknowledgement. Returns true
    /// when every participant has acked (the driver forgets the
    /// transaction: `Decided → Done`). Duplicate acks are absorbed.
    pub fn ack(&mut self, from: NodeId) -> bool {
        let CoordState::Decided(d) = self.state else {
            return self.state == CoordState::Done;
        };
        if let Some(i) = self.participants.iter().position(|p| *p == from) {
            self.acked[i] = true;
        }
        if self.acked.iter().all(|v| *v) {
            self.done_decision = Some(d);
            self.state = CoordState::Done;
            return true;
        }
        false
    }

    /// Participants whose vote is still outstanding (retransmit target
    /// for the Prepare round).
    pub fn unvoted(&self) -> Vec<NodeId> {
        self.participants
            .iter()
            .zip(&self.yes)
            .filter(|(_, v)| !**v)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Participants whose decision ack is still outstanding
    /// (retransmit target for the Decision round).
    pub fn unacked(&self) -> Vec<NodeId> {
        self.participants
            .iter()
            .zip(&self.acked)
            .filter(|(_, v)| !**v)
            .map(|(p, _)| *p)
            .collect()
    }
}

/// Where in the 2PC lifecycle an injected crash fires (the fuzz
/// campaign's crash points — one per protocol state transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Coordinator dies before sending any Prepare.
    CoordPrePrepare,
    /// Coordinator dies right after the Prepare round is sent.
    CoordPostPrepare,
    /// Participant dies before force-logging its prepared record.
    PartPreVote,
    /// Participant dies after voting yes (now in doubt).
    PartPostVote,
    /// Coordinator dies after deciding but before logging the decision.
    CoordPreDecisionLog,
    /// Coordinator dies after logging, before distributing decisions.
    CoordPostDecisionLog,
}

impl CrashKind {
    /// Every crash point, in fuzz rotation order.
    pub const ALL: [CrashKind; 6] = [
        CrashKind::CoordPrePrepare,
        CrashKind::CoordPostPrepare,
        CrashKind::PartPreVote,
        CrashKind::PartPostVote,
        CrashKind::CoordPreDecisionLog,
        CrashKind::CoordPostDecisionLog,
    ];

    /// Stable fuzz-corpus name.
    pub fn name(self) -> &'static str {
        match self {
            CrashKind::CoordPrePrepare => "coord-pre-prepare",
            CrashKind::CoordPostPrepare => "coord-post-prepare",
            CrashKind::PartPreVote => "part-pre-vote",
            CrashKind::PartPostVote => "part-post-vote",
            CrashKind::CoordPreDecisionLog => "coord-pre-declog",
            CrashKind::CoordPostDecisionLog => "coord-post-declog",
        }
    }
}

/// A targeted crash-point injection: on the `nth` (0-based) time the
/// run reaches `kind`'s transition, crash that node for `down_secs`.
/// Rides `SimConfig` so the fuzzer can aim a crash at every protocol
/// edge without tuning wall-clock crash windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which transition to crash at.
    pub kind: CrashKind,
    /// Skip this many earlier occurrences first.
    pub nth: u32,
    /// How long the node stays down (seconds of sim time).
    pub down_secs: u64,
}

impl CrashPoint {
    /// Stable fuzz-corpus encoding: `kind:nth:down`.
    pub fn encode(&self) -> String {
        format!("{}:{}:{}", self.kind.name(), self.nth, self.down_secs)
    }

    /// Parse `encode()` output.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        let mut it = s.splitn(3, ':');
        let kind = it.next()?;
        let kind = CrashKind::ALL.into_iter().find(|k| k.name() == kind)?;
        let nth = it.next()?.parse().ok()?;
        let down_secs = it.next()?.parse().ok()?;
        Some(CrashPoint {
            kind,
            nth,
            down_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn unanimous_yes_commits() {
        let mut c = Coordinator::new(nodes(&[1, 2, 3]));
        c.begin();
        assert_eq!(c.vote(NodeId(1), true), None);
        assert_eq!(c.vote(NodeId(3), true), None);
        assert_eq!(c.vote(NodeId(2), true), Some(Decision::Commit));
        assert_eq!(c.state(), CoordState::Decided(Decision::Commit));
        assert!(!c.ack(NodeId(1)));
        assert!(!c.ack(NodeId(1))); // duplicate ack absorbed
        assert!(!c.ack(NodeId(2)));
        assert!(c.ack(NodeId(3)));
        assert_eq!(c.state(), CoordState::Done);
        assert_eq!(c.decision(), Some(Decision::Commit));
    }

    #[test]
    fn single_no_vote_aborts_immediately() {
        let mut c = Coordinator::new(nodes(&[1, 2]));
        c.begin();
        assert_eq!(c.vote(NodeId(2), false), Some(Decision::Abort));
        // A late yes cannot resurrect the transaction.
        assert_eq!(c.vote(NodeId(1), true), None);
        assert_eq!(c.decision(), Some(Decision::Abort));
    }

    #[test]
    fn timeout_presumes_abort_only_before_decision() {
        let mut c = Coordinator::new(nodes(&[1]));
        c.begin();
        assert_eq!(c.timeout(), Some(Decision::Abort));
        assert_eq!(c.timeout(), None);

        let mut c = Coordinator::new(nodes(&[1]));
        c.begin();
        assert_eq!(c.vote(NodeId(1), true), Some(Decision::Commit));
        assert_eq!(c.timeout(), None, "timeout after decision is a no-op");
        assert_eq!(c.decision(), Some(Decision::Commit));
    }

    #[test]
    fn votes_from_strangers_are_ignored() {
        let mut c = Coordinator::new(nodes(&[1, 2]));
        c.begin();
        assert_eq!(c.vote(NodeId(9), true), None);
        assert_eq!(c.vote(NodeId(9), false), None);
        assert_eq!(c.state(), CoordState::Preparing);
    }

    #[test]
    fn duplicate_votes_are_idempotent() {
        let mut c = Coordinator::new(nodes(&[1, 2]));
        c.begin();
        assert_eq!(c.vote(NodeId(1), true), None);
        assert_eq!(c.vote(NodeId(1), true), None);
        assert_eq!(c.vote(NodeId(2), true), Some(Decision::Commit));
    }

    #[test]
    fn recovered_coordinator_resends_and_collects_acks() {
        let mut c = Coordinator::recovered(nodes(&[1, 2]), Decision::Commit);
        assert_eq!(c.state(), CoordState::Decided(Decision::Commit));
        assert_eq!(c.decision(), Some(Decision::Commit));
        // Recovery never re-votes; it only re-distributes the decision.
        assert_eq!(c.vote(NodeId(1), false), None);
        assert!(!c.ack(NodeId(1)));
        assert!(c.ack(NodeId(2)));
        assert_eq!(c.state(), CoordState::Done);
        assert_eq!(c.decision(), Some(Decision::Commit));
    }

    #[test]
    fn proto_and_crash_point_round_trip() {
        for p in CommitProto::ALL {
            assert_eq!(CommitProto::parse(p.name()), Some(p));
        }
        assert_eq!(CommitProto::parse("3pc"), None);
        for k in CrashKind::ALL {
            let cp = CrashPoint {
                kind: k,
                nth: 2,
                down_secs: 7,
            };
            assert_eq!(CrashPoint::parse(&cp.encode()), Some(cp));
        }
        assert_eq!(CrashPoint::parse("coord-pre-prepare"), None);
        assert_eq!(CrashPoint::parse("nope:0:1"), None);
    }
}

#[cfg(test)]
mod props {
    //! Satellite 4: the coordinator in isolation, under arbitrary
    //! interleavings of votes, timeouts and duplicate/stranger input.
    use super::*;
    use proptest::prelude::*;

    /// One step of adversarial input to the machine.
    #[derive(Debug, Clone, Copy)]
    enum Step {
        Vote { node: u32, yes: bool },
        Timeout,
        Ack { node: u32 },
    }

    fn step_strategy(max_node: u32) -> impl Strategy<Value = Step> {
        prop_oneof![
            (0..max_node, 0u8..2).prop_map(|(node, yes)| Step::Vote {
                node,
                yes: yes == 1
            }),
            Just(Step::Timeout),
            (0..max_node).prop_map(|node| Step::Ack { node }),
        ]
    }

    proptest! {
        /// Safety: `Decided(Commit)` is unreachable without a yes vote
        /// from every participant, no matter the interleaving (crashes
        /// show up to the machine as timeouts — a recovering presumed-
        /// abort coordinator with no durable decision calls `timeout`).
        #[test]
        fn commit_requires_unanimous_yes(
            n_participants in 1usize..6,
            steps in proptest::collection::vec(step_strategy(8), 0..64),
        ) {
            let participants: Vec<NodeId> =
                (1..=n_participants as u32).map(NodeId).collect();
            let mut c = Coordinator::new(participants.clone());
            c.begin();
            let mut yes_votes = std::collections::HashSet::new();
            for s in &steps {
                match *s {
                    Step::Vote { node, yes } => {
                        let decided_before = c.decision().is_some();
                        c.vote(NodeId(node), yes);
                        if yes && !decided_before && participants.contains(&NodeId(node)) {
                            yes_votes.insert(node);
                        }
                    }
                    Step::Timeout => { c.timeout(); }
                    Step::Ack { node } => { c.ack(NodeId(node)); }
                }
                if c.decision() == Some(Decision::Commit) {
                    prop_assert_eq!(
                        yes_votes.len(), participants.len(),
                        "committed without unanimous yes"
                    );
                }
            }
        }

        /// Liveness: after any interleaving, one timeout call leaves the
        /// machine decided, and acks from every participant then drive
        /// it to `Done` — the coordinator always terminates.
        #[test]
        fn always_terminates(
            n_participants in 1usize..6,
            steps in proptest::collection::vec(step_strategy(8), 0..64),
        ) {
            let participants: Vec<NodeId> =
                (1..=n_participants as u32).map(NodeId).collect();
            let mut c = Coordinator::new(participants.clone());
            c.begin();
            for s in &steps {
                match *s {
                    Step::Vote { node, yes } => { c.vote(NodeId(node), yes); }
                    Step::Timeout => { c.timeout(); }
                    Step::Ack { node } => { c.ack(NodeId(node)); }
                }
            }
            c.timeout();
            prop_assert!(c.decision().is_some(), "undecided after timeout");
            for p in &participants {
                c.ack(*p);
            }
            prop_assert_eq!(c.state(), CoordState::Done);
        }

        /// Stability: once decided, no further input changes the
        /// decision.
        #[test]
        fn decisions_are_stable(
            n_participants in 1usize..6,
            prefix in proptest::collection::vec(step_strategy(8), 0..32),
            suffix in proptest::collection::vec(step_strategy(8), 0..32),
        ) {
            let participants: Vec<NodeId> =
                (1..=n_participants as u32).map(NodeId).collect();
            let mut c = Coordinator::new(participants);
            c.begin();
            for s in &prefix {
                match *s {
                    Step::Vote { node, yes } => { c.vote(NodeId(node), yes); }
                    Step::Timeout => { c.timeout(); }
                    Step::Ack { node } => { c.ack(NodeId(node)); }
                }
            }
            let Some(decided) = c.decision() else { return Ok(()); };
            for s in &suffix {
                match *s {
                    Step::Vote { node, yes } => { c.vote(NodeId(node), yes); }
                    Step::Timeout => { c.timeout(); }
                    Step::Ack { node } => { c.ack(NodeId(node)); }
                }
                prop_assert_eq!(c.decision(), Some(decided));
            }
        }
    }
}
