//! Two-tier replication — §7 of the paper, the proposed solution.
//!
//! * **Base nodes** are always connected and master (most) objects. All
//!   real updates happen in *base transactions* executed with locking
//!   against the master copies — a lazy-master discipline, so the base
//!   deadlock rate follows equation (19) and the master state is always
//!   the result of a serializable execution (no system delusion).
//! * **Mobile nodes** are disconnected much of the time. While
//!   disconnected they run *tentative transactions* against local
//!   tentative versions and log `(input parameters, tentative results)`.
//!   On reconnect they (1) discard tentative versions, (2) receive the
//!   deferred replica refreshes, (3) re-submit their tentative
//!   transactions in commit order; the host base node re-executes each
//!   as a base transaction and judges it with its **acceptance
//!   criterion** — failures are the two-tier analogue of
//!   reconciliation, and they are *zero when transactions commute*.

use crate::config::SimConfig;
use crate::metrics::{Metrics, Report, M_PROPAGATION_LAG, M_RECONCILIATION_DELAY, M_RETRIES};
use crate::op::{Op, Operation};
use crate::serializability::{History, TxnRecord};
use crate::txn::{Criterion, TxnSpec};
use repl_check::{CriterionKind, Recorder};
use repl_net::{DisconnectSchedule, Network, PeriodModel, SendOutcome};
use repl_sim::{EventQueue, SimDuration, SimRng, SimTime};
use repl_storage::{
    Acquire, ApplyOutcome, LamportClock, LockManager, NodeId, ObjectId, ObjectStore, ShardMap,
    TentativeStore, Timestamp, TxnId, TxnSlab, Value,
};
use repl_telemetry::{Event, EventKind, Gauge, Profiler, TraceHandle};
use std::collections::VecDeque;

/// Transaction-design regimes for the two-tier workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoTierWorkload {
    /// `Add`/`Debit` transformations judged with
    /// [`Criterion::ExactMatch`]: the base re-execution must reproduce
    /// the tentative outputs exactly, so *any* concurrent update to a
    /// touched object rejects the transaction — the test the paper
    /// calls "probably too pessimistic".
    ExactMatch {
        /// Largest single credit/debit amount.
        max_amount: i64,
    },
    /// Commutative `Add`/`Debit` transformations judged with
    /// [`Criterion::NonNegative`] — the paper's design guidance
    /// ("tentative transactions are designed to commute"): the base
    /// result may differ from the tentative one, it only has to keep
    /// the balance non-negative.
    Commutative {
        /// Largest single credit/debit amount.
        max_amount: i64,
    },
}

/// Configuration of a two-tier run.
#[derive(Debug, Clone, Copy)]
pub struct TwoTierConfig {
    /// Shared simulation parameters. `cfg.nodes` is the **total** node
    /// count; the first `base_nodes` are base, the rest mobile.
    pub sim: SimConfig,
    /// How many of the nodes are always-connected base nodes (≥ 1).
    pub base_nodes: u32,
    /// Objects mastered at each mobile node (the scope rule's
    /// mobile-mastered items). The remaining objects are base-mastered.
    pub mobile_owned: u64,
    /// Mean connected stretch for mobile nodes.
    pub connected: SimDuration,
    /// Mean disconnected stretch for mobile nodes.
    pub disconnected: SimDuration,
    /// Transaction design regime.
    pub workload: TwoTierWorkload,
    /// Initial integer value of every object (account opening balance).
    pub initial_value: i64,
}

impl TwoTierConfig {
    /// Number of mobile nodes.
    pub fn mobile_nodes(&self) -> u32 {
        self.sim.nodes - self.base_nodes
    }

    /// Number of base-mastered objects.
    pub fn base_owned(&self) -> u64 {
        self.sim
            .db_size
            .saturating_sub(self.mobile_owned * u64::from(self.mobile_nodes()))
    }
}

/// A shared refresh payload: the committed update list one base
/// commit fans out, reference-counted across every recipient. The
/// engine is single-threaded — `Rc` is deliberate.
type RefreshPayload = std::rc::Rc<[(ObjectId, Value, Timestamp)]>;

/// Replica refresh message: committed master updates streamed to
/// replicas (standard lazy-master propagation).
///
/// `updates` is shared: one commit fans out to every replica, so the
/// payload is reference-counted — `msg.clone()` in the broadcast loop
/// bumps a refcount instead of deep-copying the update list.
#[derive(Debug, Clone)]
struct RefreshMsg {
    updates: RefreshPayload,
    /// When the base broadcast this refresh. Held and duplicated copies
    /// keep the original stamp, so apply-time lag includes the time a
    /// mobile spent disconnected — the staleness the paper's two-tier
    /// replicas actually see.
    sent_at: SimTime,
}

/// A tentative transaction awaiting base re-execution.
#[derive(Debug, Clone)]
struct Pending {
    spec: TxnSpec,
    tentative_results: Vec<(ObjectId, Value)>,
    /// When the mobile committed this tentatively — the start of the
    /// reconciliation-delay window closed by the base verdict.
    committed_at: SimTime,
}

/// A base transaction in flight.
#[derive(Debug)]
struct BaseTxn {
    /// The node the work originated at (stamps trace events): the
    /// arrival node for direct executions, the mobile for tentative
    /// re-executions.
    origin: NodeId,
    spec: TxnSpec,
    /// `Some` when this is the re-execution of a tentative transaction.
    tentative_results: Option<Vec<(ObjectId, Value)>>,
    /// When the tentative original committed at the mobile (`Some` iff
    /// `tentative_results` is).
    tentative_at: Option<SimTime>,
    next: usize,
    buffered: Vec<(ObjectId, Value)>,
    /// `(object, master version observed)` per first access — feeds
    /// the serializability checker.
    reads: Vec<(ObjectId, Timestamp)>,
    started: SimTime,
    /// When this transaction last blocked on a master lock (cleared on
    /// grant; feeds the lock-wait distribution).
    wait_started: Option<SimTime>,
    /// When part of a reconnect sync session, the mobile whose queue
    /// should supply the next transaction after this one finishes.
    session: Option<NodeId>,
}

#[derive(Debug)]
enum Ev {
    Arrive(NodeId),
    BaseStep(TxnId),
    BaseRetry(TxnId),
    Deliver {
        to: NodeId,
        msg: RefreshMsg,
    },
    /// A coalesced chunk of refreshes for one destination
    /// (`propagation_batch` > 1). Applied per message on delivery, so
    /// counters and traces match the unbatched schedule exactly.
    DeliverBatch {
        to: NodeId,
        msgs: Vec<RefreshMsg>,
    },
    Connectivity {
        node: NodeId,
        connected: bool,
    },
}

/// The two-tier simulator.
pub struct TwoTierSim {
    cfg: TwoTierConfig,
    queue: EventQueue<Ev>,
    /// The base system state: union of all master copies.
    master: ObjectStore,
    master_locks: LockManager,
    master_clock: LamportClock,
    /// Per-node replicas; mobile nodes use the tentative overlay.
    replicas: Vec<TentativeStore>,
    /// Per-mobile queue of tentative transactions not yet re-executed.
    pending: Vec<VecDeque<Pending>>,
    /// Active reconnect sync sessions (mobile → remaining queue drains
    /// through one base transaction at a time).
    in_session: Vec<bool>,
    /// In-flight base transactions in a generational slab: every event
    /// dispatch indexes a dense slot instead of hashing a `TxnId`.
    base_txns: TxnSlab<BaseTxn>,
    network: Network<RefreshMsg>,
    arrival_rngs: Vec<SimRng>,
    object_rng: SimRng,
    value_rng: SimRng,
    retry_rng: SimRng,
    clocks: Vec<LamportClock>,
    metrics: Metrics,
    measure_from: SimTime,
    /// Per-node refresh staleness (apply-time lag) gauges, folded into
    /// the report's named distributions after the measured window.
    staleness: Vec<Gauge>,
    tracer: TraceHandle,
    profiler: Profiler,
    run_label: String,
    /// Recycled buffer for lock-release promotions (commit/abort path).
    granted_scratch: Vec<(TxnId, ObjectId)>,
    /// Recycled chunk buffer for batched refresh fan-out.
    refresh_scratch: Vec<RefreshMsg>,
    /// Sharded refresh memo, one slot per master fan-out signature
    /// group: the refresh payload filtered for that group, shared
    /// (refcounted) by every group member. Reset per
    /// [`TwoTierSim::broadcast_refresh`] call.
    refresh_memo: Vec<Option<RefreshPayload>>,
    /// Scratch for the workload sampler's distinct-object draw.
    sample_scratch: Vec<u64>,
    /// Committed base transactions' read/write footprints — §7 property
    /// 2 ("base transactions execute with single-copy serializability")
    /// is *verified*, not assumed: see [`TwoTierSim::run_full`].
    history: History,
    /// Optional oracle recorder mirroring commits, acceptance
    /// decisions, refresh applies, and final stores.
    recorder: Recorder,
    /// `Some` when the run uses a partial shard layout: replica stores
    /// hold only hosted objects, refresh fan-out filters per
    /// destination, and nodes sample their hosted subset. The master
    /// tier stays full — the base masters every object. `None` keeps
    /// every code path bit-identical to the unsharded run.
    shard: Option<ShardMap>,
    /// Per-node hosted-object counts (empty unless sharded).
    hosted_counts: Vec<u64>,
}

/// Map the engine's acceptance criterion onto the oracle layer's
/// independent re-implementation of the same rule.
fn criterion_kind(c: &Criterion) -> CriterionKind {
    match c {
        Criterion::AlwaysAccept => CriterionKind::AlwaysAccept,
        Criterion::NonNegative => CriterionKind::NonNegative,
        Criterion::AtMost(b) => CriterionKind::AtMost(*b),
        Criterion::ExactMatch => CriterionKind::ExactMatch,
    }
}

impl TwoTierSim {
    /// Build a two-tier run.
    ///
    /// # Panics
    /// If `base_nodes` is zero or exceeds the total node count, or the
    /// mobile-owned slices do not fit in the database.
    pub fn new(cfg: TwoTierConfig) -> Self {
        assert!(cfg.base_nodes >= 1, "two-tier needs at least one base node");
        assert!(
            cfg.base_nodes <= cfg.sim.nodes,
            "base_nodes exceeds total nodes"
        );
        assert!(
            cfg.mobile_owned * u64::from(cfg.mobile_nodes()) < cfg.sim.db_size,
            "mobile-owned slices must leave base-mastered objects"
        );
        let sim = cfg.sim;
        let n = sim.nodes as usize;
        let mut queue = EventQueue::new();
        // Step events — one fixed service time apart — dominate the
        // event traffic; give them the queue's O(1) FIFO lane.
        queue.set_fifo_lane(sim.action_time);
        let mut arrival_rngs = Vec::with_capacity(n);
        for node in 0..sim.nodes {
            let mut rng = SimRng::stream_node(sim.seed, "tt-arrivals-", u64::from(node));
            let first = SimDuration::from_secs_f64(rng.exp(1.0 / sim.tps));
            queue.schedule_at(SimTime::ZERO + first, Ev::Arrive(NodeId(node)));
            arrival_rngs.push(rng);
        }
        // Mobile disconnect schedules (staggered exponential periods).
        for node in cfg.base_nodes..sim.nodes {
            let mut sched = DisconnectSchedule::new(
                NodeId(node),
                cfg.connected,
                cfg.disconnected,
                PeriodModel::Exponential,
                sim.seed,
            );
            for ev in sched.events_until(sim.horizon) {
                queue.schedule_at(
                    ev.at,
                    Ev::Connectivity {
                        node: ev.node,
                        connected: ev.connected,
                    },
                );
            }
        }
        let mut master = ObjectStore::new(sim.db_size);
        for i in 0..sim.db_size {
            master.set(ObjectId(i), Value::Int(cfg.initial_value), Timestamp::ZERO);
        }
        let shard = sim.shard_map();
        let hosted_counts: Vec<u64> = match &shard {
            Some(map) => (0..sim.nodes)
                .map(|i| map.hosted_objects(NodeId(i), sim.db_size))
                .collect(),
            None => Vec::new(),
        };
        let replicas = (0..n)
            .map(|node| {
                let mut t = match &shard {
                    Some(map) => TentativeStore::from_master(ObjectStore::sharded(
                        sim.db_size,
                        map,
                        NodeId(node as u32),
                    )),
                    None => TentativeStore::new(sim.db_size),
                };
                for i in 0..sim.db_size {
                    if t.master().hosts(ObjectId(i)) {
                        t.master_mut().set(
                            ObjectId(i),
                            Value::Int(cfg.initial_value),
                            Timestamp::ZERO,
                        );
                    }
                }
                t
            })
            .collect();
        TwoTierSim {
            queue,
            master,
            master_locks: {
                let mut lm = LockManager::new();
                lm.reserve_objects(sim.db_size as usize);
                lm
            },
            master_clock: LamportClock::new(NodeId(u32::MAX)),
            replicas,
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            in_session: vec![false; n],
            base_txns: TxnSlab::new(0),
            network: Network::new(n, sim.latency, sim.seed),
            arrival_rngs,
            object_rng: SimRng::stream(sim.seed, "tt-objects"),
            value_rng: SimRng::stream(sim.seed, "tt-values"),
            retry_rng: SimRng::stream(sim.seed, "tt-retry"),
            clocks: (0..n)
                .map(|i| LamportClock::new(NodeId(i as u32)))
                .collect(),
            metrics: Metrics {
                lean: sim.lean_metrics,
                ..Metrics::new()
            },
            measure_from: sim.warmup,
            staleness: vec![Gauge::default(); n],
            tracer: TraceHandle::off(),
            profiler: Profiler::off(),
            run_label: "two-tier".to_owned(),
            granted_scratch: Vec::new(),
            refresh_scratch: Vec::new(),
            refresh_memo: Vec::new(),
            sample_scratch: Vec::new(),
            history: History::new(),
            recorder: Recorder::off(),
            shard,
            hosted_counts,
            cfg,
        }
    }

    /// Attach a tracer; events flow from simulated time zero.
    #[must_use]
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach a wall-clock profiler around the event-loop phases.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Label this run's trace (`RunStart` marker, series table header).
    #[must_use]
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.run_label = label.into();
        self
    }

    /// Attach a correctness recorder (see [`repl_check::Recorder`]):
    /// mirrors committed base transactions, acceptance decisions,
    /// replica refresh applies, and the final stores into the oracle
    /// layer.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    fn is_mobile(&self, node: NodeId) -> bool {
        node.0 >= self.cfg.base_nodes
    }

    fn measuring(&self) -> bool {
        self.queue.now() >= self.measure_from
    }

    /// Run to the horizon and return the report; use
    /// [`TwoTierSim::run_with_state`] to inspect the converged state.
    pub fn run(self) -> Report {
        self.run_with_state().0
    }

    /// Run, then reconnect every mobile node, finish every sync
    /// session, and deliver all refreshes so the whole system converges
    /// to the base state. Returns `(report, master, replicas)`.
    pub fn run_with_state(self) -> (Report, ObjectStore, Vec<ObjectStore>) {
        let (report, master, replicas, _) = self.run_full();
        (report, master, replicas)
    }

    /// Like [`TwoTierSim::run_with_state`], additionally returning the
    /// committed base transactions' execution [`History`] so callers
    /// can verify single-copy serializability.
    pub fn run_full(mut self) -> (Report, ObjectStore, Vec<ObjectStore>, History) {
        let horizon = self.cfg.sim.horizon;
        self.tracer.emit(|| {
            Event::system(
                SimTime::ZERO,
                NodeId(0),
                EventKind::RunStart {
                    label: self.run_label.clone(),
                },
            )
        });
        while let Some((_, ev)) = self.queue.pop_until(horizon) {
            self.dispatch(ev, true);
        }
        // Freeze the report (and the per-replica staleness gauges)
        // before the convergence drain below so post-horizon syncs do
        // not pollute the measured distributions.
        let mut report = self.metrics.report(self.measure_from, horizon);
        if !self.cfg.sim.lean_metrics {
            for (i, g) in self.staleness.iter().enumerate() {
                if g.count > 0 {
                    report.dists.gauges.insert(format!("staleness_n{i}"), *g);
                }
            }
        }
        let report = report;
        for node in self.cfg.base_nodes..self.cfg.sim.nodes {
            self.on_reconnect(NodeId(node));
        }
        while let Some((_, ev)) = self.queue.pop() {
            self.dispatch(ev, false);
        }
        self.tracer.run_end(horizon);
        self.tracer.flush();
        let replicas: Vec<ObjectStore> = self
            .replicas
            .into_iter()
            .map(|mut t| {
                t.discard_tentative();
                t.master().clone()
            })
            .collect();
        if self.recorder.is_on() {
            self.recorder.final_master(&self.master);
            for (i, store) in replicas.iter().enumerate() {
                self.recorder.final_store(NodeId(i as u32), store);
            }
        }
        (report, self.master, replicas, self.history)
    }

    fn dispatch(&mut self, ev: Ev, arrivals_enabled: bool) {
        let profiler = self.profiler.clone();
        let t = profiler.start();
        match ev {
            Ev::Arrive(node) => {
                if arrivals_enabled {
                    self.on_arrive(node);
                }
                profiler.stop("two-tier/arrive", t);
            }
            Ev::BaseStep(id) => {
                self.on_base_step(id);
                profiler.stop("two-tier/base-step", t);
            }
            Ev::BaseRetry(id) => {
                self.try_base_step(id);
                profiler.stop("two-tier/base-step", t);
            }
            Ev::Deliver { to, msg } => {
                self.tracer.emit(|| {
                    Event::system(
                        self.queue.now(),
                        to,
                        EventKind::MsgDelivered { from: NodeId(0) },
                    )
                });
                self.apply_refresh(to, msg);
                profiler.stop("two-tier/deliver", t);
            }
            Ev::DeliverBatch { to, msgs } => {
                for msg in msgs {
                    self.tracer.emit(|| {
                        Event::system(
                            self.queue.now(),
                            to,
                            EventKind::MsgDelivered { from: NodeId(0) },
                        )
                    });
                    self.apply_refresh(to, msg);
                }
                profiler.stop("two-tier/deliver", t);
            }
            Ev::Connectivity { node, connected } => {
                self.tracer.emit(|| {
                    let kind = if connected {
                        EventKind::Reconnect
                    } else {
                        EventKind::Disconnect
                    };
                    Event::system(self.queue.now(), node, kind)
                });
                if connected {
                    self.on_reconnect(node);
                } else {
                    self.network.disconnect(node);
                }
                profiler.stop("two-tier/connectivity", t);
            }
        }
    }

    // ------------------------------------------------------------------
    // Workload generation
    // ------------------------------------------------------------------

    /// Objects a node may touch, respecting the scope rule: base nodes
    /// use base-mastered objects; mobile nodes use base-mastered plus
    /// their own mobile-mastered slice.
    fn pick_objects(&mut self, node: NodeId) -> Vec<ObjectId> {
        let base_owned = self.cfg.base_owned();
        let actions = self.cfg.sim.actions;
        let mut scratch = std::mem::take(&mut self.sample_scratch);
        if let Some(map) = &self.shard {
            // Sharded workload: a node works against its hosted subset.
            // Base nodes additionally run cross-shard transactions at
            // the configured rate, straight against the full master
            // (the base tier masters everything, so any object is in
            // scope there). Mobile nodes never draw outside their
            // hosted shards — a tentative write needs a local replica
            // slot to land in.
            let mobile = self.is_mobile(node);
            let cross = !mobile && self.object_rng.chance(self.cfg.sim.cross_shard);
            let hosted = self.hosted_counts[node.0 as usize];
            let objects = if cross || (!mobile && hosted < actions as u64) {
                self.object_rng
                    .sample_distinct_into(self.cfg.sim.db_size, actions, &mut scratch);
                scratch.iter().copied().map(ObjectId).collect()
            } else if hosted == 0 {
                // Degenerate placement (fewer shards than nodes): a
                // mobile hosting nothing issues no work.
                Vec::new()
            } else {
                // A mobile hosting fewer objects than one transaction
                // touches just runs a shorter transaction.
                let k = actions.min(hosted as usize);
                self.object_rng
                    .sample_distinct_into(hosted, k, &mut scratch);
                scratch.iter().map(|&i| map.nth_hosted(node, i)).collect()
            };
            self.sample_scratch = scratch;
            return objects;
        }
        let objects = if self.is_mobile(node) && self.cfg.mobile_owned > 0 {
            let mobile_index = u64::from(node.0 - self.cfg.base_nodes);
            let own_start = base_owned + mobile_index * self.cfg.mobile_owned;
            let virtual_size = base_owned + self.cfg.mobile_owned;
            self.object_rng
                .sample_distinct_into(virtual_size, actions, &mut scratch);
            scratch
                .iter()
                .map(|&v| {
                    if v < base_owned {
                        ObjectId(v)
                    } else {
                        ObjectId(own_start + (v - base_owned))
                    }
                })
                .collect()
        } else {
            self.object_rng
                .sample_distinct_into(base_owned.max(1), actions, &mut scratch);
            scratch.iter().copied().map(ObjectId).collect()
        };
        self.sample_scratch = scratch;
        objects
    }

    /// Build a transaction spec for `node`. For the commutative
    /// workload, debit amounts are bounded by the balance the issuing
    /// node currently *believes* in (`local view`) — you do not write a
    /// check your own checkbook says you cannot afford.
    fn gen_spec(&mut self, node: NodeId) -> TxnSpec {
        let objects = self.pick_objects(node);
        match self.cfg.workload {
            TwoTierWorkload::ExactMatch { max_amount } => {
                let ops = objects
                    .into_iter()
                    .map(|o| {
                        let amt = 1 + self.value_rng.gen_range(max_amount.max(1) as u64) as i64;
                        if self.value_rng.chance(0.5) {
                            Operation::new(o, Op::Add(amt))
                        } else {
                            Operation::new(o, Op::Debit(amt))
                        }
                    })
                    .collect();
                TxnSpec::new(ops).with_criterion(Criterion::ExactMatch)
            }
            TwoTierWorkload::Commutative { max_amount } => {
                let mut ops = Vec::with_capacity(objects.len());
                for o in objects {
                    // A base node's cross-shard draw may touch objects
                    // its partial replica does not host; its view is
                    // then the master copy (base nodes sit next to it).
                    let replica = &self.replicas[node.0 as usize];
                    let view = if replica.master().hosts(o) {
                        replica.read(o)
                    } else {
                        self.master.get(o)
                    }
                    .value
                    .as_int()
                    .unwrap_or(0);
                    let credit = self.value_rng.chance(0.5);
                    if credit || view <= 0 {
                        let amt = 1 + self.value_rng.gen_range(max_amount.max(1) as u64) as i64;
                        ops.push(Operation::new(o, Op::Add(amt)));
                    } else {
                        // Never debit more than the issuing node's own
                        // view of the balance — you do not knowingly
                        // overdraw your own checkbook.
                        let cap = view.min(max_amount) as u64;
                        let amt = 1 + self.value_rng.gen_range(cap) as i64;
                        ops.push(Operation::new(o, Op::Debit(amt.min(view))));
                    }
                }
                TxnSpec::new(ops).with_criterion(Criterion::NonNegative)
            }
        }
    }

    // ------------------------------------------------------------------
    // Arrivals
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, node: NodeId) {
        let gap = SimDuration::from_secs_f64(
            self.arrival_rngs[node.0 as usize].exp(1.0 / self.cfg.sim.tps),
        );
        self.queue.schedule_after(gap, Ev::Arrive(node));

        let spec = self.gen_spec(node);
        if self.is_mobile(node) && !self.network.is_connected(node) {
            self.commit_tentative(node, spec);
        } else {
            // Connected node (base or mobile): run directly as a base
            // transaction — connected two-tier "operates much like a
            // lazy-master system".
            self.start_base_txn(node, spec, None, None, None);
        }
    }

    /// Execute a tentative transaction locally and log it for later
    /// base re-execution.
    fn commit_tentative(&mut self, node: NodeId, spec: TxnSpec) {
        let idx = node.0 as usize;
        let mut results = Vec::with_capacity(spec.ops.len());
        for op in &spec.ops {
            let current = self.replicas[idx].read(op.object).value.clone();
            let new = op.op.apply(&current);
            let ts = self.clocks[idx].tick();
            self.replicas[idx].write_tentative(op.object, new.clone(), ts);
            results.push((op.object, new));
        }
        if self.measuring() {
            self.metrics.tentative_commits.incr();
            self.metrics.actions.add(spec.ops.len() as u64);
        }
        self.tracer
            .emit(|| Event::system(self.queue.now(), node, EventKind::TentativeCommit));
        self.pending[idx].push_back(Pending {
            spec,
            tentative_results: results,
            committed_at: self.queue.now(),
        });
    }

    // ------------------------------------------------------------------
    // Base transactions
    // ------------------------------------------------------------------

    fn start_base_txn(
        &mut self,
        origin: NodeId,
        spec: TxnSpec,
        tentative_results: Option<Vec<(ObjectId, Value)>>,
        tentative_at: Option<SimTime>,
        session: Option<NodeId>,
    ) {
        let id = self.base_txns.insert(BaseTxn {
            origin,
            spec,
            tentative_results,
            tentative_at,
            next: 0,
            buffered: Vec::new(),
            reads: Vec::new(),
            started: self.queue.now(),
            wait_started: None,
            session,
        });
        self.tracer
            .emit(|| Event::new(self.queue.now(), origin, id, EventKind::TxnBegin));
        self.try_base_step(id);
    }

    fn try_base_step(&mut self, id: TxnId) {
        let txn = self.base_txns.get(id).expect("stepping unknown base txn");
        if txn.next >= txn.spec.ops.len() {
            self.finish_base(id);
            return;
        }
        let obj = txn.spec.ops[txn.next].object;
        let origin = txn.origin;
        match self.master_locks.acquire(id, obj) {
            Acquire::Granted => {
                self.queue
                    .schedule_after(self.cfg.sim.action_time, Ev::BaseStep(id));
            }
            Acquire::Waiting => {
                if self.measuring() {
                    self.metrics.waits.incr();
                }
                self.tracer.emit(|| {
                    Event::new(
                        self.queue.now(),
                        origin,
                        id,
                        EventKind::LockWait {
                            object: obj,
                            holder: self.master_locks.holder_of(obj).unwrap_or_default(),
                            waiter: id,
                        },
                    )
                });
                self.base_txns
                    .get_mut(id)
                    .expect("waiting base txn must be active")
                    .wait_started = Some(self.queue.now());
            }
            Acquire::Deadlock => {
                // Base transactions are "resubmitted and reprocessed
                // until they succeed" (§7) — a deadlock is detected but
                // the transaction retries, so no TxnAbort follows.
                if self.measuring() {
                    self.metrics.deadlocks.incr();
                    // Base transactions never abort — each deadlock is
                    // a scheduled re-execution.
                    self.metrics.incr_dist(M_RETRIES);
                }
                self.tracer.emit(|| {
                    Event::new(
                        self.queue.now(),
                        origin,
                        id,
                        EventKind::DeadlockDetected {
                            cycle: self.master_locks.last_deadlock_cycle().to_vec(),
                        },
                    )
                });
                let txn = self.base_txns.get_mut(id).expect("base txn");
                txn.next = 0;
                txn.buffered.clear();
                txn.reads.clear();
                txn.wait_started = None;
                self.release_and_resume(id);
                // Randomized backoff — see the lazy-group engine: a
                // fixed delay can livelock two retrying transactions.
                let backoff = self
                    .cfg
                    .sim
                    .action_time
                    .saturating_mul(1 + self.retry_rng.gen_range(8));
                self.queue.schedule_after(backoff, Ev::BaseRetry(id));
            }
        }
    }

    fn on_base_step(&mut self, id: TxnId) {
        let txn = self.base_txns.get_mut(id).expect("base step for dead txn");
        let op = txn.spec.ops[txn.next].clone();
        // Read own buffered write if present, else the master copy.
        let current = match txn.buffered.iter().rev().find(|(o, _)| *o == op.object) {
            Some((_, v)) => v.clone(),
            None => {
                let versioned = self.master.get(op.object);
                txn.reads.push((op.object, versioned.ts));
                versioned.value.clone()
            }
        };
        let new = op.op.apply(&current);
        txn.buffered.push((op.object, new));
        txn.next += 1;
        if self.queue.now() >= self.measure_from {
            self.metrics.actions.incr();
        }
        self.try_base_step(id);
    }

    fn finish_base(&mut self, id: TxnId) {
        let txn = self
            .base_txns
            .remove(id)
            .expect("finishing unknown base txn");
        let accepted = match &txn.tentative_results {
            Some(tentative) => txn.spec.criterion.accepts(&txn.buffered, tentative),
            None => txn.spec.criterion.accepts(&txn.buffered, &txn.buffered),
        };
        // Reconciliation delay: tentative commit at the mobile → base
        // verdict, whichever way the verdict goes.
        if self.measuring() {
            if let Some(t0) = txn.tentative_at {
                self.metrics
                    .record_dist(M_RECONCILIATION_DELAY, self.queue.now().since(t0));
            }
        }
        if self.recorder.is_on() {
            let tentative = txn
                .tentative_results
                .as_deref()
                .unwrap_or(&txn.buffered)
                .to_vec();
            self.recorder.acceptance(
                id,
                criterion_kind(&txn.spec.criterion),
                txn.buffered.clone(),
                tentative,
                accepted,
            );
        }
        if accepted {
            // Install the buffered writes as the new master state and
            // propagate lazy-master refreshes. Record the footprint
            // (reads + version transitions) for the serializability
            // checker.
            let mut updates = Vec::with_capacity(txn.buffered.len());
            let mut writes = Vec::with_capacity(txn.buffered.len());
            for (obj, value) in &txn.buffered {
                let old_ts = self.master.get(*obj).ts;
                let ts = self.master_clock.tick();
                self.master.set(*obj, value.clone(), ts);
                updates.push((*obj, value.clone(), ts));
                writes.push((*obj, old_ts, ts));
            }
            if self.recorder.is_on() {
                self.recorder.commit(
                    txn.origin,
                    TxnRecord {
                        txn: id,
                        reads: txn.reads.clone(),
                        writes: writes.clone(),
                    },
                );
            }
            self.history.record(TxnRecord {
                txn: id,
                reads: txn.reads.clone(),
                writes,
            });
            if self.measuring() {
                self.metrics.committed.incr();
                self.metrics
                    .record_latency(self.queue.now().since(txn.started));
                if txn.tentative_results.is_some() {
                    self.metrics.tentative_accepted.incr();
                }
            }
            self.tracer
                .emit(|| Event::new(self.queue.now(), txn.origin, id, EventKind::TxnCommit));
            if txn.tentative_results.is_some() {
                self.tracer.emit(|| {
                    Event::new(
                        self.queue.now(),
                        txn.origin,
                        id,
                        EventKind::TentativeAccepted,
                    )
                });
            }
            self.broadcast_refresh(RefreshMsg {
                updates: updates.into(),
                sent_at: self.queue.now(),
            });
        } else {
            if self.measuring() {
                self.metrics.reconciliations.incr();
                if txn.tentative_results.is_some() {
                    self.metrics.tentative_rejected.incr();
                }
            }
            self.tracer
                .emit(|| Event::new(self.queue.now(), txn.origin, id, EventKind::Reconcile));
            if txn.tentative_results.is_some() {
                self.tracer.emit(|| {
                    Event::new(
                        self.queue.now(),
                        txn.origin,
                        id,
                        EventKind::TentativeRejected,
                    )
                });
            }
        }
        self.release_and_resume(id);
        if let Some(mobile) = txn.session {
            self.advance_session(mobile);
        }
    }

    /// Release `id`'s master locks into the recycled scratch buffer and
    /// resume the promoted waiters — no allocation on this path.
    fn release_and_resume(&mut self, id: TxnId) {
        let mut granted = std::mem::take(&mut self.granted_scratch);
        self.master_locks.release_all_into(id, &mut granted);
        self.resume_waiters(&granted);
        self.granted_scratch = granted;
    }

    fn resume_waiters(&mut self, granted: &[(TxnId, ObjectId)]) {
        let now = self.queue.now();
        for &(waiter, _obj) in granted {
            if let Some(txn) = self.base_txns.get_mut(waiter) {
                if let Some(since) = txn.wait_started.take() {
                    if now >= self.measure_from {
                        self.metrics.record_wait(now.since(since));
                    }
                }
                self.queue
                    .schedule_after(self.cfg.sim.action_time, Ev::BaseStep(waiter));
            }
        }
    }

    // ------------------------------------------------------------------
    // Replica refresh propagation (standard lazy-master)
    // ------------------------------------------------------------------

    fn broadcast_refresh(&mut self, msg: RefreshMsg) {
        // Master commits originate "at the base"; model the fan-out
        // from a virtual base sender that is always connected. Same-delay
        // refreshes for one destination coalesce into chunks of up to
        // `propagation_batch` (the connected flow ships one refresh per
        // commit, so batch=1 and batch>1 schedule identically here; the
        // chunk path carries duplicate bursts).
        let batch = self.cfg.sim.propagation_batch.max(1);
        let mut pending = std::mem::take(&mut self.refresh_scratch);
        let mut pending_delay = SimDuration::ZERO;
        // The base hosts every shard, so destinations group by their
        // entire hosted set: filter the refresh once per distinct
        // signature and share the payload across the group.
        if let Some(map) = &self.shard {
            self.refresh_memo.clear();
            self.refresh_memo.resize(map.host_groups(), None);
        }
        for dest in 0..self.cfg.sim.nodes {
            let dest = NodeId(dest);
            // Partial replication: each destination receives only the
            // updates it hosts; a commit touching none of its shards
            // sends nothing at all.
            let msg = match &self.shard {
                None => msg.clone(),
                Some(map) => {
                    let Some(group) = map.host_group(dest) else {
                        continue;
                    };
                    let updates = match &self.refresh_memo[group as usize] {
                        Some(rc) => rc.clone(),
                        None => {
                            let rc: RefreshPayload = msg
                                .updates
                                .iter()
                                .filter(|(obj, _, _)| map.host_group_hosts(group, *obj))
                                .cloned()
                                .collect();
                            self.refresh_memo[group as usize] = Some(rc.clone());
                            rc
                        }
                    };
                    if updates.is_empty() {
                        continue;
                    }
                    RefreshMsg {
                        updates,
                        sent_at: msg.sent_at,
                    }
                }
            };
            if self.measuring() {
                self.metrics.messages.incr();
            }
            self.tracer.emit(|| {
                Event::system(self.queue.now(), NodeId(0), EventKind::MsgSent { to: dest })
            });
            // Base nodes are always connected; send from base node 0.
            match self.network.send(NodeId(0), dest, msg.clone()) {
                SendOutcome::Deliver { delay } => {
                    if !pending.is_empty() && pending_delay != delay {
                        self.flush_refreshes(dest, pending_delay, &mut pending);
                    }
                    pending_delay = delay;
                    pending.push(msg.clone());
                    if pending.len() >= batch {
                        self.flush_refreshes(dest, pending_delay, &mut pending);
                    }
                }
                SendOutcome::Duplicated { delays } => {
                    // Refreshes are last-writer-wins; a duplicate is
                    // absorbed by the timestamp comparison. Flush first
                    // so the original precedes its echoes in the queue.
                    self.flush_refreshes(dest, pending_delay, &mut pending);
                    for delay in delays {
                        self.queue.schedule_after(
                            delay,
                            Ev::Deliver {
                                to: dest,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                SendOutcome::Dropped => {
                    // This engine attaches no fault injector; a dropped
                    // refresh would be resent by the next one anyway
                    // (LWW refreshes carry absolute values, not deltas).
                }
                SendOutcome::Held => {}
                SendOutcome::SenderOffline(_) => unreachable!("base node 0 never disconnects"),
            }
            self.flush_refreshes(dest, pending_delay, &mut pending);
        }
        self.refresh_scratch = pending;
    }

    /// Schedule the accumulated same-delay refreshes for `to`: a lone
    /// message ships as a plain [`Ev::Deliver`] (the batch=1 path stays
    /// allocation-free), a chunk as one [`Ev::DeliverBatch`].
    fn flush_refreshes(&mut self, to: NodeId, delay: SimDuration, pending: &mut Vec<RefreshMsg>) {
        match pending.len() {
            0 => {}
            1 => {
                let msg = pending.pop().expect("non-empty pending");
                self.queue.schedule_after(delay, Ev::Deliver { to, msg });
            }
            _ => {
                let msgs = std::mem::take(pending);
                self.queue
                    .schedule_after(delay, Ev::DeliverBatch { to, msgs });
            }
        }
    }

    fn apply_refresh(&mut self, to: NodeId, msg: RefreshMsg) {
        let store = self.replicas[to.0 as usize].master_mut();
        let mut applied = false;
        for &(obj, ref value, ts) in msg.updates.iter() {
            let fresh = store.apply_lww(obj, ts, value.clone());
            applied |= fresh;
            let outcome = if fresh {
                ApplyOutcome::Applied
            } else {
                ApplyOutcome::Duplicate
            };
            self.recorder.replica_apply(to, obj, ts, outcome);
        }
        if applied && self.queue.now() >= self.measure_from {
            self.metrics.replica_commits.incr();
            // Propagation lag of fresh data: broadcast → apply. Held
            // refreshes carry the original send stamp, so disconnection
            // time is included — the replica's true staleness.
            let lag = self.queue.now().since(msg.sent_at);
            self.metrics.record_dist(M_PROPAGATION_LAG, lag);
            if !self.cfg.sim.lean_metrics {
                self.staleness[to.0 as usize].observe(lag.0);
            }
        } else if !applied && self.queue.now() >= self.measure_from {
            self.metrics.stale_updates.incr();
        }
        self.tracer.emit(|| {
            let kind = if applied {
                EventKind::ReplicaApply
            } else {
                EventKind::StaleSkip
            };
            Event::system(self.queue.now(), to, kind)
        });
    }

    // ------------------------------------------------------------------
    // Mobile reconnect synchronization (§7's five steps)
    // ------------------------------------------------------------------

    fn on_reconnect(&mut self, node: NodeId) {
        // Step 1: discard tentative versions.
        self.replicas[node.0 as usize].discard_tentative();
        // Step 2/4: receive deferred replica refreshes. The drain
        // borrows the network, and applying a refresh needs the whole
        // sim — stage through the recycled chunk buffer (idle between
        // broadcasts).
        let mut held = std::mem::take(&mut self.refresh_scratch);
        held.extend(self.network.reconnect(node));
        for msg in held.drain(..) {
            self.apply_refresh(node, msg);
        }
        self.refresh_scratch = held;
        // Step 3/5: re-execute tentative transactions in commit order.
        self.maybe_start_session(node);
    }

    /// Begin a sync session for `node` unless one is already draining
    /// its queue — tentative transactions must be re-executed strictly
    /// in commit order, one at a time.
    fn maybe_start_session(&mut self, node: NodeId) {
        if !self.in_session[node.0 as usize] {
            self.advance_session(node);
        }
    }

    /// Start the next queued tentative re-execution for `node`, or mark
    /// the session finished if the queue is empty.
    fn advance_session(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        let Some(pending) = self.pending[idx].pop_front() else {
            self.in_session[idx] = false;
            return;
        };
        self.in_session[idx] = true;
        if self.measuring() {
            // The tentative transaction and its inputs travel to the
            // host base node.
            self.metrics.messages.incr();
        }
        self.tracer
            .emit(|| Event::system(self.queue.now(), node, EventKind::MsgSent { to: NodeId(0) }));
        self.start_base_txn(
            node,
            pending.spec,
            Some(pending.tentative_results),
            Some(pending.committed_at),
            Some(node),
        );
    }

    /// The configuration of this run.
    pub fn config(&self) -> &TwoTierConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_model::Params;

    fn base_cfg(
        nodes: f64,
        base: u32,
        db: f64,
        tps: f64,
        horizon: u64,
        seed: u64,
        workload: TwoTierWorkload,
    ) -> TwoTierConfig {
        let p = Params::new(db, nodes, tps, 4.0, 0.01);
        TwoTierConfig {
            sim: SimConfig::from_params(&p, horizon, seed),
            base_nodes: base,
            mobile_owned: 0,
            connected: SimDuration::from_secs(15),
            disconnected: SimDuration::from_secs(15),
            workload,
            initial_value: 1_000,
        }
    }

    #[test]
    fn commutative_workload_has_no_rejections_with_ample_balances() {
        // Large opening balances: debits never overdraw, everything
        // commutes → zero reconciliations (§7's key property 5).
        let mut cfg = base_cfg(
            4.0,
            2,
            500.0,
            5.0,
            120,
            1,
            TwoTierWorkload::Commutative { max_amount: 3 },
        );
        cfg.initial_value = 1_000_000;
        let (report, _, _) = TwoTierSim::new(cfg).run_with_state();
        assert!(report.tentative_commits > 0, "mobiles should work offline");
        assert!(report.tentative_accepted > 0);
        assert_eq!(
            report.tentative_rejected, 0,
            "commutative transactions must not be rejected"
        );
    }

    #[test]
    fn exact_match_workload_gets_rejections() {
        // Exact-match acceptance + contention: some base re-executions
        // must differ from the tentative run.
        let cfg = base_cfg(
            6.0,
            2,
            300.0,
            10.0,
            200,
            2,
            TwoTierWorkload::ExactMatch { max_amount: 20 },
        );
        let (report, _, _) = TwoTierSim::new(cfg).run_with_state();
        assert!(report.tentative_commits > 0);
        assert!(
            report.tentative_rejected > 0,
            "expected rejections: {report:?}"
        );
    }

    #[test]
    fn replicas_converge_to_base_state() {
        let cfg = base_cfg(
            5.0,
            2,
            200.0,
            8.0,
            120,
            3,
            TwoTierWorkload::Commutative { max_amount: 10 },
        );
        let (_, master, replicas) = TwoTierSim::new(cfg).run_with_state();
        let want = master.digest();
        for (i, r) in replicas.iter().enumerate() {
            assert_eq!(r.digest(), want, "node {i} did not converge to base state");
        }
    }

    #[test]
    fn nonnegative_criterion_keeps_base_balances_nonnegative() {
        // Small opening balances and aggressive debits: rejections will
        // occur, and the invariant must hold on the master state.
        let mut cfg = base_cfg(
            6.0,
            2,
            60.0,
            10.0,
            200,
            4,
            TwoTierWorkload::Commutative { max_amount: 500 },
        );
        cfg.initial_value = 100;
        let (report, master, _) = TwoTierSim::new(cfg).run_with_state();
        assert!(report.committed > 0);
        for (id, v) in master.iter() {
            let balance = v.value.as_int().unwrap();
            assert!(balance >= 0, "{id} went negative: {balance}");
        }
    }

    #[test]
    fn mobile_owned_objects_respect_scope() {
        let mut cfg = base_cfg(
            4.0,
            2,
            100.0,
            5.0,
            60,
            5,
            TwoTierWorkload::Commutative { max_amount: 5 },
        );
        cfg.mobile_owned = 10;
        let (report, master, replicas) = TwoTierSim::new(cfg).run_with_state();
        assert!(report.committed > 0);
        let want = master.digest();
        assert!(replicas.iter().all(|r| r.digest() == want));
    }

    #[test]
    fn deterministic_runs() {
        let cfg = base_cfg(
            4.0,
            2,
            200.0,
            5.0,
            60,
            7,
            TwoTierWorkload::Commutative { max_amount: 5 },
        );
        let a = TwoTierSim::new(cfg).run();
        let b = TwoTierSim::new(cfg).run();
        assert_eq!(a, b);
    }

    #[test]
    fn base_execution_is_single_copy_serializable() {
        use crate::serializability::Verdict;
        // High contention to make the check non-trivial.
        let cfg = base_cfg(
            6.0,
            2,
            80.0,
            12.0,
            120,
            8,
            TwoTierWorkload::Commutative { max_amount: 20 },
        );
        let (report, _, _, history) = TwoTierSim::new(cfg).run_full();
        assert!(report.committed > 100, "need a meaningful history");
        assert!(history.len() as u64 >= report.committed);
        match history.check() {
            Verdict::Serializable { witness } => {
                assert_eq!(witness.len(), history.len());
            }
            Verdict::NotSerializable { cycle_members } => {
                panic!("base execution not serializable: cycle {cycle_members:?}");
            }
        }
    }

    #[test]
    fn full_rf_sharded_identical_to_unsharded() {
        let cfg = base_cfg(
            4.0,
            2,
            200.0,
            5.0,
            60,
            7,
            TwoTierWorkload::Commutative { max_amount: 5 },
        );
        let mut sharded = cfg;
        sharded.sim = sharded.sim.with_shards(8, 4);
        let (a, am, ar) = TwoTierSim::new(cfg).run_with_state();
        let (b, bm, br) = TwoTierSim::new(sharded).run_with_state();
        assert_eq!(a, b);
        assert_eq!(am.digest(), bm.digest());
        for (x, y) in ar.iter().zip(&br) {
            assert_eq!(x.digest(), y.digest());
        }
    }

    #[test]
    fn sharded_replicas_match_master_on_hosted_objects() {
        let mut cfg = base_cfg(
            6.0,
            2,
            240.0,
            8.0,
            120,
            9,
            TwoTierWorkload::Commutative { max_amount: 10 },
        );
        cfg.sim = cfg.sim.with_shards(6, 2).with_cross_shard(0.2);
        let (report, master, replicas) = TwoTierSim::new(cfg).run_with_state();
        assert!(report.committed > 0);
        let mut hosted_total = 0usize;
        for (i, r) in replicas.iter().enumerate() {
            for (obj, v) in r.iter() {
                hosted_total += 1;
                let want = master.get(obj);
                assert_eq!(
                    (v.ts, &v.value),
                    (want.ts, &want.value),
                    "node {i} diverged from master on {obj}"
                );
            }
        }
        // rf = 2: each object is replicated at exactly two nodes.
        assert_eq!(hosted_total as u64, cfg.sim.db_size * 2);
    }

    #[test]
    fn partial_rf_ships_fewer_refreshes() {
        let cfg = base_cfg(
            8.0,
            2,
            400.0,
            8.0,
            60,
            13,
            TwoTierWorkload::Commutative { max_amount: 5 },
        );
        let mut sharded = cfg;
        sharded.sim = sharded.sim.with_shards(8, 2);
        let (full, _, _) = TwoTierSim::new(cfg).run_with_state();
        let (partial, _, _) = TwoTierSim::new(sharded).run_with_state();
        assert!(
            partial.messages < full.messages,
            "partial rf should cut refresh traffic: {} vs {}",
            partial.messages,
            full.messages
        );
    }

    #[test]
    #[should_panic(expected = "at least one base node")]
    fn zero_base_nodes_rejected() {
        let mut cfg = base_cfg(
            3.0,
            1,
            100.0,
            5.0,
            10,
            1,
            TwoTierWorkload::ExactMatch { max_amount: 5 },
        );
        cfg.base_nodes = 0;
        let _ = TwoTierSim::new(cfg);
    }
}
