//! Lazy-master replication — §5 of the paper.
//!
//! Each object has an owner; updates are RPCed to the owner, run there
//! under normal locking, and propagate to read-only replicas
//! asynchronously after commit. The master copies together form one
//! logical lock space receiving the *aggregate* load `TPS × Nodes`, so
//! the deadlock behaviour is a single-node system at N-fold rate —
//! equation (19). The replica-refresh transactions are "background
//! housekeeping" (the paper's words): they time-stamp-filter stale
//! values and never contend with user transactions, so the engine
//! accounts for their messages without simulating their locks.

use crate::config::SimConfig;
use crate::engine::contention::{ContentionProfile, ContentionSim};
use crate::metrics::Report;

/// Lazy-master simulator.
#[derive(Debug)]
pub struct LazyMasterSim {
    inner: ContentionSim,
}

impl LazyMasterSim {
    /// Build a lazy-master run: master transactions take `Action_Time`
    /// per action (shorter than eager — the reason §5 finds it less
    /// deadlock-prone), and each commit fans out `Nodes − 1` replica
    /// refresh messages per action.
    pub fn new(cfg: SimConfig) -> Self {
        let profile = ContentionProfile::lazy_master(&cfg);
        LazyMasterSim {
            inner: ContentionSim::new(cfg, profile).with_run_label("lazy-master"),
        }
    }

    /// Attach a fault plan perturbing the cross-shard commit protocol
    /// (see [`ContentionSim::with_faults`]).
    #[must_use]
    pub fn with_faults(mut self, plan: repl_net::FaultPlan) -> Self {
        self.inner = self.inner.with_faults(plan);
        self
    }

    /// Attach a tracer (see [`ContentionSim::with_tracer`]).
    pub fn with_tracer(mut self, tracer: repl_telemetry::TraceHandle) -> Self {
        self.inner = self.inner.with_tracer(tracer);
        self
    }

    /// Attach a wall-clock profiler.
    pub fn with_profiler(mut self, profiler: repl_telemetry::Profiler) -> Self {
        self.inner = self.inner.with_profiler(profiler);
        self
    }

    /// Label this run's trace.
    pub fn with_run_label(mut self, label: impl Into<String>) -> Self {
        self.inner = self.inner.with_run_label(label);
        self
    }

    /// Attach a correctness recorder (see
    /// [`ContentionSim::with_recorder`]).
    pub fn with_recorder(mut self, recorder: repl_check::Recorder) -> Self {
        self.inner = self.inner.with_recorder(recorder);
        self
    }

    /// Run to the horizon.
    pub fn run(self) -> Report {
        self.inner.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repl_model::Params;

    fn cfg(nodes: f64, db: f64, tps: f64, horizon: u64, seed: u64) -> SimConfig {
        let p = Params::new(db, nodes, tps, 4.0, 0.01);
        SimConfig::from_params(&p, horizon, seed)
    }

    #[test]
    fn latency_flat_in_nodes() {
        // Master transactions do not grow with the replica count.
        let r1 = LazyMasterSim::new(cfg(1.0, 1_000_000.0, 2.0, 100, 1)).run();
        let r6 = LazyMasterSim::new(cfg(6.0, 1_000_000.0, 2.0, 100, 1)).run();
        assert!((r1.mean_latency_secs - 0.04).abs() < 0.01);
        assert!((r6.mean_latency_secs - 0.04).abs() < 0.01);
    }

    #[test]
    fn no_reconciliations_ever() {
        let r = LazyMasterSim::new(cfg(8.0, 100.0, 10.0, 60, 2)).run();
        assert_eq!(r.reconciliations, 0);
    }

    #[test]
    fn deadlocks_grow_with_aggregate_load() {
        let small = LazyMasterSim::new(cfg(2.0, 100.0, 15.0, 120, 3)).run();
        let large = LazyMasterSim::new(cfg(8.0, 100.0, 15.0, 120, 3)).run();
        assert!(
            large.deadlocks > small.deadlocks,
            "deadlocks should grow with nodes: {} vs {}",
            large.deadlocks,
            small.deadlocks
        );
    }

    #[test]
    fn fewer_deadlocks_than_eager_serial() {
        use crate::engine::eager::{EagerSim, Ownership, ReplicaDiscipline};
        let c = cfg(6.0, 400.0, 10.0, 120, 4);
        let lazy = LazyMasterSim::new(c).run();
        let eager = EagerSim::new(c, ReplicaDiscipline::Serial, Ownership::Group).run();
        assert!(
            lazy.deadlocks < eager.deadlocks,
            "lazy-master {} should beat eager {}",
            lazy.deadlocks,
            eager.deadlocks
        );
    }

    #[test]
    fn replica_refresh_messages_accounted() {
        let r = LazyMasterSim::new(cfg(5.0, 100_000.0, 5.0, 60, 5)).run();
        // ~4 messages per action: messages ≈ actions-performed × (N−1)/N
        // of the counted updates… just check they are present and scale.
        assert!(r.messages > 0);
        let per_commit = r.messages as f64 / r.committed as f64;
        // 4 actions × 4 remote replicas = 16 messages per commit.
        assert!((per_commit - 16.0).abs() < 2.0, "{per_commit}");
    }
}
